//! Serial/parallel differential harness for the morsel-driven executor.
//!
//! Every supported query shape runs under both [`ExecPolicy::Serial`]
//! and [`ExecPolicy::Parallel`] and the result tables are compared
//! **bit-for-bit** — float cells by `to_bits`, not approximate equality.
//! The executor earns this by construction: both policies share the
//! morsel decomposition and merge partials in morsel order, so the only
//! thing parallelism changes is which thread computes a morsel.
//!
//! The second half stress-tests the pool: many concurrent sessions
//! submitting queries at once (exercising the busy-pool inline fallback
//! and the work-stealing deques), and concurrent batched cracker queries.

use std::sync::Arc;

use exploration::cracking::ConcurrentCracker;
use exploration::exec::{evaluate_selection, run_query, ExecPolicy, QueryCtx};
use exploration::storage::gen::{sales_table, uniform_i64, SalesConfig};
use exploration::storage::{
    AggFunc, CmpOp, Column, DataType, Predicate, Query, Schema, SortOrder, Table, Value,
    MORSEL_ROWS,
};
use exploration::{ExploreDb, Schedule};

/// A table spanning several morsels plus a ragged tail, so the morsel
/// merge order actually matters.
fn multi_morsel_table() -> Table {
    sales_table(&SalesConfig {
        rows: 2 * MORSEL_ROWS + 4321,
        ..SalesConfig::default()
    })
}

/// A table smaller than one morsel (degenerate decomposition).
fn small_table() -> Table {
    sales_table(&SalesConfig {
        rows: 777,
        ..SalesConfig::default()
    })
}

/// Assert two tables are identical down to the float bit patterns.
fn assert_bitwise_eq(a: &Table, b: &Table, context: &str) {
    assert_eq!(a.schema(), b.schema(), "{context}: schema");
    assert_eq!(a.num_rows(), b.num_rows(), "{context}: row count");
    for field in a.schema().fields() {
        let ca = a.column(field.name()).unwrap_or_else(|e| {
            panic!("{context}: left table lost column {:?}: {e}", field.name())
        });
        let cb = b.column(field.name()).unwrap_or_else(|e| {
            panic!("{context}: right table lost column {:?}: {e}", field.name())
        });
        for row in 0..a.num_rows() {
            let va = ca
                .value(row)
                .unwrap_or_else(|e| panic!("{context}: {}[{row}] unreadable: {e}", field.name()));
            let vb = cb
                .value(row)
                .unwrap_or_else(|e| panic!("{context}: {}[{row}] unreadable: {e}", field.name()));
            match (va, vb) {
                (Value::Float(x), Value::Float(y)) => assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{context}: {}[{row}] {x} vs {y}",
                    field.name()
                ),
                (x, y) => assert_eq!(x, y, "{context}: {}[{row}]", field.name()),
            }
        }
    }
}

/// Run a query under serial and 4-worker-parallel policies and require
/// bit-identical output.
fn assert_policies_agree(t: &Table, q: &Query, context: &str) {
    let serial = run_query(t, q, &QueryCtx::none()).unwrap();
    let parallel = run_query(t, q, &QueryCtx::new(ExecPolicy::Parallel { workers: 4 })).unwrap();
    assert_bitwise_eq(&serial, &parallel, context);
}

/// Every supported query shape, over both a multi-morsel and a
/// sub-morsel table.
fn query_shapes() -> Vec<(&'static str, Query)> {
    vec![
        ("full_scan", Query::new()),
        (
            "filter_scan",
            Query::new().filter(Predicate::range("price", 100.0, 600.0)),
        ),
        (
            "projection",
            Query::new()
                .filter(Predicate::cmp("qty", CmpOp::Ge, 5.0))
                .select(&["region", "price"]),
        ),
        (
            "order_limit",
            Query::new()
                .filter(Predicate::range("price", 50.0, 900.0))
                .select(&["product", "price"])
                .order("price", SortOrder::Desc)
                .take(123),
        ),
        (
            "global_aggregates",
            Query::new()
                .agg(AggFunc::Count, "qty")
                .agg(AggFunc::Sum, "price")
                .agg(AggFunc::Avg, "price")
                .agg(AggFunc::Min, "discount")
                .agg(AggFunc::Max, "discount")
                .agg(AggFunc::Var, "price")
                .agg(AggFunc::Std, "price"),
        ),
        (
            "filtered_global_aggregate",
            Query::new()
                .filter(Predicate::eq("channel", "channel1"))
                .agg(AggFunc::Avg, "price"),
        ),
        (
            "group_by",
            Query::new()
                .group("region")
                .agg(AggFunc::Count, "qty")
                .agg(AggFunc::Sum, "price"),
        ),
        (
            "multi_column_group_by",
            Query::new()
                .group("region")
                .group("channel")
                .agg(AggFunc::Avg, "price")
                .agg(AggFunc::Var, "discount"),
        ),
        (
            "full_pipeline",
            Query::new()
                .filter(Predicate::range("price", 50.0, 800.0).and(Predicate::cmp(
                    "qty",
                    CmpOp::Ge,
                    2.0,
                )))
                .group("product")
                .agg(AggFunc::Sum, "price")
                .agg(AggFunc::Avg, "qty")
                .order("sum(price)", SortOrder::Desc)
                .take(7),
        ),
        (
            "compound_predicate",
            Query::new().filter(
                Predicate::eq("region", "region0")
                    .or(Predicate::range("price", 0.0, 120.0))
                    .and(Predicate::cmp("qty", CmpOp::Lt, 8.0).not()),
            ),
        ),
        (
            "empty_result_filter",
            Query::new()
                .filter(Predicate::cmp("price", CmpOp::Lt, -1.0))
                .group("region")
                .agg(AggFunc::Sum, "price"),
        ),
        (
            "string_predicate_scan",
            Query::new()
                .filter(Predicate::eq("channel", "channel0"))
                .select(&["channel", "qty"]),
        ),
    ]
}

#[test]
fn every_query_shape_is_bit_identical_across_policies() {
    let big = multi_morsel_table();
    let small = small_table();
    for (name, q) in query_shapes() {
        assert_policies_agree(&big, &q, &format!("{name} (multi-morsel)"));
        assert_policies_agree(&small, &q, &format!("{name} (sub-morsel)"));
    }
}

#[test]
fn empty_table_agrees_across_policies() {
    let empty = sales_table(&SalesConfig {
        rows: 0,
        ..SalesConfig::default()
    });
    for (name, q) in query_shapes() {
        assert_policies_agree(&empty, &q, &format!("{name} (empty table)"));
    }
}

#[test]
fn worker_counts_do_not_change_results() {
    let t = multi_morsel_table();
    let q = Query::new()
        .filter(Predicate::range("price", 100.0, 700.0))
        .group("region")
        .agg(AggFunc::Avg, "price")
        .order("avg(price)", SortOrder::Asc);
    let reference = run_query(&t, &q, &QueryCtx::none()).unwrap();
    for workers in [0, 1, 2, 3, 4, 8, 64] {
        let got = run_query(&t, &q, &QueryCtx::new(ExecPolicy::Parallel { workers })).unwrap();
        assert_bitwise_eq(&reference, &got, &format!("workers = {workers}"));
    }
}

#[test]
fn selection_vectors_are_identical_across_policies() {
    let t = multi_morsel_table();
    let preds = [
        Predicate::True,
        Predicate::range("price", 100.0, 500.0),
        Predicate::eq("region", "region2"),
        Predicate::cmp("qty", CmpOp::Ge, 5.0).not(),
    ];
    for p in &preds {
        let serial = evaluate_selection(&t, p, &QueryCtx::none()).unwrap();
        let parallel =
            evaluate_selection(&t, p, &QueryCtx::new(ExecPolicy::Parallel { workers: 4 })).unwrap();
        assert_eq!(serial, parallel);
        // And the morsel-wise serial path matches the original
        // single-pass evaluator exactly.
        assert_eq!(serial, p.evaluate(&t).unwrap());
    }
}

#[test]
fn parallel_equals_reference_executor_for_scans() {
    // For non-aggregate shapes the morsel pipeline must equal
    // `Query::run` bitwise too (gather order is row order either way).
    let t = multi_morsel_table();
    for (name, q) in query_shapes() {
        if !q.aggregates.is_empty() {
            continue;
        }
        let reference = q.run(&t).unwrap();
        let parallel =
            run_query(&t, &q, &QueryCtx::new(ExecPolicy::Parallel { workers: 4 })).unwrap();
        assert_bitwise_eq(&reference, &parallel, name);
    }
}

/// A table whose group-by key column has (almost) one group per row —
/// far more groups than a single morsel holds rows, so every worker's
/// interner outgrows any per-morsel scratch assumptions.
fn high_cardinality_table() -> Table {
    let rows = MORSEL_ROWS + 9_000;
    let keys = uniform_i64(rows, 0, 50_000_000, 7);
    let vals = uniform_i64(rows, -1_000, 1_000, 8);
    Table::new(
        Schema::of(&[("k", DataType::Int64), ("v", DataType::Int64)]),
        vec![Column::from(keys), Column::from(vals)],
    )
    .unwrap()
}

#[test]
fn high_cardinality_group_by_agrees_across_worker_counts() {
    let t = high_cardinality_table();
    let q = Query::new()
        .group("k")
        .agg(AggFunc::Sum, "v")
        .agg(AggFunc::Count, "v");
    let reference = run_query(&t, &q, &QueryCtx::none()).unwrap();
    assert!(
        reference.num_rows() > MORSEL_ROWS,
        "cardinality check: {} groups should exceed one morsel's {} rows",
        reference.num_rows(),
        MORSEL_ROWS
    );
    for workers in [1, 2, 3, 8] {
        let got = run_query(&t, &q, &QueryCtx::new(ExecPolicy::Parallel { workers })).unwrap();
        assert_bitwise_eq(&reference, &got, &format!("high-card, workers = {workers}"));
    }
}

#[test]
fn single_group_agrees_across_worker_counts() {
    // Every row lands in the same group: the per-worker interner holds
    // one slot and every morsel batch merges into it.
    let t = sales_table(&SalesConfig {
        rows: 2 * MORSEL_ROWS + 4321,
        regions: 1,
        ..SalesConfig::default()
    });
    let q = Query::new()
        .group("region")
        .agg(AggFunc::Sum, "price")
        .agg(AggFunc::Avg, "discount")
        .agg(AggFunc::Var, "price");
    let reference = run_query(&t, &q, &QueryCtx::none()).unwrap();
    assert_eq!(reference.num_rows(), 1, "one region → one group");
    for workers in [1, 2, 3, 8] {
        let got = run_query(&t, &q, &QueryCtx::new(ExecPolicy::Parallel { workers })).unwrap();
        assert_bitwise_eq(
            &reference,
            &got,
            &format!("single group, workers = {workers}"),
        );
    }
}

#[test]
fn empty_selection_agrees_across_worker_counts() {
    // A predicate matching nothing: no worker ever materializes an
    // aggregation state, and the merged output is the empty group set.
    let t = multi_morsel_table();
    let q = Query::new()
        .filter(Predicate::cmp("price", CmpOp::Lt, -1.0))
        .group("region")
        .agg(AggFunc::Sum, "price");
    let reference = run_query(&t, &q, &QueryCtx::none()).unwrap();
    assert_eq!(reference.num_rows(), 0);
    for workers in [1, 2, 3, 8] {
        let got = run_query(&t, &q, &QueryCtx::new(ExecPolicy::Parallel { workers })).unwrap();
        assert_bitwise_eq(
            &reference,
            &got,
            &format!("empty selection, workers = {workers}"),
        );
    }
}

#[test]
fn seeded_morsel_chaos_stays_bit_identical_across_worker_counts() {
    // Seeded `exec.morsel` panics force mid-flight serial fallbacks; the
    // degraded run must still be bit-identical to the fault-free serial
    // answer for every worker count.
    let t = multi_morsel_table();
    let q = Query::new()
        .filter(Predicate::range("price", 100.0, 700.0))
        .group("region")
        .group("channel")
        .agg(AggFunc::Sum, "price")
        .agg(AggFunc::Avg, "qty");
    let truth = {
        let serial = ExploreDb::with_exec_policy(ExecPolicy::Serial);
        serial.register("sales", t.clone());
        serial.query("sales", &q).unwrap()
    };
    for workers in [1, 2, 3, 8] {
        let db = ExploreDb::with_exec_policy(ExecPolicy::Parallel { workers });
        db.register("sales", t.clone());
        let faults = db.fail_points();
        for seed in 0..6u64 {
            faults.arm("exec.morsel", Schedule::Seeded { seed, one_in: 3 });
            let got = db.query("sales", &q).expect("degrades, not fails");
            assert_bitwise_eq(&truth, &got, &format!("workers = {workers}, seed = {seed}"));
        }
        faults.disarm_all();
    }
}

#[test]
fn stress_concurrent_sessions_hammer_the_pool() {
    let t = Arc::new(multi_morsel_table());
    let shapes: Vec<(String, Query)> = query_shapes()
        .into_iter()
        .map(|(n, q)| (n.to_string(), q))
        .collect();
    let references: Vec<Table> = shapes
        .iter()
        .map(|(_, q)| run_query(&t, q, &QueryCtx::none()).unwrap())
        .collect();
    let references = Arc::new(references);
    let shapes = Arc::new(shapes);

    std::thread::scope(|s| {
        for session in 0..8 {
            let t = Arc::clone(&t);
            let shapes = Arc::clone(&shapes);
            let references = Arc::clone(&references);
            s.spawn(move || {
                for round in 0..6 {
                    let i = (session + round) % shapes.len();
                    let (name, q) = &shapes[i];
                    let got = run_query(&t, q, &QueryCtx::new(ExecPolicy::Parallel { workers: 4 }))
                        .unwrap();
                    assert_bitwise_eq(
                        &references[i],
                        &got,
                        &format!("session {session} round {round}: {name}"),
                    );
                }
            });
        }
    });
}

#[test]
fn stress_concurrent_cracker_batches() {
    let base = uniform_i64(60_000, 0, 6_000, 21);
    let cracker = Arc::new(ConcurrentCracker::new(base.clone()));
    let queries: Vec<(i64, i64)> = (0..48).map(|i| (i * 120, i * 120 + 400)).collect();
    let expected: Vec<usize> = queries
        .iter()
        .map(|&(lo, hi)| base.iter().filter(|&&v| v >= lo && v < hi).count())
        .collect();

    std::thread::scope(|s| {
        for session in 0..6 {
            let cracker = Arc::clone(&cracker);
            let queries = queries.clone();
            let expected = expected.clone();
            s.spawn(move || {
                let policy = if session % 2 == 0 {
                    ExecPolicy::Parallel { workers: 4 }
                } else {
                    ExecPolicy::Serial
                };
                for _ in 0..4 {
                    assert_eq!(cracker.query_counts_batch(&queries, policy), expected);
                }
            });
        }
    });
    cracker.with_column(|col| assert!(col.check_invariants()));
}
