//! Row-major storage layout.
//!
//! The adaptive-storage crate (H2O-style, experiment E11) needs the same
//! data in both orientations so its cost model can choose per query. A
//! [`RowStore`] stores fixed-width numeric rows contiguously, which makes
//! whole-row access one cache line instead of `k` scattered reads.

use crate::column::Column;
use crate::error::{Result, StorageError};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::{DataType, Value};

/// Row-major layout of the numeric columns of a table.
///
/// Strings are kept in a side column-major vector (strings are variable
/// width; the surveyed hybrid stores make the same choice for their
/// fixed-width row regions).
#[derive(Debug, Clone)]
pub struct RowStore {
    schema: Schema,
    /// Indices (into schema) of numeric fields, in row order.
    numeric_fields: Vec<usize>,
    /// `rows * numeric_fields.len()` values, row-major. Int64 values are
    /// stored as their f64 widening (exact up to 2^53, which covers every
    /// generated workload).
    data: Vec<f64>,
    /// One Vec per Utf8 field (schema order preserved).
    strings: Vec<(usize, Vec<String>)>,
    rows: usize,
}

impl RowStore {
    /// Convert a column-major table into row-major layout.
    pub fn from_table(table: &Table) -> Self {
        let schema = table.schema().clone();
        let numeric_fields: Vec<usize> = schema
            .fields()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.data_type().is_numeric())
            .map(|(i, _)| i)
            .collect();
        let rows = table.num_rows();
        let width = numeric_fields.len();
        let mut data = vec![0.0f64; rows * width];
        for (slot, &fi) in numeric_fields.iter().enumerate() {
            match table.column_at(fi) {
                Column::Int64(v) => {
                    for (r, &x) in v.iter().enumerate() {
                        data[r * width + slot] = x as f64;
                    }
                }
                Column::Float64(v) => {
                    for (r, &x) in v.iter().enumerate() {
                        data[r * width + slot] = x;
                    }
                }
                Column::Utf8(_) => unreachable!("numeric_fields only"),
            }
        }
        let strings = schema
            .fields()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.data_type() == DataType::Utf8)
            .map(|(i, _)| {
                let v = table.column_at(i).as_utf8().expect("type checked").to_vec();
                (i, v)
            })
            .collect();
        RowStore {
            schema,
            numeric_fields,
            data,
            strings,
            rows,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// The store's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Width (number of numeric fields) of each packed row.
    pub fn row_width(&self) -> usize {
        self.numeric_fields.len()
    }

    /// The packed numeric row at `row`.
    #[inline]
    pub fn numeric_row(&self, row: usize) -> &[f64] {
        let w = self.row_width();
        &self.data[row * w..(row + 1) * w]
    }

    /// Slot (offset within the packed row) of a numeric column.
    pub fn numeric_slot(&self, name: &str) -> Result<usize> {
        let fi = self.schema.index_of(name)?;
        self.numeric_fields
            .iter()
            .position(|&i| i == fi)
            .ok_or_else(|| StorageError::TypeMismatch {
                column: name.to_owned(),
                expected: "numeric",
                found: "Utf8",
            })
    }

    /// Full dynamic row (numeric + string fields in schema order).
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.rows {
            return Err(StorageError::RowOutOfBounds {
                index: row,
                len: self.rows,
            });
        }
        let packed = self.numeric_row(row);
        let mut out = Vec::with_capacity(self.schema.len());
        for (fi, field) in self.schema.fields().iter().enumerate() {
            match field.data_type() {
                DataType::Int64 => {
                    let slot = self.numeric_fields.iter().position(|&i| i == fi).unwrap();
                    out.push(Value::Int(packed[slot] as i64));
                }
                DataType::Float64 => {
                    let slot = self.numeric_fields.iter().position(|&i| i == fi).unwrap();
                    out.push(Value::Float(packed[slot]));
                }
                DataType::Utf8 => {
                    let v = &self.strings.iter().find(|(i, _)| *i == fi).unwrap().1;
                    out.push(Value::Str(v[row].clone()));
                }
            }
        }
        Ok(out)
    }

    /// Sum a window of full rows across all numeric fields — the
    /// "tuple-at-a-time touch every attribute" access pattern that favours
    /// row layout; used by the layout experiments as the OLTP-ish probe.
    pub fn sum_rows(&self, start: usize, len: usize) -> f64 {
        let w = self.row_width();
        let end = (start + len).min(self.rows);
        self.data[start * w..end * w].iter().sum()
    }

    /// Reconstruct a column-major [`Table`] (used in tests to verify the
    /// layouts agree).
    pub fn to_table(&self) -> Table {
        let w = self.row_width();
        let mut columns: Vec<Column> = self
            .schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.data_type(), self.rows))
            .collect();
        for (fi, col) in columns.iter_mut().enumerate() {
            match col {
                Column::Int64(v) => {
                    let slot = self.numeric_fields.iter().position(|&i| i == fi).unwrap();
                    v.extend((0..self.rows).map(|r| self.data[r * w + slot] as i64));
                }
                Column::Float64(v) => {
                    let slot = self.numeric_fields.iter().position(|&i| i == fi).unwrap();
                    v.extend((0..self.rows).map(|r| self.data[r * w + slot]));
                }
                Column::Utf8(v) => {
                    let src = &self.strings.iter().find(|(i, _)| *i == fi).unwrap().1;
                    v.extend(src.iter().cloned());
                }
            }
        }
        Table::new(self.schema.clone(), columns).expect("shape preserved")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{sales_table, SalesConfig};

    #[test]
    fn roundtrip_table_rowstore_table() {
        let t = sales_table(&SalesConfig {
            rows: 100,
            ..SalesConfig::default()
        });
        let rs = RowStore::from_table(&t);
        assert_eq!(rs.num_rows(), 100);
        assert_eq!(rs.row_width(), 3); // price, discount, qty
        assert_eq!(rs.to_table(), t);
    }

    #[test]
    fn row_access_matches_table() {
        let t = sales_table(&SalesConfig {
            rows: 20,
            ..SalesConfig::default()
        });
        let rs = RowStore::from_table(&t);
        for r in [0usize, 7, 19] {
            assert_eq!(rs.row(r).unwrap(), t.row(r).unwrap());
        }
        assert!(rs.row(20).is_err());
    }

    #[test]
    fn numeric_slot_lookup() {
        let t = sales_table(&SalesConfig {
            rows: 5,
            ..SalesConfig::default()
        });
        let rs = RowStore::from_table(&t);
        assert_eq!(rs.numeric_slot("price").unwrap(), 0);
        assert_eq!(rs.numeric_slot("qty").unwrap(), 2);
        assert!(rs.numeric_slot("region").is_err());
        assert!(rs.numeric_slot("missing").is_err());
    }

    #[test]
    fn sum_rows_window() {
        let t = sales_table(&SalesConfig {
            rows: 10,
            ..SalesConfig::default()
        });
        let rs = RowStore::from_table(&t);
        let manual: f64 = (2..5).map(|r| rs.numeric_row(r).iter().sum::<f64>()).sum();
        assert!((rs.sum_rows(2, 3) - manual).abs() < 1e-9);
        // Window clamped at the end.
        let tail = rs.sum_rows(8, 100);
        let manual_tail: f64 = (8..10).map(|r| rs.numeric_row(r).iter().sum::<f64>()).sum();
        assert!((tail - manual_tail).abs() < 1e-9);
    }
}
