//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mostly moderate magnitudes, occasionally extreme ones; always finite.
        let mag = match rng.below(8) {
            0..=4 => 1e3,
            5 | 6 => 1e9,
            _ => 1e300,
        };
        (rng.unit_f64() * 2.0 - 1.0) * mag
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('\u{fffd}')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_draws_both_bools_and_finite_floats() {
        let mut rng = TestRng::from_seed(3);
        let s = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
        for _ in 0..100 {
            assert!(any::<f64>().generate(&mut rng).is_finite());
        }
    }
}
