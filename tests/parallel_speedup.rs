//! Wall-clock speedup gate for the morsel-driven executor.
//!
//! The differential suites prove parallel execution is *correct*; this
//! suite holds it to being *worth it*: on a 1M-row filtered group-by,
//! four workers must finish in at most 0.6× the serial wall time.
//!
//! The timing assertion only runs on hosts that can actually park four
//! workers on distinct cores (`available_parallelism() >= 4`) — on
//! smaller hosts (and single-core CI shards) the pool has no helpers
//! and the profitability guard routes the query straight through the
//! serial fast path, so the ratio is parity by design and the test
//! degrades to the bit-identity check. `SPEEDUP_ITERS` scales the
//! best-of-N sampling for soak runs (default 3).

use std::time::Instant;

use exploration::exec::{morsel_count, run_query, ExecPolicy, QueryCtx, MAX_MORSELS};
use exploration::storage::gen::{sales_table, SalesConfig};
use exploration::storage::{AggFunc, Predicate, Query, Table, Value};

const ROWS: usize = 1_000_000;

fn table_1m() -> Table {
    sales_table(&SalesConfig {
        rows: ROWS,
        ..SalesConfig::default()
    })
}

fn filtered_group_by() -> Query {
    Query::new()
        .filter(Predicate::range("price", 50.0, 800.0))
        .group("product")
        .agg(AggFunc::Sum, "price")
        .agg(AggFunc::Avg, "discount")
        .agg(AggFunc::Count, "qty")
}

fn iters() -> usize {
    std::env::var("SPEEDUP_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

/// Bit-for-bit table equality (floats by `to_bits`).
fn assert_bitwise_eq(a: &Table, b: &Table) {
    assert_eq!(a.schema(), b.schema());
    assert_eq!(a.num_rows(), b.num_rows());
    for field in a.schema().fields() {
        let ca = a.column(field.name()).unwrap();
        let cb = b.column(field.name()).unwrap();
        for row in 0..a.num_rows() {
            match (ca.value(row).unwrap(), cb.value(row).unwrap()) {
                (Value::Float(x), Value::Float(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "{}[{row}]", field.name());
                }
                (x, y) => assert_eq!(x, y, "{}[{row}]", field.name()),
            }
        }
    }
}

/// Best-of-N wall time for one policy.
fn best_ns(t: &Table, q: &Query, policy: ExecPolicy, n: usize) -> u128 {
    let ctx = QueryCtx::new(policy);
    (0..n)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(run_query(t, q, &ctx).unwrap());
            start.elapsed().as_nanos()
        })
        .min()
        .unwrap()
}

#[test]
fn adaptive_sizing_keeps_1m_rows_to_few_coarse_morsels() {
    // A 1M-row scan must decompose into a handful of coarse work units,
    // not hundreds of tiny ones — scheduling overhead is what erased
    // the speedup before morsel sizing became adaptive.
    let n = morsel_count(ROWS);
    assert!(
        n <= MAX_MORSELS,
        "1M rows decomposed into {n} morsels (> {MAX_MORSELS})"
    );
    assert!(n >= 4, "1M rows should still fan out ({n} morsels)");
}

#[test]
fn parallel_4_speedup_on_1m_row_filtered_group_by() {
    let t = table_1m();
    let q = filtered_group_by();

    // Bit-identity holds on every host, timed or not.
    let serial_result = run_query(&t, &q, &QueryCtx::none()).unwrap();
    let parallel_result =
        run_query(&t, &q, &QueryCtx::new(ExecPolicy::Parallel { workers: 4 })).unwrap();
    assert_bitwise_eq(&serial_result, &parallel_result);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping wall-clock assertion: only {cores} core(s) available");
        return;
    }

    let n = iters();
    let serial_ns = best_ns(&t, &q, ExecPolicy::Serial, n);
    let parallel_ns = best_ns(&t, &q, ExecPolicy::Parallel { workers: 4 }, n);
    let ratio = parallel_ns as f64 / serial_ns as f64;
    assert!(
        ratio <= 0.6,
        "parallel-4 took {parallel_ns} ns vs serial {serial_ns} ns \
         (ratio {ratio:.3} > 0.6)"
    );
}
