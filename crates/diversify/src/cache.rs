//! Cache-aware diversification (DivIDE — Khan, Sharaf, Albarrak \[41\]).
//!
//! Diversifying every query result from scratch is expensive (quadratic
//! distance evaluations). In an exploration session consecutive queries
//! overlap heavily, so DivIDE reuses the previous query's diversified
//! set: members still valid under the new query seed the greedy
//! selection, trading a little diversity for most of the computation.

use std::collections::HashSet;

use explore_exec::QueryCtx;
use explore_storage::Result;

use crate::algorithms::{mmr, DivStats};
use crate::item::Item;

/// A session-scoped diversification service with result reuse.
#[derive(Debug, Default)]
pub struct DiversityCache {
    /// The last diversified ids.
    last: Vec<u32>,
    stats: DivStats,
    /// Queries served with at least one reused seed.
    pub reused_queries: u64,
}

impl DiversityCache {
    /// A fresh cache.
    pub fn new() -> Self {
        DiversityCache::default()
    }

    /// Accumulated distance-evaluation work.
    pub fn stats(&self) -> DivStats {
        self.stats
    }

    /// Diversify the `items` of a new query. When `reuse` is on, cached
    /// ids still present in the new candidate set seed the selection.
    /// Cancellation flows through to the underlying [`mmr`] rounds; a
    /// cancelled call leaves the previous query's cache entry intact.
    pub fn diversify(
        &mut self,
        items: &[Item],
        k: usize,
        lambda: f64,
        reuse: bool,
        ctx: &QueryCtx,
    ) -> Result<Vec<u32>> {
        let seeds: Vec<u32> = if reuse {
            let valid: HashSet<u32> = items.iter().map(|i| i.id).collect();
            self.last
                .iter()
                .copied()
                .filter(|id| valid.contains(id))
                .collect()
        } else {
            Vec::new()
        };
        if !seeds.is_empty() {
            self.reused_queries += 1;
        }
        let ids = mmr(items, k, lambda, &seeds, &mut self.stats, ctx)?;
        self.last = ids.clone();
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::objective;
    use explore_storage::rng::SplitMix64;

    fn items(seed: u64, n: usize, id_offset: u32) -> Vec<Item> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|i| {
                Item::new(
                    id_offset + i as u32,
                    rng.unit_f64(),
                    vec![rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)],
                )
            })
            .collect()
    }

    #[test]
    fn reuse_cuts_distance_work_on_overlapping_queries() {
        let base = items(1, 300, 0);
        // Query 2 = 90% overlap with query 1.
        let q1: Vec<Item> = base[..270].to_vec();
        let q2: Vec<Item> = base[30..].to_vec();

        let mut with = DiversityCache::new();
        with.diversify(&q1, 20, 0.5, true, &QueryCtx::none())
            .unwrap();
        let work_q1 = with.stats().distance_evals;
        with.diversify(&q2, 20, 0.5, true, &QueryCtx::none())
            .unwrap();
        let with_q2 = with.stats().distance_evals - work_q1;

        let mut without = DiversityCache::new();
        without
            .diversify(&q1, 20, 0.5, false, &QueryCtx::none())
            .unwrap();
        let base_q1 = without.stats().distance_evals;
        without
            .diversify(&q2, 20, 0.5, false, &QueryCtx::none())
            .unwrap();
        let without_q2 = without.stats().distance_evals - base_q1;

        assert!(
            with_q2 < without_q2,
            "reuse {with_q2} vs scratch {without_q2}"
        );
        assert_eq!(with.reused_queries, 1);
        assert_eq!(without.reused_queries, 0);
    }

    #[test]
    fn reused_result_quality_stays_close() {
        let base = items(2, 300, 0);
        let q1: Vec<Item> = base[..280].to_vec();
        let q2: Vec<Item> = base[20..].to_vec();
        let lambda = 0.5;

        let mut cache = DiversityCache::new();
        cache
            .diversify(&q1, 15, lambda, true, &QueryCtx::none())
            .unwrap();
        let reused = cache
            .diversify(&q2, 15, lambda, true, &QueryCtx::none())
            .unwrap();

        let mut scratch = DiversityCache::new();
        let fresh = scratch
            .diversify(&q2, 15, lambda, false, &QueryCtx::none())
            .unwrap();

        let score = |ids: &[u32]| {
            let refs: Vec<&Item> = ids
                .iter()
                .map(|&id| q2.iter().find(|i| i.id == id).unwrap())
                .collect();
            objective(&refs, lambda)
        };
        let (r, f) = (score(&reused), score(&fresh));
        assert!(r > f * 0.85, "reused {r} vs fresh {f}");
    }

    #[test]
    fn disjoint_queries_cannot_reuse() {
        let mut cache = DiversityCache::new();
        cache
            .diversify(&items(3, 100, 0), 10, 0.5, true, &QueryCtx::none())
            .unwrap();
        cache
            .diversify(&items(4, 100, 1000), 10, 0.5, true, &QueryCtx::none())
            .unwrap();
        assert_eq!(cache.reused_queries, 0, "no overlapping ids");
    }

    #[test]
    fn first_query_never_reuses() {
        let mut cache = DiversityCache::new();
        let ids = cache
            .diversify(&items(5, 50, 0), 10, 0.5, true, &QueryCtx::none())
            .unwrap();
        assert_eq!(ids.len(), 10);
        assert_eq!(cache.reused_queries, 0);
    }
}
