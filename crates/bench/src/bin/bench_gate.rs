//! CI bench-regression gate: compare a fresh `BENCH_*.json` against a
//! committed baseline and fail when a benchmark regressed.
//!
//! ```text
//! bench_gate <fresh.json> <baseline.json>
//! ```
//!
//! Rules, per baseline record (matched to the fresh run by `id`).
//! Every record carries a regression *direction*; records written
//! before the field existed default to the pre-direction behavior
//! (`unit == "ns"` ⇒ `lower_ns`, anything else ⇒ `higher_value`), so
//! old baselines keep parsing and gating exactly as they did:
//!
//! * `lower_ns` (timings, latency percentiles): fail when
//!   `fresh.min_ns > threshold × baseline.min_ns`. `min_ns` is the
//!   comparison metric because a minimum over samples is the
//!   noise-robust statistic the shim provides — means on shared CI
//!   runners drift with load.
//! * `higher_value` (hit rates, speedup ratios): fail when the fresh
//!   value dropped more than [`VALUE_DROP`] below the baseline (these
//!   regress by falling, not slowing).
//! * `lower_value` (violation rates, error counts): fail when the
//!   fresh value rose more than [`VALUE_DROP`] above the baseline.
//! * a baseline id missing from the fresh run fails (a silently deleted
//!   bench is a regression of coverage); fresh ids absent from the
//!   baseline pass and are listed as new.
//!
//! Records also carry the host's core count. When fresh and baseline
//! disagree the gate *warns* instead of adjusting or failing — a
//! baseline recorded on a single-core box says nothing trustworthy
//! about parallel speedups measured on four cores (and vice versa),
//! so the mismatch is surfaced for a human to refresh the baseline.
//!
//! Environment:
//!
//! * `BENCH_GATE=warn` — report regressions but exit 0 (for noisy
//!   runners or intentional slowdowns awaiting a baseline refresh).
//! * `BENCH_GATE_THRESHOLD` — timing ratio limit (default 1.5).
//!
//! The parser is hand-rolled for the flat record shape the vendored
//! criterion shim writes; there is no serde in this workspace.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Default timing-regression threshold: fresh min may be up to 1.5×
/// the baseline min before the gate trips.
const DEFAULT_THRESHOLD: f64 = 1.5;

/// Maximum absolute drop tolerated for non-timing value records.
const VALUE_DROP: f64 = 10.0;

/// Which way a record regresses (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    LowerNs,
    HigherValue,
    LowerValue,
}

#[derive(Debug, Clone, PartialEq)]
struct Record {
    id: String,
    min_ns: u128,
    value: f64,
    unit: String,
    /// Explicit regression direction; `None` on records written before
    /// the field existed (gated by the pre-direction inference).
    direction: Option<Direction>,
    /// Host core count stamped by the criterion shim; `None` on
    /// records written before the field existed.
    cores: Option<u64>,
}

/// The direction a (fresh, baseline) pair gates under: the fresh
/// record's explicit direction wins (the shim now always writes one),
/// then the baseline's, then the legacy inference that kept every
/// pre-direction baseline passing — timings are lower-better, value
/// records higher-better.
fn effective_direction(now: &Record, base: &Record) -> Direction {
    now.direction
        .or(base.direction)
        .unwrap_or(if base.unit == "ns" {
            Direction::LowerNs
        } else {
            Direction::HigherValue
        })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [fresh_path, baseline_path] = args.as_slice() else {
        eprintln!("usage: bench_gate <fresh.json> <baseline.json>");
        return ExitCode::from(2);
    };
    let threshold = std::env::var("BENCH_GATE_THRESHOLD")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t > 1.0)
        .unwrap_or(DEFAULT_THRESHOLD);
    let warn_only = std::env::var("BENCH_GATE").is_ok_and(|v| v.eq_ignore_ascii_case("warn"));

    let fresh = match load(fresh_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_gate: {fresh_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match load(baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_gate: {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(warning) = cores_mismatch(&fresh, &baseline) {
        eprintln!("bench_gate: {warning}");
    }
    let verdicts = gate(&fresh, &baseline, threshold);
    let mut failures = 0usize;
    for v in &verdicts {
        let tag = match v.outcome {
            Outcome::Ok => "ok  ",
            Outcome::New => "new ",
            Outcome::Regressed | Outcome::Missing => {
                failures += 1;
                "FAIL"
            }
        };
        println!("{tag}  {}", v.detail);
    }
    println!(
        "bench_gate: {} baseline ids, {} fresh, {} failures (threshold {threshold}x{})",
        baseline.len(),
        fresh.len(),
        failures,
        if warn_only { ", warn-only" } else { "" }
    );
    if failures > 0 && !warn_only {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Ok,
    New,
    Regressed,
    Missing,
}

#[derive(Debug)]
struct Verdict {
    outcome: Outcome,
    detail: String,
}

/// Compare fresh records against the baseline; one verdict per id.
fn gate(fresh: &[Record], baseline: &[Record], threshold: f64) -> Vec<Verdict> {
    let fresh_by_id: BTreeMap<&str, &Record> = fresh.iter().map(|r| (r.id.as_str(), r)).collect();
    let mut verdicts = Vec::with_capacity(baseline.len() + fresh.len());
    for base in baseline {
        let Some(now) = fresh_by_id.get(base.id.as_str()) else {
            verdicts.push(Verdict {
                outcome: Outcome::Missing,
                detail: format!("{} — in baseline but missing from fresh run", base.id),
            });
            continue;
        };
        verdicts.push(judge(now, base, threshold));
    }
    let base_ids: BTreeMap<&str, ()> = baseline.iter().map(|r| (r.id.as_str(), ())).collect();
    for now in fresh {
        if !base_ids.contains_key(now.id.as_str()) {
            verdicts.push(Verdict {
                outcome: Outcome::New,
                detail: format!("{} — no baseline yet", now.id),
            });
        }
    }
    verdicts
}

fn judge(now: &Record, base: &Record, threshold: f64) -> Verdict {
    match effective_direction(now, base) {
        Direction::LowerNs => {
            if base.min_ns == 0 {
                return Verdict {
                    outcome: Outcome::Ok,
                    detail: format!("{} — baseline min 0 ns, skipped", base.id),
                };
            }
            let ratio = now.min_ns as f64 / base.min_ns as f64;
            let detail = format!(
                "{} — min {} ns vs baseline {} ns ({ratio:.2}x)",
                base.id, now.min_ns, base.min_ns
            );
            Verdict {
                outcome: if ratio > threshold {
                    Outcome::Regressed
                } else {
                    Outcome::Ok
                },
                detail,
            }
        }
        Direction::HigherValue => {
            let drop = base.value - now.value;
            let detail = format!(
                "{} — {} {} vs baseline {} (drop {drop:.1})",
                base.id, now.value, base.unit, base.value
            );
            Verdict {
                outcome: if drop > VALUE_DROP {
                    Outcome::Regressed
                } else {
                    Outcome::Ok
                },
                detail,
            }
        }
        Direction::LowerValue => {
            let rise = now.value - base.value;
            let detail = format!(
                "{} — {} {} vs baseline {} (rise {rise:.1})",
                base.id, now.value, base.unit, base.value
            );
            Verdict {
                outcome: if rise > VALUE_DROP {
                    Outcome::Regressed
                } else {
                    Outcome::Ok
                },
                detail,
            }
        }
    }
}

/// First core count found in a record set, if any.
fn cores_of(records: &[Record]) -> Option<u64> {
    records.iter().find_map(|r| r.cores)
}

/// A warning line when fresh and baseline were measured on hosts with
/// different core counts (`None` when they match or either is silent).
/// Core-sensitive records — parallel speedups, shard fan-out ratios —
/// are not comparable across host sizes, so the gate surfaces the
/// mismatch without failing: refreshing the baseline is a human call.
fn cores_mismatch(fresh: &[Record], baseline: &[Record]) -> Option<String> {
    let (f, b) = (cores_of(fresh)?, cores_of(baseline)?);
    (f != b).then(|| {
        format!(
            "warning: fresh run measured on {f} cores but baseline on {b}; \
             core-sensitive records (speedups, fan-out ratios) are not \
             comparable — consider refreshing the baseline on this host"
        )
    })
}

fn load(path: &str) -> Result<Vec<Record>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse_records(&text)
}

/// Parse a JSON array of flat benchmark records. Tolerates pre-`value`
/// records (older baselines): `unit` defaults to `"ns"` and `value` to
/// `min_ns`; `direction` and `cores` stay `None` when absent. An
/// unrecognized direction string is an error — a typo'd direction
/// silently inverting a gate would be worse than a loud parse failure.
fn parse_records(text: &str) -> Result<Vec<Record>, String> {
    let mut records = Vec::new();
    for obj in split_objects(text)? {
        let id = field_str(obj, "id").ok_or_else(|| format!("record without id: {obj}"))?;
        let min_ns = field_raw(obj, "min_ns")
            .and_then(|v| v.parse::<u128>().ok())
            .ok_or_else(|| format!("record without min_ns: {obj}"))?;
        let unit = field_str(obj, "unit").unwrap_or_else(|| "ns".to_owned());
        let value = field_raw(obj, "value")
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(min_ns as f64);
        let direction = match field_str(obj, "direction").as_deref() {
            None => None,
            Some("lower_ns") => Some(Direction::LowerNs),
            Some("higher_value") => Some(Direction::HigherValue),
            Some("lower_value") => Some(Direction::LowerValue),
            Some(other) => return Err(format!("{id}: unknown direction {other:?}")),
        };
        let cores = field_raw(obj, "cores").and_then(|v| v.parse::<u64>().ok());
        records.push(Record {
            id,
            min_ns,
            value,
            unit,
            direction,
            cores,
        });
    }
    Ok(records)
}

/// Slice out each top-level `{...}` object, respecting string literals.
fn split_objects(text: &str) -> Result<Vec<&str>, String> {
    let mut objects = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in text.char_indices() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            '}' => {
                depth = depth.checked_sub(1).ok_or("unbalanced braces")?;
                if depth == 0 {
                    objects.push(&text[start..=i]);
                }
            }
            _ => {}
        }
    }
    if depth != 0 || in_string {
        return Err("truncated JSON".to_owned());
    }
    Ok(objects)
}

/// The raw token following `"key":` within a flat object, up to the
/// next comma or closing brace (for numbers/bools).
fn field_raw(obj: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = obj.find(&needle)? + needle.len();
    let rest = obj[at..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().to_owned())
}

/// A string field's unescaped value.
fn field_str(obj: &str, key: &str) -> Option<String> {
    let raw = field_raw(obj, key)?;
    let raw = raw.strip_prefix('"')?;
    // Walk to the closing quote, honouring the two escapes the shim
    // writes (`\"` and `\\`).
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            _ => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {"id": "g/fast", "samples": 3, "min_ns": 1000, "mean_ns": 1100, "max_ns": 1200, "value": 1000, "unit": "ns"},
  {"id": "stats/rate", "samples": 1, "min_ns": 0, "mean_ns": 0, "max_ns": 0, "value": 90.5, "unit": "percent"}
]
"#;

    fn rec(id: &str, min_ns: u128) -> Record {
        Record {
            id: id.into(),
            min_ns,
            value: min_ns as f64,
            unit: "ns".into(),
            direction: None,
            cores: None,
        }
    }

    fn pct(id: &str, value: f64) -> Record {
        Record {
            id: id.into(),
            min_ns: 0,
            value,
            unit: "percent".into(),
            direction: None,
            cores: None,
        }
    }

    fn directed(id: &str, value: f64, direction: Direction) -> Record {
        Record {
            direction: Some(direction),
            ..pct(id, value)
        }
    }

    #[test]
    fn parses_shim_output() {
        let records = parse_records(SAMPLE).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], rec("g/fast", 1000));
        assert_eq!(records[1], pct("stats/rate", 90.5));
    }

    #[test]
    fn parses_legacy_records_without_value_unit() {
        let legacy =
            r#"[{"id": "old/bench", "samples": 3, "min_ns": 42, "mean_ns": 50, "max_ns": 60}]"#;
        let records = parse_records(legacy).unwrap();
        assert_eq!(records[0], rec("old/bench", 42));
    }

    #[test]
    fn escaped_ids_round_trip() {
        let text = r#"[{"id": "quo\"te\\slash", "min_ns": 7}]"#;
        let records = parse_records(text).unwrap();
        assert_eq!(records[0].id, "quo\"te\\slash");
    }

    #[test]
    fn truncated_input_is_an_error() {
        assert!(parse_records(r#"[{"id": "x", "min_ns": 1"#).is_err());
        assert!(parse_records(r#"[{"min_ns": 1}]"#).is_err());
    }

    #[test]
    fn timing_regressions_trip_at_threshold() {
        let base = vec![rec("a", 1000)];
        let ok = gate(&[rec("a", 1499)], &base, 1.5);
        assert_eq!(ok[0].outcome, Outcome::Ok);
        let bad = gate(&[rec("a", 1501)], &base, 1.5);
        assert_eq!(bad[0].outcome, Outcome::Regressed);
    }

    #[test]
    fn value_records_gate_on_absolute_drop() {
        let base = vec![pct("r", 95.0)];
        assert_eq!(gate(&[pct("r", 86.0)], &base, 1.5)[0].outcome, Outcome::Ok);
        assert_eq!(
            gate(&[pct("r", 80.0)], &base, 1.5)[0].outcome,
            Outcome::Regressed
        );
        // Improvements never trip.
        assert_eq!(gate(&[pct("r", 100.0)], &base, 1.5)[0].outcome, Outcome::Ok);
    }

    #[test]
    fn missing_baseline_id_fails_and_new_ids_pass() {
        let base = vec![rec("kept", 100), rec("deleted", 100)];
        let fresh = vec![rec("kept", 100), rec("brand_new", 100)];
        let verdicts = gate(&fresh, &base, 1.5);
        let of = |id: &str| {
            verdicts
                .iter()
                .find(|v| v.detail.starts_with(id))
                .unwrap()
                .outcome
        };
        assert_eq!(of("kept"), Outcome::Ok);
        assert_eq!(of("deleted"), Outcome::Missing);
        assert_eq!(of("brand_new"), Outcome::New);
    }

    #[test]
    fn zero_baseline_min_is_skipped_not_divided() {
        let base = vec![rec("z", 0)];
        assert_eq!(gate(&[rec("z", 999)], &base, 1.5)[0].outcome, Outcome::Ok);
    }

    #[test]
    fn direction_and_cores_fields_parse() {
        let text = r#"[
  {"id": "w/p95", "samples": 1, "min_ns": 5000, "mean_ns": 5000, "max_ns": 5000, "value": 5000, "unit": "ns", "direction": "lower_ns", "cores": 4},
  {"id": "w/violations", "samples": 1, "min_ns": 0, "mean_ns": 0, "max_ns": 0, "value": 1.5, "unit": "percent", "direction": "lower_value", "cores": 4}
]"#;
        let records = parse_records(text).unwrap();
        assert_eq!(records[0].direction, Some(Direction::LowerNs));
        assert_eq!(records[0].cores, Some(4));
        assert_eq!(records[1].direction, Some(Direction::LowerValue));
        assert!(parse_records(r#"[{"id": "x", "min_ns": 1, "direction": "sideways"}]"#).is_err());
    }

    #[test]
    fn legacy_records_infer_the_pre_direction_behavior() {
        // No direction anywhere: ns gates as lower-better timing,
        // value units as higher-better — byte-for-byte the old rules.
        assert_eq!(
            effective_direction(&rec("t", 5), &rec("t", 5)),
            Direction::LowerNs
        );
        assert_eq!(
            effective_direction(&pct("r", 5.0), &pct("r", 5.0)),
            Direction::HigherValue
        );
        // Fresh explicit direction wins over inference and baseline.
        assert_eq!(
            effective_direction(&directed("r", 5.0, Direction::LowerValue), &pct("r", 5.0)),
            Direction::LowerValue
        );
        // A direction-bearing baseline governs a legacy fresh run.
        assert_eq!(
            effective_direction(&pct("r", 5.0), &directed("r", 5.0, Direction::LowerValue)),
            Direction::LowerValue
        );
    }

    #[test]
    fn lower_value_records_gate_on_absolute_rise() {
        let base = vec![directed("viol", 1.0, Direction::LowerValue)];
        // Rising within the margin passes; beyond it fails.
        assert_eq!(
            gate(&[directed("viol", 9.0, Direction::LowerValue)], &base, 1.5)[0].outcome,
            Outcome::Ok
        );
        assert_eq!(
            gate(&[directed("viol", 12.0, Direction::LowerValue)], &base, 1.5)[0].outcome,
            Outcome::Regressed
        );
        // Improvements (drops) never trip a lower-better record.
        assert_eq!(
            gate(&[directed("viol", 0.0, Direction::LowerValue)], &base, 1.5)[0].outcome,
            Outcome::Ok
        );
    }

    #[test]
    fn explicit_lower_ns_direction_gates_latency_value_records() {
        let base = vec![Record {
            direction: Some(Direction::LowerNs),
            ..rec("w/p95", 1000)
        }];
        let slow = Record {
            direction: Some(Direction::LowerNs),
            ..rec("w/p95", 1501)
        };
        assert_eq!(gate(&[slow], &base, 1.5)[0].outcome, Outcome::Regressed);
    }

    #[test]
    fn core_count_mismatch_warns_not_fails() {
        let with_cores = |id: &str, cores| Record {
            cores: Some(cores),
            ..rec(id, 100)
        };
        let fresh = vec![with_cores("a", 4)];
        let base = vec![with_cores("a", 1)];
        let warning = cores_mismatch(&fresh, &base).expect("mismatch warns");
        assert!(warning.contains("4 cores") && warning.contains("baseline on 1"));
        // The verdicts themselves are unaffected.
        assert_eq!(gate(&fresh, &base, 1.5)[0].outcome, Outcome::Ok);
        // Same cores, or either side silent (legacy baselines): no warning.
        assert!(cores_mismatch(&fresh, &[with_cores("a", 4)]).is_none());
        assert!(cores_mismatch(&fresh, &[rec("a", 100)]).is_none());
        assert!(cores_mismatch(&[rec("a", 100)], &base).is_none());
    }
}
