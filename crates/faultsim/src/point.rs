//! Seed-driven fail-point registry.
//!
//! A fail point is a named site in the engine that can be *armed* with
//! a [`Schedule`]. Each time execution passes the site it calls
//! [`FailPoints::fire`]; the schedule decides — deterministically, as a
//! pure function of the point's hit counter and an optional seed —
//! whether the fault triggers on that hit. Disarmed registries cost one
//! relaxed atomic load per site.
//!
//! The registry also keeps a side table of *events*: counters for the
//! degradation paths that engage in response to faults or cancellation
//! ("exec.serial_fallback", "cancel.cancelled", …). Events always
//! count, armed or not, and an optional observer callback mirrors both
//! trips and events into the engine's metrics registry under
//! `fault.*`/`cancel.*` names.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// When an armed fail point triggers, as a function of its 1-based hit
/// index. All schedules are deterministic: re-running the same hit
/// sequence reproduces the same trigger sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Trigger on every hit.
    Always,
    /// Trigger on exactly the `n`-th hit (1-based), once.
    Nth(u64),
    /// Trigger on every `n`-th hit (n, 2n, 3n, …).
    EveryNth(u64),
    /// Trigger on the first `n` hits, then never again.
    FirstN(u64),
    /// Trigger pseudo-randomly on roughly one in `one_in` hits. The
    /// decision is `mix(seed, hit) % one_in == 0` — a pure function of
    /// the seed and hit index, so a given seed replays identically.
    Seeded { seed: u64, one_in: u64 },
}

impl Schedule {
    /// Does this schedule trigger on the given 1-based hit index?
    fn triggers(&self, hit: u64) -> bool {
        match *self {
            Schedule::Always => true,
            Schedule::Nth(n) => hit == n.max(1),
            Schedule::EveryNth(n) => hit.is_multiple_of(n.max(1)),
            Schedule::FirstN(n) => hit <= n,
            Schedule::Seeded { seed, one_in } => mix(seed, hit).is_multiple_of(one_in.max(1)),
        }
    }
}

/// SplitMix64 finalizer over `(seed, hit)` — a stateless hash so the
/// schedule decision for hit `k` does not depend on evaluation order.
fn mix(seed: u64, hit: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(hit.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Internal per-point state.
#[derive(Debug)]
struct Point {
    schedule: Schedule,
    hits: AtomicU64,
    trips: AtomicU64,
}

/// Frozen counters for one fail point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PointStats {
    /// Times execution passed the armed site.
    pub hits: u64,
    /// Times the schedule actually triggered the fault.
    pub trips: u64,
}

/// A handle to one armed fail point, returned by [`FailPoints::arm`].
/// Cheap to clone; counters stay readable after the point is disarmed.
#[derive(Debug, Clone)]
pub struct FailPoint {
    name: String,
    point: Arc<Point>,
}

impl FailPoint {
    /// The point's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Times execution passed the site while armed.
    pub fn hits(&self) -> u64 {
        self.point.hits.load(Ordering::Relaxed)
    }

    /// Times the fault actually triggered.
    pub fn trips(&self) -> u64 {
        self.point.trips.load(Ordering::Relaxed)
    }
}

/// Observer invoked once per trip/event with the metric-style name
/// (`fault.<point>` for trips, the event name verbatim for events).
pub type Observer = Arc<dyn Fn(&str) + Send + Sync>;

/// Registry of named fail points plus degradation-event counters.
#[derive(Default)]
pub struct FailPoints {
    /// Fast gate: false ⇒ no point is armed and `fire` is one load.
    armed: AtomicBool,
    points: RwLock<BTreeMap<String, Arc<Point>>>,
    events: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    observer: RwLock<Option<Observer>>,
}

impl std::fmt::Debug for FailPoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailPoints")
            .field("armed", &self.armed.load(Ordering::Relaxed))
            .field("points", &self.points.read())
            .finish_non_exhaustive()
    }
}

impl FailPoints {
    /// An empty, disarmed registry.
    pub fn new() -> Self {
        FailPoints::default()
    }

    /// Arm (or re-arm) the named point with a schedule. Re-arming
    /// resets the hit/trip counters.
    pub fn arm(&self, name: &str, schedule: Schedule) -> FailPoint {
        let point = Arc::new(Point {
            schedule,
            hits: AtomicU64::new(0),
            trips: AtomicU64::new(0),
        });
        self.points
            .write()
            .insert(name.to_owned(), Arc::clone(&point));
        self.armed.store(true, Ordering::Release);
        FailPoint {
            name: name.to_owned(),
            point,
        }
    }

    /// Disarm one point; remaining points stay armed.
    pub fn disarm(&self, name: &str) {
        let mut points = self.points.write();
        points.remove(name);
        if points.is_empty() {
            self.armed.store(false, Ordering::Release);
        }
    }

    /// Disarm every point. Event counters are kept.
    pub fn disarm_all(&self) {
        self.points.write().clear();
        self.armed.store(false, Ordering::Release);
    }

    /// Is any point currently armed?
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Should the named site fail on this hit? The disarmed fast path
    /// is a single relaxed load.
    pub fn fire(&self, name: &str) -> bool {
        if !self.armed.load(Ordering::Relaxed) {
            return false;
        }
        let point = match self.points.read().get(name) {
            Some(p) => Arc::clone(p),
            None => return false,
        };
        let hit = point.hits.fetch_add(1, Ordering::Relaxed) + 1;
        if !point.schedule.triggers(hit) {
            return false;
        }
        point.trips.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = self.observer.read().as_ref() {
            obs(&format!("fault.{name}"));
        }
        true
    }

    /// Count a degradation/cancellation event (e.g.
    /// "fault.exec.serial_fallback", "cancel.cancelled"). Events count
    /// whether or not any point is armed.
    pub fn note(&self, event: &str) {
        // The read guard must drop before any write acquisition: an
        // `if let` scrutinee temporary would otherwise still be held in
        // the `else` branch (edition-2021 scoping) and self-deadlock.
        let counter = self.events.read().get(event).cloned();
        match counter {
            Some(c) => c.fetch_add(1, Ordering::Relaxed),
            None => self
                .events
                .write()
                .entry(event.to_owned())
                .or_default()
                .fetch_add(1, Ordering::Relaxed),
        };
        if let Some(obs) = self.observer.read().as_ref() {
            obs(event);
        }
    }

    /// An event counter's value (0 when never noted).
    pub fn event(&self, event: &str) -> u64 {
        self.events
            .read()
            .get(event)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Trip count of a named point (0 when never armed).
    pub fn trips(&self, name: &str) -> u64 {
        self.points
            .read()
            .get(name)
            .map(|p| p.trips.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Frozen hit/trip counters for every armed point.
    pub fn stats(&self) -> BTreeMap<String, PointStats> {
        self.points
            .read()
            .iter()
            .map(|(name, p)| {
                (
                    name.clone(),
                    PointStats {
                        hits: p.hits.load(Ordering::Relaxed),
                        trips: p.trips.load(Ordering::Relaxed),
                    },
                )
            })
            .collect()
    }

    /// Frozen values of every event counter.
    pub fn events(&self) -> BTreeMap<String, u64> {
        self.events
            .read()
            .iter()
            .map(|(name, c)| (name.clone(), c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Install a callback mirroring trips and events into an external
    /// metrics sink; replaces any previous observer.
    pub fn set_observer(&self, observer: Option<Observer>) {
        *self.observer.write() = observer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_registry_never_fires() {
        let f = FailPoints::new();
        assert!(!f.is_armed());
        assert!(!f.fire("cache.admit"));
        assert_eq!(f.trips("cache.admit"), 0);
    }

    #[test]
    fn schedules_trigger_deterministically() {
        let f = FailPoints::new();
        let p = f.arm("x", Schedule::Nth(3));
        let fired: Vec<bool> = (0..5).map(|_| f.fire("x")).collect();
        assert_eq!(fired, [false, false, true, false, false]);
        assert_eq!(p.hits(), 5);
        assert_eq!(p.trips(), 1);

        f.arm("x", Schedule::EveryNth(2));
        let fired: Vec<bool> = (0..4).map(|_| f.fire("x")).collect();
        assert_eq!(fired, [false, true, false, true]);

        f.arm("x", Schedule::FirstN(2));
        let fired: Vec<bool> = (0..4).map(|_| f.fire("x")).collect();
        assert_eq!(fired, [true, true, false, false]);

        f.arm("x", Schedule::Always);
        assert!(f.fire("x"));
    }

    #[test]
    fn seeded_schedule_replays_identically() {
        let run = |seed: u64| -> Vec<bool> {
            let f = FailPoints::new();
            f.arm("x", Schedule::Seeded { seed, one_in: 4 });
            (0..64).map(|_| f.fire("x")).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
        let trips = run(7).iter().filter(|&&b| b).count();
        assert!((4..=32).contains(&trips), "~1/4 rate, got {trips}/64");
    }

    #[test]
    fn disarm_restores_fast_path() {
        let f = FailPoints::new();
        f.arm("a", Schedule::Always);
        f.arm("b", Schedule::Always);
        f.disarm("a");
        assert!(f.is_armed(), "b still armed");
        assert!(!f.fire("a"));
        assert!(f.fire("b"));
        f.disarm_all();
        assert!(!f.is_armed());
        assert!(!f.fire("b"));
    }

    #[test]
    fn events_count_without_arming() {
        let f = FailPoints::new();
        f.note("cancel.cancelled");
        f.note("cancel.cancelled");
        assert_eq!(f.event("cancel.cancelled"), 2);
        assert_eq!(f.event("never"), 0);
        assert_eq!(f.events().len(), 1);
    }

    #[test]
    fn observer_sees_trips_and_events() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let f = FailPoints::new();
        let sink = Arc::clone(&seen);
        f.set_observer(Some(Arc::new(move |name: &str| {
            sink.lock().unwrap().push(name.to_owned());
        })));
        f.arm("cache.admit", Schedule::Always);
        f.fire("cache.admit");
        f.note("cancel.deadline");
        assert_eq!(
            *seen.lock().unwrap(),
            vec!["fault.cache.admit".to_owned(), "cancel.deadline".to_owned()]
        );
    }

    #[test]
    fn stats_snapshot_all_points() {
        let f = FailPoints::new();
        f.arm("a", Schedule::Always);
        f.arm("b", Schedule::Nth(10));
        f.fire("a");
        f.fire("b");
        let stats = f.stats();
        assert_eq!(stats["a"], PointStats { hits: 1, trips: 1 });
        assert_eq!(stats["b"], PointStats { hits: 1, trips: 0 });
    }
}
