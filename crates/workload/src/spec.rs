//! The trajectory grammar: seeded generation of interactive
//! exploration sessions.
//!
//! A [`SessionSpec`] is the *plan* of one analyst session — a sequence
//! of [`Interaction`]s drawn from the exploration patterns the tutorial
//! catalogues: range filtering with progressive refinement (result-reuse
//! territory), viewport panning (prefetching territory), cube
//! drill-downs (discovery-driven exploration) and point lookups through
//! the adaptive index (database cracking). Generation is pure: every
//! decision comes from one [`SplitMix64`] stream derived from
//! `(workload seed, session number)`, so the same pair always yields
//! the same trajectory, independent of the machine, the thread that
//! replays it, or what the other sessions are doing.

use explore_storage::rng::SplitMix64;

/// Stream-splitting constant (the SplitMix64 gamma), so per-session
/// streams derived from one workload seed do not overlap.
const SESSION_STREAM: u64 = 0xA076_1D64_78BD_642F;

/// Grid resolution the pan interactions assume (matches the 32×32
/// [`GridIndex`](explore_prefetch::GridIndex) the runner builds).
pub const GRID_CELLS: i64 = 32;

/// One step of an exploration trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Interaction {
    /// Fresh range filter over `price`, grouped by region: the classic
    /// "restrict then aggregate" exploration step.
    Filter { lo: f64, hi: f64 },
    /// Narrow the *current* filter: bounds are strictly inside the
    /// previous ones, so a semantic cache can answer by subsumption.
    Refine { lo: f64, hi: f64 },
    /// Move/zoom the session viewport over the sky grid.
    Pan { dx: i64, dy: i64, resize: i64 },
    /// Discovery-driven drill: 2-D cube over a dimension pair.
    Drill {
        dim_a: &'static str,
        dim_b: &'static str,
    },
    /// Point lookup of one `qty` value through the cracked index.
    Lookup { qty: i64 },
}

impl Interaction {
    /// The latency class this interaction is accounted under.
    pub fn kind(&self) -> &'static str {
        match self {
            Interaction::Filter { .. } => "filter",
            Interaction::Refine { .. } => "refine",
            Interaction::Pan { .. } => "pan",
            Interaction::Drill { .. } => "drill",
            Interaction::Lookup { .. } => "lookup",
        }
    }
}

/// All dimension pairs a drill interaction can pick from.
const DRILL_PAIRS: [(&str, &str); 3] = [
    ("region", "product"),
    ("region", "channel"),
    ("product", "channel"),
];

/// The deterministic plan of one session: which interactions, in which
/// order, with which parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Session number within the workload (0-based).
    pub session: u64,
    pub interactions: Vec<Interaction>,
}

impl SessionSpec {
    /// Generate session `session` of the workload seeded by `seed`,
    /// `len` interactions long. Pure function of its arguments.
    pub fn generate(seed: u64, session: u64, len: usize) -> SessionSpec {
        let mut rng = SplitMix64::new(seed.wrapping_add(session.wrapping_mul(SESSION_STREAM)));
        let mut interactions = Vec::with_capacity(len);
        // Current filter bounds; refinement narrows them, a fresh filter
        // resets them. `None` until the first filter has run.
        let mut bounds: Option<(f64, f64)> = None;
        for step in 0..len {
            let roll = if step == 0 { 0.0 } else { rng.unit_f64() };
            let next = if roll < 0.25 {
                let lo = rng.range_f64(0.0, 400.0);
                let hi = lo + rng.range_f64(100.0, 400.0);
                bounds = Some((lo, hi));
                Interaction::Filter { lo, hi }
            } else if roll < 0.50 {
                match bounds {
                    // Shrink each edge by up to a quarter of the width:
                    // the new range is strictly inside the old one, so
                    // the cache can serve it by subsumption.
                    Some((lo, hi)) => {
                        let w = hi - lo;
                        let new_lo = lo + rng.unit_f64() * 0.25 * w;
                        let new_hi = hi - rng.unit_f64() * 0.25 * w;
                        bounds = Some((new_lo, new_hi));
                        Interaction::Refine {
                            lo: new_lo,
                            hi: new_hi,
                        }
                    }
                    // Nothing to refine yet: degrade to a fresh filter.
                    None => {
                        let lo = rng.range_f64(0.0, 400.0);
                        let hi = lo + rng.range_f64(100.0, 400.0);
                        bounds = Some((lo, hi));
                        Interaction::Filter { lo, hi }
                    }
                }
            } else if roll < 0.70 {
                Interaction::Pan {
                    dx: rng.range_i64(-2, 2),
                    dy: rng.range_i64(-2, 2),
                    resize: rng.range_i64(-1, 1),
                }
            } else if roll < 0.85 {
                let (dim_a, dim_b) = DRILL_PAIRS[rng.below(DRILL_PAIRS.len() as u64) as usize];
                Interaction::Drill { dim_a, dim_b }
            } else {
                Interaction::Lookup {
                    qty: rng.range_i64(1, 9),
                }
            };
            interactions.push(next);
        }
        SessionSpec {
            session,
            interactions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SessionSpec::generate(7, 3, 64);
        let b = SessionSpec::generate(7, 3, 64);
        assert_eq!(a, b);
        let c = SessionSpec::generate(8, 3, 64);
        assert_ne!(a, c, "different seed, different trajectory");
        let d = SessionSpec::generate(7, 4, 64);
        assert_ne!(a, d, "different session, different trajectory");
    }

    #[test]
    fn first_interaction_is_a_filter_and_refines_nest() {
        for seed in 0..20u64 {
            for session in 0..4u64 {
                let spec = SessionSpec::generate(seed, session, 40);
                assert_eq!(spec.interactions.len(), 40);
                assert!(matches!(spec.interactions[0], Interaction::Filter { .. }));
                let mut bounds: Option<(f64, f64)> = None;
                for it in &spec.interactions {
                    match *it {
                        Interaction::Filter { lo, hi } => {
                            assert!(lo < hi);
                            bounds = Some((lo, hi));
                        }
                        Interaction::Refine { lo, hi } => {
                            let (plo, phi) = bounds.expect("refine only after a filter");
                            assert!(lo >= plo && hi <= phi && lo < hi, "refine nests");
                            bounds = Some((lo, hi));
                        }
                        Interaction::Pan { dx, dy, resize } => {
                            assert!((-2..=2).contains(&dx) && (-2..=2).contains(&dy));
                            assert!((-1..=1).contains(&resize));
                        }
                        Interaction::Lookup { qty } => assert!((1..=9).contains(&qty)),
                        Interaction::Drill { .. } => {}
                    }
                }
            }
        }
    }

    #[test]
    fn long_trajectories_cover_every_class() {
        let spec = SessionSpec::generate(1, 0, 200);
        for kind in ["filter", "refine", "pan", "drill", "lookup"] {
            assert!(
                spec.interactions.iter().any(|i| i.kind() == kind),
                "200-step trajectory never reached class {kind}"
            );
        }
    }
}
