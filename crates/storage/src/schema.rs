//! Table schemas: ordered, named, typed columns.

use crate::error::{Result, StorageError};
use crate::value::DataType;

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    name: String,
    data_type: DataType,
}

impl Field {
    /// Create a field with the given name and type.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }

    /// The column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The column's physical type.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }
}

/// An ordered collection of uniquely-named fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(StorageError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema { fields })
    }

    /// Shorthand used pervasively in tests and examples:
    /// `Schema::of(&[("a", DataType::Int64), ...])`.
    pub fn of(defs: &[(&str, DataType)]) -> Self {
        Schema::new(
            defs.iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
        )
        .expect("Schema::of called with duplicate column names")
    }

    /// All fields, in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Resolve a column name to its ordinal position.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| StorageError::UnknownColumn(name.to_owned()))
    }

    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Look up a field's data type by name.
    pub fn data_type(&self, name: &str) -> Result<DataType> {
        self.field(name).map(|f| f.data_type())
    }

    /// Column names in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Project a subset of columns into a new schema, preserving the
    /// requested order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let fields = names
            .iter()
            .map(|n| self.field(n).cloned())
            .collect::<Result<Vec<_>>>()?;
        Schema::new(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::of(&[
            ("id", DataType::Int64),
            ("price", DataType::Float64),
            ("region", DataType::Utf8),
        ])
    }

    #[test]
    fn index_and_field_lookup() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("price").unwrap(), 1);
        assert_eq!(s.data_type("region").unwrap(), DataType::Utf8);
        assert!(matches!(
            s.index_of("missing"),
            Err(StorageError::UnknownColumn(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("a", DataType::Float64),
        ]);
        assert!(matches!(r, Err(StorageError::DuplicateColumn(_))));
    }

    #[test]
    fn projection_preserves_requested_order() {
        let s = sample();
        let p = s.project(&["region", "id"]).unwrap();
        assert_eq!(p.names(), vec!["region", "id"]);
        assert!(p.project(&["nope"]).is_err());
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new(vec![]).unwrap();
        assert!(s.is_empty());
        assert!(s.names().is_empty());
    }
}
