//! Sharded tables: per-shard cracking, caching, and epochs with
//! deterministic fan-out/merge.
//!
//! A [`ShardedTable`] partitions a registered table into contiguous
//! row-range shards, each owning its own cracker column state, result-
//! cache epoch scope, and stats. Queries fan out per shard on the
//! shared executor pool and merge under the engine's bit-identity
//! contract — serial ≡ parallel ≡ sharded, for any shard count (see
//! [`run_sharded_query`] for how aggregate merges earn this).
//! Mutations route to
//! the owning shard and bump only that shard's cache epoch, so a write
//! to one region of a table no longer evicts cached results over the
//! others — epoch locality is the subsystem's payoff.
//!
//! The engine enables all of this behind [`ShardPolicy`]; the default
//! `Off` is the unchanged single-table path.

mod fanout;
mod policy;
mod table;

pub use fanout::run_sharded_query;
pub use policy::{ShardConfig, ShardPolicy};
pub use table::{scoped_name, Shard, ShardSnapshot, ShardStats, ShardedTable};
