//! The `ExploreDb` facade: one engine wiring every layer of the
//! tutorial's stack together.
//!
//! A downstream user registers tables (in memory or as raw CSV), and the
//! engine provides, per table:
//!
//! * exact queries (through the storage executor, or through the NoDB
//!   loader for raw tables);
//! * adaptive range indexes that crack themselves along the workload;
//! * a sample catalog with error/time-bounded approximate aggregation;
//! * online aggregation with live confidence intervals;
//! * SeeDB view recommendation, faceted recommendations and
//!   explore-by-example sessions.

use std::collections::HashMap;

use explore_aqp::{
    Bound, BoundedAnswer, BoundedExecutor, OnlineAggregation, SynopsisAnswer, SynopsisStore,
};
use explore_cracking::CrackerColumn;
use explore_exec::ExecPolicy;
use explore_loading::{AdaptiveLoader, RawCsv};
use explore_sampling::SampleCatalog;
use explore_storage::{AggFunc, Catalog, Predicate, Query, Result, StorageError, Table};
use explore_viz::seedb::{candidate_views, recommend_shared, ScoredView, SeedbStats};

/// The unified exploration engine.
#[derive(Debug, Default)]
pub struct ExploreDb {
    catalog: Catalog,
    /// Raw (not-yet-loaded) tables served by the adaptive loader.
    raw: HashMap<String, AdaptiveLoader>,
    /// Adaptive range indexes, keyed by (table, column).
    crackers: HashMap<(String, String), CrackerColumn>,
    /// Sample catalogs for approximate execution.
    samples: HashMap<String, SampleCatalog>,
    /// AQUA-style synopsis stores for zero-touch estimation.
    synopses: HashMap<String, SynopsisStore>,
    /// How exact scans and aggregates execute; defaults to
    /// morsel-parallel over all available cores. Both settings produce
    /// bit-identical results (see `explore_exec`).
    exec_policy: ExecPolicy,
}

impl ExploreDb {
    /// A fresh engine.
    pub fn new() -> Self {
        ExploreDb::default()
    }

    /// A fresh engine with an explicit execution policy.
    pub fn with_exec_policy(policy: ExecPolicy) -> Self {
        ExploreDb {
            exec_policy: policy,
            ..ExploreDb::default()
        }
    }

    /// Change the execution policy for subsequent queries.
    pub fn set_exec_policy(&mut self, policy: ExecPolicy) {
        self.exec_policy = policy;
    }

    /// The current execution policy.
    pub fn exec_policy(&self) -> ExecPolicy {
        self.exec_policy
    }

    /// Register an in-memory table.
    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        self.catalog.register(name, table);
    }

    /// Attach a raw CSV file; queries against it run through the NoDB
    /// adaptive loader until the workload has loaded it.
    pub fn attach_raw(&mut self, name: impl Into<String>, raw: RawCsv) {
        self.raw.insert(name.into(), AdaptiveLoader::new(raw));
    }

    /// Registered table names (in-memory, then raw).
    pub fn tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self.catalog.names().iter().map(|s| s.to_string()).collect();
        names.extend(self.raw.keys().cloned());
        names.sort();
        names
    }

    /// Borrow an in-memory table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.catalog.get(name)
    }

    /// Run an exact query, routing to the right storage path.
    pub fn query(&mut self, table: &str, query: &Query) -> Result<Table> {
        if let Some(loader) = self.raw.get_mut(table) {
            return loader.query(query);
        }
        explore_exec::run_query(self.catalog.get(table)?, query, self.exec_policy)
    }

    /// Progress of invisible loading for a raw table (columns loaded,
    /// total columns), or `None` for in-memory tables.
    pub fn loading_progress(&self, table: &str) -> Option<(usize, usize)> {
        self.raw
            .get(table)
            .map(|l| (l.columns_loaded(), l.schema().len()))
    }

    /// Range query through the adaptive index: first call cracks (cost ≈
    /// scan), later calls converge to index speed. The column must be
    /// Int64.
    pub fn cracked_range(
        &mut self,
        table: &str,
        column: &str,
        low: i64,
        high: i64,
    ) -> Result<Vec<u32>> {
        let key = (table.to_owned(), column.to_owned());
        if !self.crackers.contains_key(&key) {
            let t = self.catalog.get(table)?;
            let col = t.column(column)?;
            let values = col
                .as_i64()
                .ok_or_else(|| StorageError::TypeMismatch {
                    column: column.to_owned(),
                    expected: "Int64",
                    found: col.data_type().name(),
                })?
                .to_vec();
            self.crackers
                .insert(key.clone(), CrackerColumn::new(values));
        }
        let cracker = self.crackers.get_mut(&key).expect("just inserted");
        Ok(cracker.query_ids(low, high).to_vec())
    }

    /// Pieces the adaptive index on (table, column) currently has —
    /// observability for convergence.
    pub fn index_pieces(&self, table: &str, column: &str) -> Option<usize> {
        self.crackers
            .get(&(table.to_owned(), column.to_owned()))
            .map(CrackerColumn::num_pieces)
    }

    /// Build (or rebuild) the sample catalog enabling approximate
    /// queries on a table.
    pub fn build_samples(
        &mut self,
        table: &str,
        fractions: &[f64],
        stratify_on: &[(&str, usize)],
        seed: u64,
    ) -> Result<()> {
        let t = self.catalog.get(table)?;
        let catalog = SampleCatalog::build(t, fractions, stratify_on, seed)?;
        self.samples.insert(table.to_owned(), catalog);
        Ok(())
    }

    /// BlinkDB-style bounded approximate aggregate. Requires
    /// [`build_samples`](Self::build_samples) first.
    pub fn approx_aggregate(
        &self,
        table: &str,
        predicate: &Predicate,
        func: AggFunc,
        column: &str,
        bound: Bound,
    ) -> Result<BoundedAnswer> {
        let t = self.catalog.get(table)?;
        let samples = self.samples.get(table).ok_or_else(|| {
            StorageError::InvalidQuery(format!(
                "no sample catalog for {table}; call build_samples first"
            ))
        })?;
        BoundedExecutor::new(t, samples)
            .with_policy(self.exec_policy)
            .aggregate(predicate, func, column, bound)
    }

    /// Start an online aggregation whose confidence interval the caller
    /// can watch shrink.
    pub fn online_aggregate(
        &self,
        table: &str,
        predicate: &Predicate,
        func: AggFunc,
        column: &str,
        confidence: f64,
        seed: u64,
    ) -> Result<OnlineAggregation> {
        OnlineAggregation::start(
            self.catalog.get(table)?,
            predicate,
            func,
            column,
            confidence,
            seed,
        )
    }

    /// SeeDB: recommend the `k` most deviating views of `target` rows
    /// vs the rest of the table, using the shared-scan strategy.
    pub fn recommend_views(
        &self,
        table: &str,
        target: &Predicate,
        k: usize,
    ) -> Result<Vec<ScoredView>> {
        let t = self.catalog.get(table)?;
        let views = candidate_views(t, &[AggFunc::Count, AggFunc::Sum, AggFunc::Avg]);
        let mut stats = SeedbStats::default();
        recommend_shared(t, target, &views, k, &mut stats)
    }

    /// Build (or rebuild) the AQUA-style synopsis store for a table.
    pub fn build_synopses(&mut self, table: &str, buckets: usize) -> Result<()> {
        let t = self.catalog.get(table)?;
        self.synopses
            .insert(table.to_owned(), SynopsisStore::build(t, buckets));
        Ok(())
    }

    /// Estimate `COUNT(*) WHERE low <= column < high` from synopses
    /// alone (no base-data access). Requires `build_synopses` first.
    pub fn estimate_range_count(
        &self,
        table: &str,
        column: &str,
        low: f64,
        high: f64,
    ) -> Result<SynopsisAnswer> {
        self.synopsis_store(table)?.range_count(column, low, high)
    }

    /// Estimate `COUNT(*) WHERE column = value` for a string column.
    pub fn estimate_point_count(
        &self,
        table: &str,
        column: &str,
        value: &str,
    ) -> Result<SynopsisAnswer> {
        self.synopsis_store(table)?.point_count(column, value)
    }

    /// Estimate `COUNT(DISTINCT column)` for a string column.
    pub fn estimate_distinct(&self, table: &str, column: &str) -> Result<SynopsisAnswer> {
        self.synopsis_store(table)?.distinct_count(column)
    }

    fn synopsis_store(&self, table: &str) -> Result<&SynopsisStore> {
        self.synopses.get(table).ok_or_else(|| {
            StorageError::InvalidQuery(format!(
                "no synopses for {table}; call build_synopses first"
            ))
        })
    }

    /// YmalDB-style facets: attribute values over-represented in the
    /// rows matching `predicate`, ranked by lift.
    pub fn facets(
        &self,
        table: &str,
        predicate: &Predicate,
        min_support: usize,
        k: usize,
    ) -> Result<Vec<explore_explore::Facet>> {
        let t = self.catalog.get(table)?;
        let rows = explore_exec::evaluate_selection(t, predicate, self.exec_policy)?;
        explore_explore::faceted_recommendations(t, &rows, min_support, k)
    }

    /// Diversified top-k rows: relevance from a numeric column, pairwise
    /// distance over numeric feature columns, MMR with trade-off λ.
    /// Returns base-table row ids.
    pub fn diversified_topk(
        &self,
        table: &str,
        predicate: &Predicate,
        relevance_col: &str,
        feature_cols: &[&str],
        k: usize,
        lambda: f64,
    ) -> Result<Vec<u32>> {
        let t = self.catalog.get(table)?;
        let rows = explore_exec::evaluate_selection(t, predicate, self.exec_policy)?;
        let rel = t.column(relevance_col)?;
        let feats: Vec<&explore_storage::Column> = feature_cols
            .iter()
            .map(|c| t.column(c))
            .collect::<Result<_>>()?;
        let mut items = Vec::with_capacity(rows.len());
        for &row in &rows {
            let r = row as usize;
            let relevance = rel
                .numeric_at(r)
                .ok_or_else(|| StorageError::TypeMismatch {
                    column: relevance_col.to_owned(),
                    expected: "numeric",
                    found: rel.data_type().name(),
                })?;
            let features = feats
                .iter()
                .enumerate()
                .map(|(fi, c)| {
                    c.numeric_at(r).ok_or_else(|| StorageError::TypeMismatch {
                        column: feature_cols[fi].to_owned(),
                        expected: "numeric",
                        found: c.data_type().name(),
                    })
                })
                .collect::<Result<Vec<f64>>>()?;
            items.push(explore_diversify::Item::new(row, relevance, features));
        }
        let mut stats = explore_diversify::DivStats::default();
        Ok(explore_diversify::mmr(&items, k, lambda, &[], &mut stats))
    }

    /// VizDeck: deal the top-`k` chart proposals for a table.
    pub fn propose_charts(&self, table: &str, k: usize) -> Result<Vec<explore_viz::ChartProposal>> {
        explore_viz::propose_charts(self.catalog.get(table)?, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore_storage::csv::write_csv;
    use explore_storage::gen::{sales_table, SalesConfig};

    fn engine_with_sales(rows: usize) -> ExploreDb {
        let mut db = ExploreDb::new();
        db.register(
            "sales",
            sales_table(&SalesConfig {
                rows,
                ..SalesConfig::default()
            }),
        );
        db
    }

    #[test]
    fn exact_queries_route_to_memory_and_raw() {
        let t = sales_table(&SalesConfig {
            rows: 300,
            ..SalesConfig::default()
        });
        let mut db = ExploreDb::new();
        db.register("mem", t.clone());
        db.attach_raw(
            "raw",
            RawCsv::new(write_csv(&t), t.schema().clone()).unwrap(),
        );
        let q = Query::new()
            .filter(Predicate::eq("region", "region0"))
            .agg(AggFunc::Count, "qty");
        let a = db.query("mem", &q).unwrap();
        let b = db.query("raw", &q).unwrap();
        assert_eq!(a, b);
        assert_eq!(db.tables(), vec!["mem", "raw"]);
        assert_eq!(db.loading_progress("mem"), None);
        let (loaded, total) = db.loading_progress("raw").unwrap();
        assert_eq!(total, 6);
        assert!(loaded >= 2, "region + qty touched");
    }

    #[test]
    fn cracked_range_matches_scan_and_converges() {
        let mut db = engine_with_sales(5000);
        let ids = db.cracked_range("sales", "qty", 3, 7).unwrap();
        let scan = Predicate::range("qty", 3i64, 7i64)
            .evaluate(db.table("sales").unwrap())
            .unwrap();
        let mut got = ids.clone();
        got.sort_unstable();
        assert_eq!(got, scan);
        let p1 = db.index_pieces("sales", "qty").unwrap();
        db.cracked_range("sales", "qty", 2, 5).unwrap();
        assert!(db.index_pieces("sales", "qty").unwrap() >= p1);
        assert!(db.index_pieces("sales", "price").is_none());
    }

    #[test]
    fn cracking_non_int_column_errors() {
        let mut db = engine_with_sales(100);
        assert!(db.cracked_range("sales", "price", 0, 1).is_err());
        assert!(db.cracked_range("nope", "qty", 0, 1).is_err());
    }

    #[test]
    fn approximate_aggregation_via_catalog() {
        let mut db = engine_with_sales(50_000);
        assert!(
            db.approx_aggregate(
                "sales",
                &Predicate::True,
                AggFunc::Avg,
                "price",
                Bound::RowBudget { rows: 1000 },
            )
            .is_err(),
            "needs samples first"
        );
        db.build_samples("sales", &[0.01, 0.1], &[("region", 100)], 7)
            .unwrap();
        let ans = db
            .approx_aggregate(
                "sales",
                &Predicate::True,
                AggFunc::Avg,
                "price",
                Bound::RelativeError {
                    target: 0.05,
                    confidence: 0.95,
                },
            )
            .unwrap();
        let truth = {
            let p = db
                .table("sales")
                .unwrap()
                .column("price")
                .unwrap()
                .as_f64()
                .unwrap();
            p.iter().sum::<f64>() / p.len() as f64
        };
        assert!((ans.interval.estimate - truth).abs() / truth < 0.1);
    }

    #[test]
    fn online_aggregation_runs() {
        let db = engine_with_sales(20_000);
        let mut oa = db
            .online_aggregate("sales", &Predicate::True, AggFunc::Avg, "price", 0.95, 3)
            .unwrap();
        let trace = oa.run_until(0.02, 500);
        assert!(!trace.is_empty());
        assert!(trace.last().unwrap().processed < 20_000);
    }

    #[test]
    fn facets_surface_the_selected_value() {
        let db = engine_with_sales(10_000);
        let facets = db
            .facets("sales", &Predicate::eq("channel", "channel1"), 10, 5)
            .unwrap();
        let top = facets.iter().find(|f| f.column == "channel").unwrap();
        assert_eq!(top.value, "channel1");
        assert!(top.lift > 1.0);
        assert!(db.facets("nope", &Predicate::True, 1, 5).is_err());
    }

    #[test]
    fn diversified_topk_returns_distinct_rows() {
        let db = engine_with_sales(5_000);
        let ids = db
            .diversified_topk(
                "sales",
                &Predicate::True,
                "price",
                &["price", "discount", "qty"],
                10,
                0.4,
            )
            .unwrap();
        assert_eq!(ids.len(), 10);
        let set: std::collections::HashSet<u32> = ids.iter().copied().collect();
        assert_eq!(set.len(), 10);
        // λ=1 must return the plain top-k by relevance.
        let plain = db
            .diversified_topk("sales", &Predicate::True, "price", &["qty"], 5, 1.0)
            .unwrap();
        let t = db.table("sales").unwrap();
        let prices = t.column("price").unwrap().as_f64().unwrap();
        let mut by_price: Vec<u32> = (0..t.num_rows() as u32).collect();
        by_price.sort_by(|&a, &b| prices[b as usize].total_cmp(&prices[a as usize]));
        let mut a = plain.clone();
        a.sort_unstable();
        let mut b = by_price[..5].to_vec();
        b.sort_unstable();
        assert_eq!(a, b);
        // String feature columns error.
        assert!(db
            .diversified_topk("sales", &Predicate::True, "region", &["qty"], 5, 0.5)
            .is_err());
    }

    #[test]
    fn chart_proposals_rank() {
        let db = engine_with_sales(2_000);
        let deck = db.propose_charts("sales", 5).unwrap();
        assert_eq!(deck.len(), 5);
        assert!(deck.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn view_recommendation_returns_ranked_views() {
        let db = engine_with_sales(10_000);
        let views = db
            .recommend_views("sales", &Predicate::eq("product", "product0"), 5)
            .unwrap();
        assert_eq!(views.len(), 5);
        assert!(views.windows(2).all(|w| w[0].utility >= w[1].utility));
    }
}
