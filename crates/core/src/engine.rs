//! The `ExploreDb` facade: one engine wiring every layer of the
//! tutorial's stack together.
//!
//! A downstream user registers tables (in memory or as raw CSV), and the
//! engine provides, per table:
//!
//! * exact queries (through the storage executor, or through the NoDB
//!   loader for raw tables);
//! * adaptive range indexes that crack themselves along the workload;
//! * a sample catalog with error/time-bounded approximate aggregation;
//! * online aggregation with live confidence intervals;
//! * SeeDB view recommendation, faceted recommendations and
//!   explore-by-example sessions.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use explore_aqp::{
    Bound, BoundedAnswer, BoundedExecutor, OnlineAggregation, SynopsisAnswer, SynopsisStore,
};
use explore_cache::{CachePolicy, CacheStats, ResultCache};
use explore_cracking::CrackerColumn;
use explore_cube::{CubeSession, DataCube, DiscoveryView};
use explore_exec::{ExecPolicy, QueryCtx};
use explore_fault::{CancelToken, FailPoints, Observer, QueryDeadline};
use explore_loading::{AdaptiveLoader, ErrorPolicy, RawCsv};
use explore_obs::{
    render_trace, ActiveTrace, MetricsSnapshot, ObsPolicy, QueryTrace, SpanKind, Tracer, ROOT_SPAN,
};
use explore_prefetch::SpeculativeExecutor;
use explore_sampling::SampleCatalog;
use explore_shard::{run_sharded_query, scoped_name, ShardPolicy, ShardStats, ShardedTable};
use explore_storage::{
    AggFunc, Catalog, DataType, Predicate, Query, Result, StorageError, Table, Value,
};
use explore_viz::seedb::{candidate_views, recommend_shared, ScoredView, SeedbStats};

use crate::session::SessionCtx;

/// The unified exploration engine.
#[derive(Debug)]
pub struct ExploreDb {
    catalog: Catalog,
    /// Raw (not-yet-loaded) tables served by the adaptive loader.
    raw: HashMap<String, AdaptiveLoader>,
    /// Adaptive range indexes, keyed by (table, column).
    crackers: HashMap<(String, String), CrackerColumn>,
    /// Sample catalogs for approximate execution.
    samples: HashMap<String, SampleCatalog>,
    /// AQUA-style synopsis stores for zero-touch estimation.
    synopses: HashMap<String, SynopsisStore>,
    /// How exact scans and aggregates execute; defaults to
    /// morsel-parallel over all available cores. Both settings produce
    /// bit-identical results (see `explore_exec`).
    exec_policy: ExecPolicy,
    /// The shared semantic result cache. Always allocated — it carries
    /// the per-table epoch counters even while the policy is `Off`, so
    /// flipping caching on later never resurrects pre-mutation entries.
    result_cache: Arc<ResultCache>,
    /// Whether [`ExploreDb::query`] routes through the cache. `Off` (the
    /// default) is bit-identical to a cache-less engine.
    cache_policy: CachePolicy,
    /// Whether registered tables are mirrored into row-range shards with
    /// per-shard cracking, caching, and epochs. `Off` (the default) is
    /// the unchanged single-table engine.
    shard_policy: ShardPolicy,
    /// The sharded mirrors, present only while `shard_policy` is on.
    /// The canonical table stays in `catalog` — every non-query
    /// subsystem keeps reading it — and mutations dual-write: canonical
    /// first (it validates), then the owning shard.
    sharded: HashMap<String, ShardedTable>,
    /// The engine's tracer + metrics owner. Always allocated; recording
    /// is gated by `obs_policy` and costs one relaxed load while off.
    obs: Arc<Tracer>,
    /// Whether queries record traces and metrics. `Off` (the default)
    /// leaves every execution path byte-identical to an uninstrumented
    /// engine.
    obs_policy: ObsPolicy,
    /// Engine-wide deterministic fail-point registry. Disarmed (the
    /// default and only production state) every injection site costs one
    /// relaxed atomic load; tests arm named points to force the engine
    /// down its degradation paths. Shared with the result cache, every
    /// raw-table loader, and each exec call.
    faults: Arc<FailPoints>,
    /// Deadline applied to every [`ExploreDb::query`]; `None` (default)
    /// means queries run to completion.
    deadline: Option<QueryDeadline>,
    /// Session-wide external cancel token. When set, every engine entry
    /// point checks it at morsel/step boundaries; an explicit token wins
    /// over the deadline when both are set (the deadline still applies).
    cancel: Option<CancelToken>,
    /// How raw-table loaders treat malformed CSV rows; applied to
    /// current and future attachments.
    load_error_policy: ErrorPolicy,
    /// The active per-session policy overlay, installed for the duration
    /// of one [`ExploreDb::with_session`] call. Sparse: every `Some`
    /// field overrides the matching engine knob above at `query_ctx()`
    /// merge time; `None` fields inherit. Absent (the default) the
    /// engine behaves exactly as before sessions existed.
    session: Option<SessionCtx>,
}

impl Default for ExploreDb {
    fn default() -> Self {
        let faults = Arc::new(FailPoints::default());
        let result_cache = Arc::<ResultCache>::default();
        result_cache.set_faults(Some(Arc::clone(&faults)));
        ExploreDb {
            catalog: Catalog::default(),
            raw: HashMap::new(),
            crackers: HashMap::new(),
            samples: HashMap::new(),
            synopses: HashMap::new(),
            exec_policy: ExecPolicy::default(),
            result_cache,
            cache_policy: CachePolicy::default(),
            shard_policy: ShardPolicy::default(),
            sharded: HashMap::new(),
            obs: Arc::default(),
            obs_policy: ObsPolicy::default(),
            faults,
            deadline: None,
            cancel: None,
            load_error_policy: ErrorPolicy::default(),
            session: None,
        }
    }
}

impl ExploreDb {
    /// A fresh engine.
    pub fn new() -> Self {
        ExploreDb::default()
    }

    /// A fresh engine with an explicit execution policy.
    pub fn with_exec_policy(policy: ExecPolicy) -> Self {
        ExploreDb {
            exec_policy: policy,
            ..ExploreDb::default()
        }
    }

    /// Change the execution policy for subsequent queries.
    pub fn set_exec_policy(&mut self, policy: ExecPolicy) {
        self.exec_policy = policy;
    }

    /// The current execution policy.
    pub fn exec_policy(&self) -> ExecPolicy {
        self.exec_policy
    }

    /// A fresh engine with result caching enabled.
    pub fn with_cache_policy(policy: CachePolicy) -> Self {
        let mut db = ExploreDb::default();
        db.set_cache_policy(policy);
        db
    }

    /// Turn result caching on or off (and retune it). Turning it off
    /// stops serving and admitting, but keeps epochs and entries — a
    /// later `On` resumes with a warm cache, minus whatever mutations
    /// invalidated meanwhile.
    pub fn set_cache_policy(&mut self, policy: CachePolicy) {
        if let Some(config) = policy.config() {
            self.result_cache.set_config(config.clone());
        }
        self.cache_policy = policy;
    }

    /// The current cache policy.
    pub fn cache_policy(&self) -> &CachePolicy {
        &self.cache_policy
    }

    /// A fresh engine with table sharding enabled.
    pub fn with_shard_policy(policy: ShardPolicy) -> Self {
        let mut db = ExploreDb::default();
        db.set_shard_policy(policy);
        db
    }

    /// Turn table sharding on or off (and retune it). `On` mirrors every
    /// registered in-memory table into contiguous row-range shards, each
    /// with its own cracker state and cache-epoch scope; queries fan out
    /// per shard and merge bit-identically to the unsharded engine (see
    /// `explore_shard`). `Off` drops the mirrors — the canonical tables
    /// in the catalog were authoritative all along.
    pub fn set_shard_policy(&mut self, policy: ShardPolicy) {
        self.shard_policy = policy;
        self.sharded.clear();
        if self.shard_policy.is_on() {
            let names: Vec<String> = self.catalog.names().iter().map(|s| s.to_string()).collect();
            for name in names {
                self.rebuild_shards(&name);
            }
        }
    }

    /// The current shard policy.
    pub fn shard_policy(&self) -> &ShardPolicy {
        &self.shard_policy
    }

    /// Per-shard layout, epoch, and index statistics for a table, or
    /// `None` when the table has no sharded mirror (policy off, raw
    /// table, or unknown name).
    pub fn shard_stats(&self, table: &str) -> Option<Vec<ShardStats>> {
        self.sharded
            .get(table)
            .map(|st| st.stats(|i| self.result_cache.epoch(&scoped_name(table, i))))
    }

    /// (Re)build `table`'s sharded mirror from the canonical catalog
    /// copy. Bumps the new mirror's shard-scope epochs: the mirror's
    /// contents changed, so cache entries under its scoped names — from
    /// any earlier sharding era, including one the policy was toggled
    /// across — must not survive into it.
    fn rebuild_shards(&mut self, table: &str) {
        self.sharded.remove(table);
        if let (ShardPolicy::On(config), Ok(t)) = (&self.shard_policy, self.catalog.get(table)) {
            let mirror = ShardedTable::build(table, t, config);
            for s in 0..mirror.shard_count() {
                self.result_cache.bump_epoch(&scoped_name(table, s));
            }
            self.sharded.insert(table.to_owned(), mirror);
        }
    }

    /// A fresh engine with observability enabled.
    pub fn with_obs_policy(policy: ObsPolicy) -> Self {
        let mut db = ExploreDb::default();
        db.set_obs_policy(policy);
        db
    }

    /// Turn query tracing and metrics on or off. `On` makes every
    /// [`ExploreDb::query`] record a span tree into the recent-trace
    /// ring and mirror engine counters into the metrics registry; `Off`
    /// (the default) stops recording but keeps what was collected.
    /// Either way results are bit-identical — observability never
    /// changes what executes.
    pub fn set_obs_policy(&mut self, policy: ObsPolicy) {
        self.obs.set_policy(&policy);
        self.result_cache
            .set_metrics(policy.is_on().then(|| self.obs.metrics()));
        // Mirror fault trips and degradation/cancellation events into
        // the metrics registry as `fault.*` / `cancel.*` counters.
        self.faults.set_observer(policy.is_on().then(|| {
            let metrics = self.obs.metrics();
            Arc::new(move |name: &str| metrics.inc(name, 1)) as Observer
        }));
        self.obs_policy = policy;
    }

    /// The current observability policy.
    pub fn obs_policy(&self) -> &ObsPolicy {
        &self.obs_policy
    }

    /// Handle to the engine's tracer, for wiring into external
    /// consumers or dumping traces out-of-band.
    pub fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.obs)
    }

    /// Point-in-time snapshot of every engine counter and latency
    /// histogram collected while observability was on.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs.metrics().snapshot()
    }

    /// The most recent finished query traces, oldest first (bounded by
    /// the policy's ring capacity).
    pub fn recent_traces(&self) -> Vec<QueryTrace> {
        self.obs.recent_traces()
    }

    /// Profile one query regardless of the observability policy and
    /// render its span tree as a human-readable report. The query
    /// executes for real (through the same cache/exec routing as
    /// [`ExploreDb::query`]), so the profile reflects live state —
    /// explaining a cached query shows the hit, not the original scan.
    pub fn explain(&mut self, table: &str, query: &Query) -> Result<String> {
        let trace = self.obs.force_start(table, query.describe());
        let ctx = self.query_ctx().with_trace(Some(&trace));
        let result = self.run_routed(table, query, &ctx);
        let finished = trace.finish();
        self.note_cancel(&result);
        result.map(|_| render_trace(&finished))
    }

    /// Handle to the engine's fail-point registry. Tests arm named
    /// points (`exec.spawn`, `exec.morsel`, `cache.admit`,
    /// `cache.lookup`, `cache.evict`, `load.parse`, `load.map`,
    /// `crack.reorg`, `shard.dispatch`, `shard.merge`, and the serving
    /// layer's `serve.admit` / `serve.yield`) to drive the engine down
    /// its degradation paths; the registry also counts `fault.*` /
    /// `cancel.*` events.
    pub fn fail_points(&self) -> Arc<FailPoints> {
        Arc::clone(&self.faults)
    }

    /// Set (or clear) a per-query deadline. Each subsequent
    /// [`ExploreDb::query`] mints a fresh token whose clock starts at
    /// query start; a query that overruns returns
    /// `StorageError::DeadlineExceeded` at its next morsel boundary,
    /// with all engine state (cache, indexes, loaders) still valid.
    pub fn set_query_deadline(&mut self, limit: Option<Duration>) {
        self.deadline = limit.map(QueryDeadline);
    }

    /// The current per-query deadline, if any.
    pub fn query_deadline(&self) -> Option<Duration> {
        self.deadline.map(|d| d.0)
    }

    /// Set (or clear) a session-wide external cancel token. The caller
    /// (another thread, a UI) may trigger it at any time; every engine
    /// entry point then returns `StorageError::Cancelled` at its next
    /// morsel/step boundary. Partial state — cracker indexes, cache
    /// entries, pool workers — stays valid, and a follow-up call returns
    /// results bit-identical to a never-cancelled engine.
    pub fn set_cancel_token(&mut self, cancel: Option<CancelToken>) {
        self.cancel = cancel;
    }

    /// The current session cancel token, if any.
    pub fn cancel_token(&self) -> Option<CancelToken> {
        self.cancel.clone()
    }

    /// How raw-table loaders treat malformed CSV rows: `Abort` (the
    /// default) surfaces the first parse error, `SkipRow` tombstones the
    /// offending row and keeps serving. Applies to already-attached and
    /// future raw tables.
    pub fn set_load_error_policy(&mut self, policy: ErrorPolicy) {
        self.load_error_policy = policy;
        for loader in self.raw.values_mut() {
            loader.set_error_policy(policy);
        }
    }

    /// Rows skipped so far by a raw table's loader under
    /// [`ErrorPolicy::SkipRow`] (`None` for in-memory tables).
    pub fn rows_skipped(&self, table: &str) -> Option<u64> {
        self.raw.get(table).map(AdaptiveLoader::rows_skipped)
    }

    /// Snapshot of the shared cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.result_cache.stats()
    }

    /// Handle to the shared result cache, for wiring into middleware
    /// sessions ([`SpeculativeExecutor::with_shared_cache`],
    /// `PanSession::with_shared_cache`, `BoundedExecutor::with_cache`).
    pub fn cache(&self) -> Arc<ResultCache> {
        Arc::clone(&self.result_cache)
    }

    /// Current mutation epoch of a table (0 until first mutated).
    pub fn table_epoch(&self, table: &str) -> u64 {
        self.result_cache.epoch(table)
    }

    /// Record that `table`'s data changed through a channel the engine
    /// did not see: bumps the cache epoch (so no pre-mutation result is
    /// ever served again) — every shard-scope epoch included — drops the
    /// table's adaptive indexes, which mirror the old data, and rebuilds
    /// the sharded mirror from the canonical copy. The mutation APIs
    /// below route mutations precisely instead (bumping only the owning
    /// shard's epoch); callers that mutate through other channels get
    /// this conservative whole-table invalidation.
    pub fn note_mutation(&mut self, table: &str) {
        self.invalidate_table(table);
        self.rebuild_shards(table);
    }

    /// Whole-table invalidation: base epoch, every current shard-scope
    /// epoch, and the table's adaptive indexes.
    fn invalidate_table(&mut self, table: &str) {
        self.result_cache.bump_epoch(table);
        if let Some(st) = self.sharded.get(table) {
            for s in 0..st.shard_count() {
                self.result_cache.bump_epoch(&scoped_name(table, s));
            }
        }
        self.crackers.retain(|(t, _), _| t != table);
    }

    /// Record a mutation the sharded mirror already absorbed in place:
    /// bump the base epoch (whole-table results die) and only the
    /// mutated shards' scope epochs — the other shards' cached results
    /// are still exact, and keeping them live is the payoff of sharding.
    fn note_shard_mutation(&mut self, table: &str, mutated: &[usize]) {
        self.result_cache.bump_epoch(table);
        for &s in mutated {
            self.result_cache.bump_epoch(&scoped_name(table, s));
        }
        self.crackers.retain(|(t, _), _| t != table);
    }

    /// Register an in-memory table. Re-registering an existing name is
    /// a mutation: the old name's cache entries are invalidated.
    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        let name = name.into();
        if self.catalog.get(&name).is_ok() {
            self.invalidate_table(&name);
        }
        self.catalog.register(name.clone(), table);
        self.rebuild_shards(&name);
    }

    /// Append one row of dynamic values to an in-memory table.
    pub fn push_row(&mut self, table: &str, values: Vec<Value>) -> Result<()> {
        self.catalog.get_mut(table)?.push_row(values.clone())?;
        match self.sharded.get_mut(table) {
            // The canonical write above validated; the mirror's schema is
            // identical, so this routes to the owning (last) shard.
            Some(st) => {
                let shard = st.push_row(values)?;
                self.note_shard_mutation(table, &[shard]);
            }
            None => self.note_mutation(table),
        }
        Ok(())
    }

    /// Append all rows of `rows` (identical schema) to an in-memory
    /// table.
    pub fn append_rows(&mut self, table: &str, rows: &Table) -> Result<()> {
        self.catalog.get_mut(table)?.append(rows)?;
        match self.sharded.get_mut(table) {
            Some(st) => {
                let shard = st.append_rows(rows)?;
                self.note_shard_mutation(table, &[shard]);
            }
            None => self.note_mutation(table),
        }
        Ok(())
    }

    /// Set `column = value` on every row matching `predicate`; returns
    /// how many rows changed. Type incompatibilities are rejected before
    /// any write, so a failed update never leaves the table half-mutated.
    pub fn update_where(
        &mut self,
        table: &str,
        predicate: &Predicate,
        column: &str,
        value: Value,
    ) -> Result<usize> {
        let t = self.catalog.get_mut(table)?;
        let sel = predicate.evaluate(t)?;
        let expected = t.column(column)?.data_type();
        let compatible = matches!(
            (expected, &value),
            (DataType::Int64, Value::Int(_))
                | (DataType::Float64, Value::Float(_) | Value::Int(_))
                | (DataType::Utf8, Value::Str(_))
        );
        if !compatible {
            return Err(StorageError::TypeMismatch {
                column: column.to_owned(),
                expected: expected.name(),
                found: value.data_type().map_or("Null", DataType::name),
            });
        }
        for &row in &sel {
            t.set_cell(column, row as usize, value.clone())?;
        }
        if !sel.is_empty() {
            match self.sharded.get_mut(table) {
                Some(st) => {
                    let mutated = st.update_where(&sel, column, &value)?;
                    self.note_shard_mutation(table, &mutated);
                }
                None => self.note_mutation(table),
            }
        }
        Ok(sel.len())
    }

    /// Attach a raw CSV file; queries against it run through the NoDB
    /// adaptive loader until the workload has loaded it.
    pub fn attach_raw(&mut self, name: impl Into<String>, raw: RawCsv) {
        let mut loader = AdaptiveLoader::new(raw);
        loader.set_faults(Some(Arc::clone(&self.faults)));
        loader.set_error_policy(self.load_error_policy);
        self.raw.insert(name.into(), loader);
    }

    /// Registered table names (in-memory, then raw).
    pub fn tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self.catalog.names().iter().map(|s| s.to_string()).collect();
        names.extend(self.raw.keys().cloned());
        names.sort();
        names
    }

    /// Borrow an in-memory table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.catalog.get(name)
    }

    /// Run an exact query, routing to the right storage path. With
    /// caching on, in-memory tables are served through the semantic
    /// result cache (exact and subsumption reuse); raw tables always go
    /// through the adaptive loader, whose incremental load state is
    /// itself the cache.
    pub fn query(&mut self, table: &str, query: &Query) -> Result<Table> {
        let trace = self.start_trace(table, || query.describe());
        let ctx = self.query_ctx().with_trace(trace.as_ref());
        let result = self.run_routed(table, query, &ctx);
        if let Some(trace) = trace {
            trace.finish();
        }
        self.note_cancel(&result);
        result
    }

    /// A fresh per-session policy overlay: owns its cancel token,
    /// inherits every engine default. Customize with the `SessionCtx`
    /// builders, then scope engine calls to it via
    /// [`ExploreDb::with_session`].
    pub fn session(&self) -> SessionCtx {
        SessionCtx::new()
    }

    /// Run `f` with `session`'s overlay installed: every `query_ctx()`
    /// minted inside resolves the session's exec/cache/obs policies,
    /// deadline budget, cancel token, and yield hook *over* the engine
    /// defaults (DESIGN.md §10/§13). The previous overlay (normally
    /// none) is restored afterwards, so nesting and interleaving
    /// sessions over one engine is safe.
    pub fn with_session<R>(
        &mut self,
        session: &SessionCtx,
        f: impl FnOnce(&mut ExploreDb) -> R,
    ) -> R {
        let prev = self.session.replace(session.clone());
        let out = f(self);
        self.session = prev;
        out
    }

    /// The execution context for one engine call: the engine's exec
    /// policy and fail points, the session cancel token, and a deadline
    /// token freshly minted so its clock starts at this call. When a
    /// session overlay is installed ([`ExploreDb::with_session`]), its
    /// `Some` fields win over the engine knobs — exec policy, cancel
    /// token, deadline budget, and the cooperative yield hook.
    fn query_ctx(&self) -> QueryCtx<'static> {
        let s = self.session.as_ref();
        let exec = s.and_then(|s| s.exec).unwrap_or(self.exec_policy);
        let cancel = s
            .and_then(|s| s.cancel.clone())
            .or_else(|| self.cancel.clone());
        let deadline = s
            .and_then(|s| s.deadline)
            .map(QueryDeadline)
            .or(self.deadline);
        QueryCtx::new(exec)
            .with_faults(Some(Arc::clone(&self.faults)))
            .with_cancel(cancel)
            .with_deadline(deadline.as_ref().map(QueryDeadline::token))
            .with_yield_hook(s.and_then(|s| s.yield_hook.clone()))
    }

    /// One token for long-lived middleware sessions that outlive a
    /// single engine call: the session cancel token when set, else a
    /// token minted from the deadline. The session overlay's token and
    /// deadline take the same precedence they do in `query_ctx`.
    fn session_token(&self) -> Option<CancelToken> {
        let s = self.session.as_ref();
        s.and_then(|s| s.cancel.clone())
            .or_else(|| self.cancel.clone())
            .or_else(|| {
                s.and_then(|s| s.deadline)
                    .map(QueryDeadline)
                    .or(self.deadline)
                    .as_ref()
                    .map(QueryDeadline::token)
            })
    }

    /// Is the result cache in play for this call? The session overlay's
    /// cache policy wins over the engine knob.
    fn cache_on(&self) -> bool {
        self.session
            .as_ref()
            .and_then(|s| s.cache.as_ref())
            .map_or_else(|| self.cache_policy.is_on(), CachePolicy::is_on)
    }

    /// Is observability in play for this call? Gates metrics attachment
    /// on middleware executors; the session overlay wins.
    fn obs_on(&self) -> bool {
        self.session
            .as_ref()
            .and_then(|s| s.obs.as_ref())
            .map_or_else(|| self.obs_policy.is_on(), ObsPolicy::is_on)
    }

    /// Start (or skip) a trace for one engine call, honoring the session
    /// overlay: `Some(On)` forces a trace even while the engine policy
    /// is off, `Some(Off)` suppresses one, `None` defers to the engine's
    /// obs policy via the tracer's own gate.
    fn start_trace(&self, table: &str, desc: impl FnOnce() -> String) -> Option<ActiveTrace> {
        match self.session.as_ref().and_then(|s| s.obs.as_ref()) {
            Some(p) if p.is_on() => Some(self.obs.force_start(table, desc())),
            Some(_) => None,
            None => self.obs.start(table, desc),
        }
    }

    /// Count cancellation outcomes as `cancel.*` events (mirrored into
    /// obs metrics when observability is on).
    fn note_cancel<T>(&self, result: &Result<T>) {
        match result {
            Err(StorageError::Cancelled) => self.faults.note("cancel.cancelled"),
            Err(StorageError::DeadlineExceeded) => self.faults.note("cancel.deadline_exceeded"),
            _ => {}
        }
    }

    /// The routing core of [`ExploreDb::query`], shared with
    /// [`ExploreDb::explain`]: raw tables go through the adaptive
    /// loader (recorded as one raw-load span), in-memory tables through
    /// the cache or the plain executor.
    fn run_routed(&mut self, table: &str, query: &Query, ctx: &QueryCtx) -> Result<Table> {
        // An already-cancelled or expired token fails before routing —
        // even a warm cache hit must not mask the typed error.
        ctx.check_cancel()?;
        if let Some(loader) = self.raw.get_mut(table) {
            return match ctx.trace {
                Some(t) => t.scope(ROOT_SPAN, SpanKind::RawLoad, || loader.query(query, ctx)),
                None => loader.query(query, ctx),
            };
        }
        let base = self.catalog.get(table)?;
        if let Some(st) = self.sharded.get(table) {
            let cache = self.cache_on().then_some(&*self.result_cache);
            return run_sharded_query(st, cache, query, ctx);
        }
        if self.cache_on() {
            explore_cache::cached_query(&self.result_cache, base, table, query, ctx)
        } else {
            explore_exec::run_query(base, query, ctx)
        }
    }

    /// Progress of invisible loading for a raw table (columns loaded,
    /// total columns), or `None` for in-memory tables.
    pub fn loading_progress(&self, table: &str) -> Option<(usize, usize)> {
        self.raw
            .get(table)
            .map(|l| (l.columns_loaded(), l.schema().len()))
    }

    /// Range query through the adaptive index: first call cracks (cost ≈
    /// scan), later calls converge to index speed. The column must be
    /// Int64. Honors the session cancel token and deadline: the token is
    /// checked between crack (partition) steps, so a cancelled call may
    /// have cracked the low bound but not the high one — the index is
    /// well-formed either way, and the partial work is kept (it benefits
    /// later queries rather than being rolled back).
    pub fn cracked_range(
        &mut self,
        table: &str,
        column: &str,
        low: i64,
        high: i64,
    ) -> Result<Vec<u32>> {
        let ctx = self.query_ctx();
        ctx.check_cancel()?;
        let token = self.session_token();
        let key = if self.sharded.contains_key(table) {
            // Sharded tables crack per shard; validate the column here so
            // the error shape matches `ensure_cracker` exactly.
            let t = self.catalog.get(table)?;
            let col = t.column(column)?;
            col.as_i64().ok_or_else(|| StorageError::TypeMismatch {
                column: column.to_owned(),
                expected: "Int64",
                found: col.data_type().name(),
            })?;
            None
        } else {
            Some(self.ensure_cracker(table, column)?)
        };
        if self.faults.fire("crack.reorg") {
            // Injected reorganization failure: answer by scanning the
            // (never-reorganized) base column instead. Cracking writes
            // are discretionary, so skipping one changes convergence
            // rate, never answers.
            self.faults.note("fault.crack.scan_fallback");
            let t = self.catalog.get(table)?;
            let col = t.column(column)?;
            let values = col.as_i64().ok_or_else(|| StorageError::TypeMismatch {
                column: column.to_owned(),
                expected: "Int64",
                found: col.data_type().name(),
            })?;
            return Ok(values
                .iter()
                .enumerate()
                .filter(|(_, &v)| v >= low && v < high)
                .map(|(i, _)| i as u32)
                .collect());
        }
        let Some(key) = key else {
            return self.cracked_range_sharded(table, column, low, high, token);
        };
        let trace = self
            .obs
            .start(table, || format!("cracked_range({column}, {low}, {high})"));
        let cracker = self
            .crackers
            .get_mut(&key)
            .ok_or_else(|| StorageError::Internal("cracker lost after ensure".into()))?;
        let pieces_before = cracker.num_pieces();
        let start = trace.as_ref().map(|t| t.now_ns());
        let ids = cracker
            .query_bounds(low, high, token.as_ref())
            .map(|(s, e)| cracker.ids()[s..e].to_vec());
        let pieces_after = cracker.num_pieces();
        if let Some((t, start)) = trace.as_ref().zip(start) {
            t.record(
                ROOT_SPAN,
                SpanKind::Crack {
                    pieces_before: pieces_before as u32,
                    pieces_after: pieces_after as u32,
                },
                start,
                t.now_ns(),
            );
            if pieces_after != pieces_before {
                t.metrics().inc("crack.reorganizations", 1);
            }
        }
        // Cracking reorganizes the index copy, not the base table, so
        // cached results stay byte-correct — but the ISSUE's protocol
        // treats a reorganization as an epoch event, which keeps the
        // cache conservative if cracking ever becomes in-place. Even an
        // aborted (cancelled) call may have registered a boundary.
        if pieces_after != pieces_before {
            self.result_cache.bump_epoch(table);
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        self.note_cancel(&ids);
        ids
    }

    /// The sharded variant of [`ExploreDb::cracked_range`]: each shard
    /// cracks its own copy of the column independently, shards whose
    /// piece count grew bump their scope epochs (plus the base epoch),
    /// and matching global row ids come back concatenated in shard
    /// order — cracked (physical) order within each shard, like the
    /// unsharded path.
    fn cracked_range_sharded(
        &mut self,
        table: &str,
        column: &str,
        low: i64,
        high: i64,
        token: Option<CancelToken>,
    ) -> Result<Vec<u32>> {
        let trace = self
            .obs
            .start(table, || format!("cracked_range({column}, {low}, {high})"));
        let st = self
            .sharded
            .get_mut(table)
            .ok_or_else(|| StorageError::Internal("sharded mirror lost after route".into()))?;
        let pieces_before = st.index_pieces(column).unwrap_or(0);
        let start = trace.as_ref().map(|t| t.now_ns());
        let result = st.cracked_range(column, low, high, token.as_ref());
        let pieces_after = st.index_pieces(column).unwrap_or(0);
        if let Some((t, s)) = trace.as_ref().zip(start) {
            t.record(
                ROOT_SPAN,
                SpanKind::Crack {
                    pieces_before: pieces_before as u32,
                    pieces_after: pieces_after as u32,
                },
                s,
                t.now_ns(),
            );
            if pieces_after != pieces_before {
                t.metrics().inc("crack.reorganizations", 1);
            }
        }
        match &result {
            // Reorganization is an epoch event (see the unsharded path),
            // but a per-shard one: only the shards that grew pieces bump.
            Ok((_, reorganized)) if !reorganized.is_empty() => {
                for &s in reorganized {
                    self.result_cache.bump_epoch(&scoped_name(table, s));
                }
                self.result_cache.bump_epoch(table);
            }
            // An aborted (cancelled) call may have reorganized some
            // shards before stopping and cannot say which; invalidate
            // conservatively.
            Err(_) if pieces_after != pieces_before => self.invalidate_table(table),
            _ => {}
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        self.note_cancel(&result);
        result.map(|(ids, _)| ids)
    }

    /// Build the (table, column) cracker on first use; returns its key.
    fn ensure_cracker(&mut self, table: &str, column: &str) -> Result<(String, String)> {
        let key = (table.to_owned(), column.to_owned());
        if !self.crackers.contains_key(&key) {
            let t = self.catalog.get(table)?;
            let col = t.column(column)?;
            let values = col
                .as_i64()
                .ok_or_else(|| StorageError::TypeMismatch {
                    column: column.to_owned(),
                    expected: "Int64",
                    found: col.data_type().name(),
                })?
                .to_vec();
            self.crackers
                .insert(key.clone(), CrackerColumn::new(values));
        }
        Ok(key)
    }

    /// Pieces the adaptive index on (table, column) currently has —
    /// observability for convergence. For a sharded table, the sum of
    /// per-shard piece counts.
    pub fn index_pieces(&self, table: &str, column: &str) -> Option<usize> {
        self.crackers
            .get(&(table.to_owned(), column.to_owned()))
            .map(CrackerColumn::num_pieces)
            .or_else(|| {
                self.sharded
                    .get(table)
                    .and_then(|st| st.index_pieces(column))
            })
    }

    /// Build (or rebuild) the sample catalog enabling approximate
    /// queries on a table. Honors the session cancel token and deadline
    /// (checked between samples) and records a `sample.build` span and
    /// counter when observability is on.
    pub fn build_samples(
        &mut self,
        table: &str,
        fractions: &[f64],
        stratify_on: &[(&str, usize)],
        seed: u64,
    ) -> Result<()> {
        let trace = self.start_trace(table, || {
            format!(
                "build_samples({} samples)",
                fractions.len() + stratify_on.len()
            )
        });
        let ctx = self.query_ctx().with_trace(trace.as_ref());
        let start = ctx.trace.map(|t| t.now_ns());
        let result = self
            .catalog
            .get(table)
            .and_then(|t| SampleCatalog::build(t, fractions, stratify_on, seed, &ctx));
        if let Some((t, s)) = ctx.trace.zip(start) {
            t.record(ROOT_SPAN, SpanKind::Stage("sample.build"), s, t.now_ns());
            t.metrics().inc("sample.builds", 1);
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        self.note_cancel(&result);
        let catalog = result?;
        self.samples.insert(table.to_owned(), catalog);
        Ok(())
    }

    /// BlinkDB-style bounded approximate aggregate. Requires
    /// [`build_samples`](Self::build_samples) first.
    pub fn approx_aggregate(
        &self,
        table: &str,
        predicate: &Predicate,
        func: AggFunc,
        column: &str,
        bound: Bound,
    ) -> Result<BoundedAnswer> {
        let t = self.catalog.get(table)?;
        let samples = self.samples.get(table).ok_or_else(|| {
            StorageError::InvalidQuery(format!(
                "no sample catalog for {table}; call build_samples first"
            ))
        })?;
        let mut ex = BoundedExecutor::new(t, samples);
        if self.cache_on() {
            ex = ex.with_cache(Arc::clone(&self.result_cache), table);
        }
        if self.obs_on() {
            ex = ex.with_metrics(self.obs.metrics());
        }
        let trace = self.start_trace(table, || {
            format!("approx {func}({column}) where {predicate}")
        });
        let ctx = self.query_ctx().with_trace(trace.as_ref());
        let start = trace.as_ref().map(|t| t.now_ns());
        let ans = ex.aggregate(predicate, func, column, bound, &ctx);
        if let Some((t, start)) = trace.as_ref().zip(start) {
            if let Ok(ans) = &ans {
                t.record(
                    ROOT_SPAN,
                    SpanKind::Aqp {
                        fraction_bp: (ans.fraction_used * 10_000.0).round() as u32,
                        rows_scanned: ans.rows_scanned.min(u32::MAX as usize) as u32,
                        exact: ans.exact,
                    },
                    start,
                    t.now_ns(),
                );
            }
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        self.note_cancel(&ans);
        ans
    }

    /// A speculative range-aggregate executor over `table`, prefetching
    /// up to `budget` neighboring requests per call. With caching on it
    /// shares the engine's result cache, so speculatively computed
    /// aggregates are visible to [`ExploreDb::query`] and vice versa.
    pub fn speculator(&self, table: &str, budget: usize) -> Result<SpeculativeExecutor<'_>> {
        let t = self.catalog.get(table)?;
        let mut ex = SpeculativeExecutor::new(t, budget).with_cancel(self.session_token());
        if self.cache_on() {
            ex = ex.with_shared_cache(Arc::clone(&self.result_cache), table);
        }
        if self.obs_on() {
            ex = ex.with_metrics(self.obs.metrics());
        }
        Ok(ex)
    }

    /// Start an online aggregation whose confidence interval the caller
    /// can watch shrink. The session inherits the engine's cancel token
    /// (or a deadline token whose clock starts now), so `step`/`run_until`
    /// stop within one batch of a trigger; an `aqp.online` span and
    /// counter are recorded when observability is on.
    pub fn online_aggregate(
        &self,
        table: &str,
        predicate: &Predicate,
        func: AggFunc,
        column: &str,
        confidence: f64,
        seed: u64,
    ) -> Result<OnlineAggregation> {
        let trace = self.start_trace(table, || {
            format!("online {func}({column}) where {predicate}")
        });
        let start = trace.as_ref().map(|t| t.now_ns());
        let oa = OnlineAggregation::start(
            self.catalog.get(table)?,
            predicate,
            func,
            column,
            confidence,
            seed,
        )
        .map(|oa| oa.with_cancel(self.session_token()));
        if let Some((t, s)) = trace.as_ref().zip(start) {
            t.record(ROOT_SPAN, SpanKind::Stage("aqp.online"), s, t.now_ns());
            t.metrics().inc("aqp.online_sessions", 1);
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        oa
    }

    /// SeeDB: recommend the `k` most deviating views of `target` rows
    /// vs the rest of the table, using the shared-scan strategy. The
    /// shared scan checks the session cancel token and deadline every
    /// few thousand rows; a cancelled call leaves the engine serving
    /// exact truth as if it never ran.
    pub fn recommend_views(
        &self,
        table: &str,
        target: &Predicate,
        k: usize,
    ) -> Result<Vec<ScoredView>> {
        let t = self.catalog.get(table)?;
        let trace = self.start_trace(table, || format!("recommend_views(k={k})"));
        let ctx = self.query_ctx().with_trace(trace.as_ref());
        let views = candidate_views(t, &[AggFunc::Count, AggFunc::Sum, AggFunc::Avg]);
        let mut stats = SeedbStats::default();
        let start = ctx.trace.map(|t| t.now_ns());
        let result = recommend_shared(t, target, &views, k, &mut stats, &ctx);
        if let Some((t, s)) = ctx.trace.zip(start) {
            t.record(ROOT_SPAN, SpanKind::Stage("viz.recommend"), s, t.now_ns());
            t.metrics().inc("viz.recommendations", 1);
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        self.note_cancel(&result);
        result
    }

    /// Build (or rebuild) the AQUA-style synopsis store for a table.
    pub fn build_synopses(&mut self, table: &str, buckets: usize) -> Result<()> {
        let t = self.catalog.get(table)?;
        self.synopses
            .insert(table.to_owned(), SynopsisStore::build(t, buckets));
        Ok(())
    }

    /// Estimate `COUNT(*) WHERE low <= column < high` from synopses
    /// alone (no base-data access). Requires `build_synopses` first.
    pub fn estimate_range_count(
        &self,
        table: &str,
        column: &str,
        low: f64,
        high: f64,
    ) -> Result<SynopsisAnswer> {
        self.estimate_with(table, |s| s.range_count(column, low, high))
    }

    /// Estimate `COUNT(*) WHERE column = value` for a string column.
    pub fn estimate_point_count(
        &self,
        table: &str,
        column: &str,
        value: &str,
    ) -> Result<SynopsisAnswer> {
        self.estimate_with(table, |s| s.point_count(column, value))
    }

    /// Estimate `COUNT(DISTINCT column)` for a string column.
    pub fn estimate_distinct(&self, table: &str, column: &str) -> Result<SynopsisAnswer> {
        self.estimate_with(table, |s| s.distinct_count(column))
    }

    /// Shared wrapper for the synopsis estimators: cancel/deadline check
    /// up front (estimates are single-step), `synopsis.estimate` span
    /// and counter when observability is on.
    fn estimate_with(
        &self,
        table: &str,
        f: impl FnOnce(&SynopsisStore) -> Result<SynopsisAnswer>,
    ) -> Result<SynopsisAnswer> {
        let ctx = self.query_ctx();
        ctx.check_cancel()?;
        let store = self.synopsis_store(table)?;
        let trace = self.start_trace(table, || "synopsis estimate".to_owned());
        let start = trace.as_ref().map(|t| t.now_ns());
        let result = f(store);
        if let Some((t, s)) = trace.as_ref().zip(start) {
            t.record(
                ROOT_SPAN,
                SpanKind::Stage("synopsis.estimate"),
                s,
                t.now_ns(),
            );
            t.metrics().inc("synopsis.estimates", 1);
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        result
    }

    fn synopsis_store(&self, table: &str) -> Result<&SynopsisStore> {
        self.synopses.get(table).ok_or_else(|| {
            StorageError::InvalidQuery(format!(
                "no synopses for {table}; call build_synopses first"
            ))
        })
    }

    /// YmalDB-style facets: attribute values over-represented in the
    /// rows matching `predicate`, ranked by lift.
    pub fn facets(
        &self,
        table: &str,
        predicate: &Predicate,
        min_support: usize,
        k: usize,
    ) -> Result<Vec<explore_explore::Facet>> {
        let t = self.catalog.get(table)?;
        let trace = self.start_trace(table, || format!("facets(k={k}) where {predicate}"));
        let ctx = self.query_ctx().with_trace(trace.as_ref());
        let result = explore_exec::evaluate_selection(t, predicate, &ctx)
            .and_then(|rows| explore_explore::faceted_recommendations(t, &rows, min_support, k));
        if let Some(trace) = trace {
            trace.finish();
        }
        self.note_cancel(&result);
        result
    }

    /// Diversified top-k rows: relevance from a numeric column, pairwise
    /// distance over numeric feature columns, MMR with trade-off λ.
    /// Returns base-table row ids.
    pub fn diversified_topk(
        &self,
        table: &str,
        predicate: &Predicate,
        relevance_col: &str,
        feature_cols: &[&str],
        k: usize,
        lambda: f64,
    ) -> Result<Vec<u32>> {
        let t = self.catalog.get(table)?;
        let trace = self.start_trace(table, || format!("diversified_topk(k={k}, λ={lambda})"));
        let ctx = self.query_ctx().with_trace(trace.as_ref());
        let start = ctx.trace.map(|t| t.now_ns());
        let result =
            Self::diversify_rows(t, predicate, relevance_col, feature_cols, k, lambda, &ctx);
        if let Some((t, s)) = ctx.trace.zip(start) {
            t.record(ROOT_SPAN, SpanKind::Stage("div.topk"), s, t.now_ns());
            t.metrics().inc("div.topk", 1);
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        self.note_cancel(&result);
        result
    }

    /// The selection + item construction + MMR core of
    /// [`ExploreDb::diversified_topk`].
    fn diversify_rows(
        t: &Table,
        predicate: &Predicate,
        relevance_col: &str,
        feature_cols: &[&str],
        k: usize,
        lambda: f64,
        ctx: &QueryCtx,
    ) -> Result<Vec<u32>> {
        let rows = explore_exec::evaluate_selection(t, predicate, ctx)?;
        let rel = t.column(relevance_col)?;
        let feats: Vec<&explore_storage::Column> = feature_cols
            .iter()
            .map(|c| t.column(c))
            .collect::<Result<_>>()?;
        let mut items = Vec::with_capacity(rows.len());
        for &row in &rows {
            let r = row as usize;
            let relevance = rel
                .numeric_at(r)
                .ok_or_else(|| StorageError::TypeMismatch {
                    column: relevance_col.to_owned(),
                    expected: "numeric",
                    found: rel.data_type().name(),
                })?;
            let features = feats
                .iter()
                .enumerate()
                .map(|(fi, c)| {
                    c.numeric_at(r).ok_or_else(|| StorageError::TypeMismatch {
                        column: feature_cols[fi].to_owned(),
                        expected: "numeric",
                        found: c.data_type().name(),
                    })
                })
                .collect::<Result<Vec<f64>>>()?;
            items.push(explore_diversify::Item::new(row, relevance, features));
        }
        let mut stats = explore_diversify::DivStats::default();
        explore_diversify::mmr(&items, k, lambda, &[], &mut stats, ctx)
    }

    /// VizDeck: deal the top-`k` chart proposals for a table. The
    /// deal is single-pass; the session cancel token and deadline are
    /// checked up front, and a `viz.propose` span and counter are
    /// recorded when observability is on.
    pub fn propose_charts(&self, table: &str, k: usize) -> Result<Vec<explore_viz::ChartProposal>> {
        let ctx = self.query_ctx();
        ctx.check_cancel()?;
        let t = self.catalog.get(table)?;
        let trace = self.start_trace(table, || format!("propose_charts(k={k})"));
        let start = trace.as_ref().map(|t| t.now_ns());
        let result = explore_viz::propose_charts(t, k);
        if let Some((t, s)) = trace.as_ref().zip(start) {
            t.record(ROOT_SPAN, SpanKind::Stage("viz.propose"), s, t.now_ns());
            t.metrics().inc("viz.proposals", 1);
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        result
    }

    /// Discovery-driven cube exploration: score every cell of
    /// `SUM(measure) GROUP BY dim_a, dim_b` against the independence
    /// model. The grouped query runs through the engine's routed
    /// pipeline, so it honors caching, tracing, deadlines, the session
    /// cancel token and fail points like any other query; a
    /// `cube.discover` span and counter are recorded when observability
    /// is on.
    pub fn discover_cube(
        &mut self,
        table: &str,
        dim_a: &str,
        dim_b: &str,
        measure: &str,
    ) -> Result<DiscoveryView> {
        let trace = self.start_trace(table, || {
            format!("discover_cube({dim_a}, {dim_b}, {measure})")
        });
        let ctx = self.query_ctx().with_trace(trace.as_ref());
        let query = Query::new()
            .group(dim_a)
            .group(dim_b)
            .agg(AggFunc::Sum, measure);
        let start = ctx.trace.map(|t| t.now_ns());
        let result = self
            .run_routed(table, &query, &ctx)
            .and_then(|grouped| DiscoveryView::from_grouped(&grouped, dim_a, dim_b, measure));
        if let Some((t, s)) = ctx.trace.zip(start) {
            t.record(ROOT_SPAN, SpanKind::Stage("cube.discover"), s, t.now_ns());
            t.metrics().inc("cube.discoveries", 1);
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        self.note_cancel(&result);
        result
    }

    /// A DICE-style speculative cube session over `table`. The session
    /// holds its own cube lattice built from a snapshot of the table; it
    /// inherits the engine's session cancel token (or a deadline token
    /// whose clock starts now), and emits `cube.*` counters into the
    /// engine's metrics registry when observability is on.
    pub fn cube_session(
        &self,
        table: &str,
        dims: &[&str],
        measure: &str,
        func: AggFunc,
        speculate: bool,
    ) -> Result<CubeSession> {
        let t = self.catalog.get(table)?;
        let cube = DataCube::new(t.clone(), dims, measure, func)?;
        let mut session = CubeSession::new(cube, speculate).with_cancel(self.session_token());
        if self.obs_on() {
            session = session.with_metrics(Some(self.obs.metrics()));
        }
        Ok(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore_storage::csv::write_csv;
    use explore_storage::gen::{sales_table, SalesConfig};

    fn engine_with_sales(rows: usize) -> ExploreDb {
        let mut db = ExploreDb::new();
        db.register(
            "sales",
            sales_table(&SalesConfig {
                rows,
                ..SalesConfig::default()
            }),
        );
        db
    }

    #[test]
    fn exact_queries_route_to_memory_and_raw() {
        let t = sales_table(&SalesConfig {
            rows: 300,
            ..SalesConfig::default()
        });
        let mut db = ExploreDb::new();
        db.register("mem", t.clone());
        db.attach_raw(
            "raw",
            RawCsv::new(write_csv(&t), t.schema().clone()).unwrap(),
        );
        let q = Query::new()
            .filter(Predicate::eq("region", "region0"))
            .agg(AggFunc::Count, "qty");
        let a = db.query("mem", &q).unwrap();
        let b = db.query("raw", &q).unwrap();
        assert_eq!(a, b);
        assert_eq!(db.tables(), vec!["mem", "raw"]);
        assert_eq!(db.loading_progress("mem"), None);
        let (loaded, total) = db.loading_progress("raw").unwrap();
        assert_eq!(total, 6);
        assert!(loaded >= 2, "region + qty touched");
    }

    #[test]
    fn cracked_range_matches_scan_and_converges() {
        let mut db = engine_with_sales(5000);
        let ids = db.cracked_range("sales", "qty", 3, 7).unwrap();
        let scan = Predicate::range("qty", 3i64, 7i64)
            .evaluate(db.table("sales").unwrap())
            .unwrap();
        let mut got = ids.clone();
        got.sort_unstable();
        assert_eq!(got, scan);
        let p1 = db.index_pieces("sales", "qty").unwrap();
        db.cracked_range("sales", "qty", 2, 5).unwrap();
        assert!(db.index_pieces("sales", "qty").unwrap() >= p1);
        assert!(db.index_pieces("sales", "price").is_none());
    }

    #[test]
    fn cracking_non_int_column_errors() {
        let mut db = engine_with_sales(100);
        assert!(db.cracked_range("sales", "price", 0, 1).is_err());
        assert!(db.cracked_range("nope", "qty", 0, 1).is_err());
    }

    #[test]
    fn approximate_aggregation_via_catalog() {
        let mut db = engine_with_sales(50_000);
        assert!(
            db.approx_aggregate(
                "sales",
                &Predicate::True,
                AggFunc::Avg,
                "price",
                Bound::RowBudget { rows: 1000 },
            )
            .is_err(),
            "needs samples first"
        );
        db.build_samples("sales", &[0.01, 0.1], &[("region", 100)], 7)
            .unwrap();
        let ans = db
            .approx_aggregate(
                "sales",
                &Predicate::True,
                AggFunc::Avg,
                "price",
                Bound::RelativeError {
                    target: 0.05,
                    confidence: 0.95,
                },
            )
            .unwrap();
        let truth = {
            let p = db
                .table("sales")
                .unwrap()
                .column("price")
                .unwrap()
                .as_f64()
                .unwrap();
            p.iter().sum::<f64>() / p.len() as f64
        };
        assert!((ans.interval.estimate - truth).abs() / truth < 0.1);
    }

    #[test]
    fn online_aggregation_runs() {
        let db = engine_with_sales(20_000);
        let mut oa = db
            .online_aggregate("sales", &Predicate::True, AggFunc::Avg, "price", 0.95, 3)
            .unwrap();
        let trace = oa.run_until(0.02, 500).unwrap();
        assert!(!trace.is_empty());
        assert!(trace.last().unwrap().processed < 20_000);
    }

    #[test]
    fn facets_surface_the_selected_value() {
        let db = engine_with_sales(10_000);
        let facets = db
            .facets("sales", &Predicate::eq("channel", "channel1"), 10, 5)
            .unwrap();
        let top = facets.iter().find(|f| f.column == "channel").unwrap();
        assert_eq!(top.value, "channel1");
        assert!(top.lift > 1.0);
        assert!(db.facets("nope", &Predicate::True, 1, 5).is_err());
    }

    #[test]
    fn diversified_topk_returns_distinct_rows() {
        let db = engine_with_sales(5_000);
        let ids = db
            .diversified_topk(
                "sales",
                &Predicate::True,
                "price",
                &["price", "discount", "qty"],
                10,
                0.4,
            )
            .unwrap();
        assert_eq!(ids.len(), 10);
        let set: std::collections::HashSet<u32> = ids.iter().copied().collect();
        assert_eq!(set.len(), 10);
        // λ=1 must return the plain top-k by relevance.
        let plain = db
            .diversified_topk("sales", &Predicate::True, "price", &["qty"], 5, 1.0)
            .unwrap();
        let t = db.table("sales").unwrap();
        let prices = t.column("price").unwrap().as_f64().unwrap();
        let mut by_price: Vec<u32> = (0..t.num_rows() as u32).collect();
        by_price.sort_by(|&a, &b| prices[b as usize].total_cmp(&prices[a as usize]));
        let mut a = plain.clone();
        a.sort_unstable();
        let mut b = by_price[..5].to_vec();
        b.sort_unstable();
        assert_eq!(a, b);
        // String feature columns error.
        assert!(db
            .diversified_topk("sales", &Predicate::True, "region", &["qty"], 5, 0.5)
            .is_err());
    }

    #[test]
    fn chart_proposals_rank() {
        let db = engine_with_sales(2_000);
        let deck = db.propose_charts("sales", 5).unwrap();
        assert_eq!(deck.len(), 5);
        assert!(deck.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn cached_queries_are_bit_identical_and_counted() {
        let mut plain = engine_with_sales(4_000);
        let mut cached = ExploreDb::with_cache_policy(CachePolicy::on());
        cached.register("sales", plain.table("sales").unwrap().clone());
        let q = Query::new()
            .filter(Predicate::range("price", 100.0, 600.0))
            .group("region")
            .agg(AggFunc::Sum, "price");
        let truth = plain.query("sales", &q).unwrap();
        let cold = cached.query("sales", &q).unwrap();
        let warm = cached.query("sales", &q).unwrap();
        assert_eq!(truth, cold);
        assert_eq!(truth, warm);
        let stats = cached.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        // A contained range is served by subsumption, still bit-identical.
        let narrow = Query::new()
            .filter(Predicate::range("price", 200.0, 500.0))
            .group("region")
            .agg(AggFunc::Sum, "price");
        assert_eq!(
            plain.query("sales", &narrow).unwrap(),
            cached.query("sales", &narrow).unwrap()
        );
        assert_eq!(cached.cache_stats().subsumption_hits, 1);
    }

    #[test]
    fn mutations_bump_epochs_and_invalidate() {
        let mut db = ExploreDb::with_cache_policy(CachePolicy::on());
        db.register(
            "sales",
            sales_table(&SalesConfig {
                rows: 2_000,
                ..SalesConfig::default()
            }),
        );
        assert_eq!(db.table_epoch("sales"), 0);
        let q = Query::new().agg(AggFunc::Sum, "qty");
        let before = db.query("sales", &q).unwrap();
        let row = db.table("sales").unwrap().row(0).unwrap();
        db.push_row("sales", row).unwrap();
        assert_eq!(db.table_epoch("sales"), 1);
        let after = db.query("sales", &q).unwrap();
        assert_ne!(before, after, "append must change SUM(qty)");
        assert!(db.cache_stats().invalidations >= 1);

        // update_where: type mismatch is rejected atomically, a real
        // update lands and bumps the epoch.
        assert!(db
            .update_where("sales", &Predicate::True, "qty", Value::from("oops"))
            .is_err());
        assert_eq!(
            db.table_epoch("sales"),
            1,
            "failed update is not a mutation"
        );
        let n = db
            .update_where(
                "sales",
                &Predicate::cmp("qty", explore_storage::CmpOp::Ge, 0i64),
                "qty",
                Value::Int(1),
            )
            .unwrap();
        assert!(n > 0);
        assert_eq!(db.table_epoch("sales"), 2);
        let uniform = db.query("sales", &q).unwrap();
        let rows = db.table("sales").unwrap().num_rows() as i64;
        assert_eq!(
            uniform.column("sum(qty)").unwrap().as_f64().unwrap()[0],
            rows as f64
        );

        // Matching zero rows mutates nothing.
        let zero = db
            .update_where(
                "sales",
                &Predicate::cmp("qty", explore_storage::CmpOp::Lt, -5i64),
                "qty",
                Value::Int(9),
            )
            .unwrap();
        assert_eq!(zero, 0);
        assert_eq!(db.table_epoch("sales"), 2);

        // Re-registering a name invalidates it; appending a table bumps.
        let copy = db.table("sales").unwrap().clone();
        db.register("sales", copy.clone());
        assert_eq!(db.table_epoch("sales"), 3);
        db.append_rows("sales", &copy).unwrap();
        assert_eq!(db.table_epoch("sales"), 4);
        assert_eq!(db.table("sales").unwrap().num_rows(), 2 * copy.num_rows());
    }

    #[test]
    fn cracking_reorganization_bumps_epoch() {
        let mut db = ExploreDb::with_cache_policy(CachePolicy::on());
        db.register(
            "sales",
            sales_table(&SalesConfig {
                rows: 3_000,
                ..SalesConfig::default()
            }),
        );
        let e0 = db.table_epoch("sales");
        db.cracked_range("sales", "qty", 3, 7).unwrap();
        let e1 = db.table_epoch("sales");
        assert!(e1 > e0, "first crack reorganizes");
        // A repeated identical query adds no pieces, so no bump.
        db.cracked_range("sales", "qty", 3, 7).unwrap();
        assert_eq!(db.table_epoch("sales"), e1);
        // Mutation drops the adaptive index entirely.
        let row = db.table("sales").unwrap().row(0).unwrap();
        db.push_row("sales", row).unwrap();
        assert!(db.index_pieces("sales", "qty").is_none());
    }

    #[test]
    fn cache_policy_off_keeps_epochs() {
        let mut db = engine_with_sales(500);
        assert!(!db.cache_policy().is_on());
        let row = db.table("sales").unwrap().row(0).unwrap();
        db.push_row("sales", row).unwrap();
        assert_eq!(db.table_epoch("sales"), 1, "epochs advance even when Off");
        db.set_cache_policy(CachePolicy::on());
        assert!(db.cache_policy().is_on());
        assert_eq!(db.table_epoch("sales"), 1);
    }

    #[test]
    fn obs_on_records_traces_and_metrics() {
        let mut db = ExploreDb::with_obs_policy(ObsPolicy::on());
        db.set_cache_policy(CachePolicy::on());
        db.register(
            "sales",
            sales_table(&SalesConfig {
                rows: 4_000,
                ..SalesConfig::default()
            }),
        );
        let q = Query::new()
            .filter(Predicate::range("price", 100.0, 600.0))
            .group("region")
            .agg(AggFunc::Sum, "price");
        db.query("sales", &q).unwrap(); // miss
        db.query("sales", &q).unwrap(); // exact hit
        let traces = db.recent_traces();
        assert_eq!(traces.len(), 2);
        assert!(traces.iter().all(QueryTrace::is_well_formed));
        assert_eq!(traces[0].spans_labelled("cache.miss").len(), 1);
        assert_eq!(traces[1].spans_labelled("cache.hit").len(), 1);
        assert!(
            traces[0].spans_labelled("exec").len() >= 2,
            "filter + replay"
        );
        assert!(
            traces[1].spans_labelled("exec").is_empty(),
            "hit runs nothing"
        );
        let snap = db.metrics_snapshot();
        assert_eq!(snap.counter("query.traced"), 2);
        assert_eq!(snap.counter("cache.hits"), 1);
        assert_eq!(snap.counter("cache.misses"), 1);
        assert_eq!(snap.counter("cache.insertions"), 1);
        assert_eq!(snap.histogram("query.latency_ns").unwrap().count, 2);

        // Cracking records a crack span and the reorganization counter.
        db.cracked_range("sales", "qty", 3, 7).unwrap();
        let last = db.recent_traces().pop().unwrap();
        assert_eq!(last.spans_labelled("crack").len(), 1);
        assert_eq!(db.metrics_snapshot().counter("crack.reorganizations"), 1);

        // Off again: recording stops, history is retained.
        db.set_obs_policy(ObsPolicy::Off);
        db.query("sales", &q).unwrap();
        assert_eq!(db.recent_traces().len(), 3);
        assert_eq!(db.metrics_snapshot().counter("query.traced"), 3);
    }

    #[test]
    fn obs_off_by_default_and_results_identical() {
        let mut plain = engine_with_sales(3_000);
        let mut traced = ExploreDb::with_obs_policy(ObsPolicy::on());
        traced.register("sales", plain.table("sales").unwrap().clone());
        assert!(!plain.obs_policy().is_on());
        assert!(traced.obs_policy().is_on());
        let q = Query::new()
            .filter(Predicate::cmp("qty", explore_storage::CmpOp::Ge, 5.0))
            .select(&["region", "price"])
            .order("price", explore_storage::SortOrder::Desc)
            .take(100);
        assert_eq!(
            plain.query("sales", &q).unwrap(),
            traced.query("sales", &q).unwrap()
        );
        assert!(plain.recent_traces().is_empty());
        assert_eq!(plain.metrics_snapshot().counter("query.traced"), 0);
    }

    #[test]
    fn explain_renders_a_profile_regardless_of_policy() {
        let mut db = engine_with_sales(2_000);
        assert!(!db.obs_policy().is_on());
        let q = Query::new()
            .filter(Predicate::range("price", 100.0, 500.0))
            .group("region")
            .agg(AggFunc::Avg, "price");
        let report = db.explain("sales", &q).unwrap();
        assert!(report.contains("total:"), "{report}");
        assert!(report.contains("exec"), "{report}");
        assert!(report.contains("morsel"), "{report}");
        // The profiled query ran for real and reflects live routing.
        db.set_cache_policy(CachePolicy::on());
        db.query("sales", &q).unwrap();
        let warm = db.explain("sales", &q).unwrap();
        assert!(warm.contains("cache lookup → hit"), "{warm}");
        // Errors surface as errors, not as reports.
        let bad = Query::new().filter(Predicate::cmp("no_such", explore_storage::CmpOp::Eq, 1.0));
        assert!(db.explain("sales", &bad).is_err());
    }

    #[test]
    fn obs_covers_aqp_and_speculation() {
        let mut db = ExploreDb::with_obs_policy(ObsPolicy::on());
        db.register(
            "sales",
            sales_table(&SalesConfig {
                rows: 20_000,
                ..SalesConfig::default()
            }),
        );
        db.build_samples("sales", &[0.01, 0.1], &[], 7).unwrap();
        db.approx_aggregate(
            "sales",
            &Predicate::True,
            AggFunc::Avg,
            "price",
            Bound::RowBudget { rows: 2_500 },
        )
        .unwrap();
        let trace = db.recent_traces().pop().unwrap();
        assert_eq!(trace.spans_labelled("aqp").len(), 1);
        let snap = db.metrics_snapshot();
        assert_eq!(snap.counter("aqp.answers"), 1);

        let spec = db.speculator("sales", 2).unwrap();
        spec.execute(&explore_prefetch::RangeRequest {
            column: "qty".into(),
            low: 2,
            high: 5,
            func: AggFunc::Sum,
            measure: "price".into(),
        })
        .unwrap();
        let snap = db.metrics_snapshot();
        assert_eq!(snap.counter("prefetch.misses"), 1);
        assert_eq!(snap.counter("prefetch.speculative_runs"), 2);
    }

    #[test]
    fn sharded_engine_is_bitwise_and_observable() {
        use explore_shard::{ShardConfig, ShardPolicy};
        let mut plain = engine_with_sales(5_000);
        let mut db = ExploreDb::with_shard_policy(ShardPolicy::On(ShardConfig {
            count: 4,
            min_rows_per_shard: 1,
        }));
        assert!(db.shard_policy().is_on());
        db.register("sales", plain.table("sales").unwrap().clone());
        for q in [
            Query::new()
                .filter(Predicate::range("price", 100.0, 600.0))
                .group("region")
                .agg(AggFunc::Sum, "price"),
            Query::new()
                .filter(Predicate::eq("channel", "channel1"))
                .select(&["region", "price"])
                .order("price", explore_storage::SortOrder::Desc)
                .take(50),
        ] {
            assert_eq!(
                plain.query("sales", &q).unwrap(),
                db.query("sales", &q).unwrap()
            );
        }
        let stats = db.shard_stats("sales").unwrap();
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.iter().map(|s| s.rows).sum::<usize>(), 5_000);
        assert!(plain.shard_stats("sales").is_none());

        // Cracking routes per shard and still matches a scan.
        let ids = db.cracked_range("sales", "qty", 3, 7).unwrap();
        let mut got = ids.clone();
        got.sort_unstable();
        let want = Predicate::range("qty", 3i64, 7i64)
            .evaluate(plain.table("sales").unwrap())
            .unwrap();
        assert_eq!(got, want);
        assert!(db.index_pieces("sales", "qty").unwrap() >= 4);

        // Turning the policy off drops the mirrors; answers unchanged.
        db.set_shard_policy(ShardPolicy::Off);
        assert!(db.shard_stats("sales").is_none());
        let q = Query::new().agg(AggFunc::Sum, "qty");
        assert_eq!(
            plain.query("sales", &q).unwrap(),
            db.query("sales", &q).unwrap()
        );
    }

    #[test]
    fn shard_mutations_bump_only_the_owning_scope() {
        use explore_shard::{scoped_name, ShardConfig, ShardPolicy};
        let mut db = ExploreDb::with_shard_policy(ShardPolicy::On(ShardConfig {
            count: 4,
            min_rows_per_shard: 1,
        }));
        db.set_cache_policy(CachePolicy::on());
        db.register(
            "sales",
            sales_table(&SalesConfig {
                rows: 2_000,
                ..SalesConfig::default()
            }),
        );
        let before: Vec<u64> = (0..4)
            .map(|s| db.table_epoch(&scoped_name("sales", s)))
            .collect();
        let base = db.table_epoch("sales");

        // push_row appends to the last shard: only scope 3 bumps.
        let row = db.table("sales").unwrap().row(0).unwrap();
        db.push_row("sales", row).unwrap();
        assert_eq!(db.table_epoch("sales"), base + 1);
        for (s, &epoch) in before.iter().enumerate().take(3) {
            assert_eq!(db.table_epoch(&scoped_name("sales", s)), epoch);
        }
        assert_eq!(db.table_epoch(&scoped_name("sales", 3)), before[3] + 1);

        // The sharded mirror stays in sync with the canonical table.
        let q = Query::new().agg(AggFunc::Count, "qty");
        let n = db.query("sales", &q).unwrap();
        assert_eq!(
            n.column("count(qty)").unwrap().as_f64().unwrap()[0],
            2_001.0
        );

        // An external-channel mutation is conservative: every scope bumps.
        db.note_mutation("sales");
        for (s, &epoch) in before.iter().enumerate() {
            assert!(db.table_epoch(&scoped_name("sales", s)) > epoch);
        }
    }

    #[test]
    fn view_recommendation_returns_ranked_views() {
        let db = engine_with_sales(10_000);
        let views = db
            .recommend_views("sales", &Predicate::eq("product", "product0"), 5)
            .unwrap();
        assert_eq!(views.len(), 5);
        assert!(views.windows(2).all(|w| w[0].utility >= w[1].utility));
    }
}
