//! Uniform row-level samples of tables.

use explore_storage::rng::SplitMix64;
use explore_storage::Table;

/// A uniform random sample of a base table, carrying the metadata AQP
/// needs to scale estimates back up.
#[derive(Debug, Clone)]
pub struct UniformSample {
    table: Table,
    base_rows: usize,
    fraction: f64,
}

impl UniformSample {
    /// Draw a sample of `fraction` (0, 1] of `base` without replacement.
    pub fn build(base: &Table, fraction: f64, seed: u64) -> Self {
        let fraction = fraction.clamp(0.0, 1.0);
        let n = base.num_rows();
        let k = ((n as f64 * fraction).round() as usize).clamp(usize::from(n > 0), n);
        let mut rng = SplitMix64::new(seed);
        let mut sel: Vec<u32> = rng
            .sample_indices(n, k)
            .into_iter()
            .map(|i| i as u32)
            .collect();
        // Keep base order: sequential access patterns stay sequential.
        sel.sort_unstable();
        UniformSample {
            table: base.gather(&sel),
            base_rows: n,
            fraction: if n == 0 { 0.0 } else { k as f64 / n as f64 },
        }
    }

    /// The sampled rows.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Rows in the base table this sample was drawn from.
    pub fn base_rows(&self) -> usize {
        self.base_rows
    }

    /// Achieved sampling fraction (may differ slightly from requested
    /// due to rounding).
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// The factor by which COUNT/SUM estimates on the sample must be
    /// scaled to estimate the base table.
    pub fn scale(&self) -> f64 {
        if self.fraction > 0.0 {
            1.0 / self.fraction
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore_storage::gen::{sales_table, SalesConfig};

    #[test]
    fn sample_size_matches_fraction() {
        let base = sales_table(&SalesConfig {
            rows: 10_000,
            ..SalesConfig::default()
        });
        let s = UniformSample::build(&base, 0.1, 1);
        assert_eq!(s.table().num_rows(), 1000);
        assert_eq!(s.base_rows(), 10_000);
        assert!((s.scale() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn full_fraction_keeps_everything() {
        let base = sales_table(&SalesConfig {
            rows: 100,
            ..SalesConfig::default()
        });
        let s = UniformSample::build(&base, 1.0, 2);
        assert_eq!(s.table(), &base);
        assert_eq!(s.scale(), 1.0);
    }

    #[test]
    fn tiny_fraction_keeps_at_least_one_row() {
        let base = sales_table(&SalesConfig {
            rows: 100,
            ..SalesConfig::default()
        });
        let s = UniformSample::build(&base, 1e-9, 3);
        assert_eq!(s.table().num_rows(), 1);
    }

    #[test]
    fn empty_base() {
        let base = sales_table(&SalesConfig {
            rows: 0,
            ..SalesConfig::default()
        });
        let s = UniformSample::build(&base, 0.5, 4);
        assert_eq!(s.table().num_rows(), 0);
        assert_eq!(s.scale(), 0.0);
    }

    #[test]
    fn sample_mean_approximates_population_mean() {
        let base = sales_table(&SalesConfig {
            rows: 50_000,
            ..SalesConfig::default()
        });
        let pop: f64 = {
            let p = base.column("price").unwrap().as_f64().unwrap();
            p.iter().sum::<f64>() / p.len() as f64
        };
        let s = UniformSample::build(&base, 0.05, 5);
        let sm: f64 = {
            let p = s.table().column("price").unwrap().as_f64().unwrap();
            p.iter().sum::<f64>() / p.len() as f64
        };
        assert!((sm - pop).abs() / pop < 0.05, "sample {sm} pop {pop}");
    }

    #[test]
    fn different_seeds_give_different_samples() {
        let base = sales_table(&SalesConfig {
            rows: 1000,
            ..SalesConfig::default()
        });
        let a = UniformSample::build(&base, 0.1, 6);
        let b = UniformSample::build(&base, 0.1, 7);
        assert_ne!(a.table(), b.table());
    }
}
