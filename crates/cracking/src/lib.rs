//! # explore-cracking
//!
//! Adaptive indexing for data exploration: the Database Layer /
//! "Adaptive Indexing" cluster of the SIGMOD'15 tutorial *Overview of
//! Data Exploration Techniques* (papers \[22, 23, 26, 29, 30, 31, 33\]).
//!
//! The premise of the whole cluster: in exploration there is no workload
//! to tune for, so indexes must *emerge from the queries themselves*.
//! Each module implements one surveyed refinement:
//!
//! * [`cracker`] — standard database cracking: each range query
//!   partitions the column at its bounds; first query ≈ scan cost,
//!   convergence towards a sorted column along the explored ranges.
//! * [`stochastic`] — stochastic cracking (DDC/DDR): auxiliary
//!   data-driven cracks keep pieces balanced, defeating the sequential
//!   workloads that stall standard cracking.
//! * [`hybrid`] — hybrid crack-sort: initial partitions drained into an
//!   always-sorted final partition, trading a slightly costlier first
//!   query for immediate binary-search performance on revisited ranges.
//! * [`updates`] — ripple inserts and tombstone deletes that preserve
//!   all accumulated cracking work.
//! * [`sideways`] — cracker maps that co-crack (head, tail) attribute
//!   pairs so projections of qualifying tuples are contiguous slices.
//! * [`concurrent`] — shared/exclusive locking that exploits the
//!   discretionary nature of cracking writes: converged queries read
//!   concurrently.
//! * [`baseline`] — the comparison points every cracking paper uses:
//!   full scans, a fully sorted index, and the workload generator
//!   (random / sequential / skewed / zoom-in patterns).
//!
//! # Example: the cracking convergence story (experiment E1)
//!
//! ```
//! use explore_cracking::{CrackerColumn, baseline::SortedIndex};
//! use explore_storage::gen::uniform_i64;
//!
//! let base = uniform_i64(100_000, 0, 100_000, 42);
//! let mut cracked = CrackerColumn::new(base.clone());
//! let sorted = SortedIndex::build(&base);
//!
//! // Same answers, radically different cost profiles.
//! assert_eq!(
//!     cracked.query_count(1000, 2000),
//!     sorted.query_count(1000, 2000),
//! );
//! // After a handful of queries the cracker touches almost nothing new.
//! for i in 0..50 {
//!     cracked.query(i * 1000, i * 1000 + 500);
//! }
//! assert!(cracked.stats().touched > 0);
//! ```

pub mod baseline;
pub mod concurrent;
pub mod cracker;
pub mod hybrid;
pub mod sideways;
pub mod stochastic;
pub mod updates;

pub use baseline::{QueryPattern, ScanBaseline, SortedIndex};
pub use concurrent::ConcurrentCracker;
pub use cracker::{CrackStats, CrackerColumn};
pub use hybrid::HybridCrackSort;
pub use sideways::{CrackerMap, MapSet};
pub use stochastic::{StochasticCracker, StochasticVariant};
pub use updates::UpdatableCracker;
