//! Observability differential harness: tracing must never change what
//! executes.
//!
//! Every supported query shape runs with [`ObsPolicy::Off`] and
//! [`ObsPolicy::On`] under both exec policies (and with the result
//! cache off, cold, and warm) and the result tables are compared
//! **bit-for-bit** — float cells by `to_bits`. The instrumentation
//! earns this by construction: every site threads an
//! `Option<&ActiveTrace>` that only ever wraps the same computation.
//!
//! The second half checks that what *was* recorded is truthful: span
//! trees are well-formed, each exec fan-out records exactly one morsel
//! child per row window (so morsel counts match the table size), cache
//! hit/miss/subsumption outcomes appear where the serve protocol says
//! they happened, and an exact cache hit executes nothing.

use exploration::cache::{CacheConfig, CachePolicy};
use exploration::exec::{morsel_count, ExecPolicy};
use exploration::obs::{ObsPolicy, QueryTrace, SpanKind, ROOT_SPAN};
use exploration::storage::gen::{sales_table, SalesConfig};
use exploration::storage::{
    AggFunc, CmpOp, Predicate, Query, SortOrder, Table, Value, MORSEL_ROWS,
};
use exploration::ExploreDb;

/// A table spanning several morsels plus a ragged tail.
fn multi_morsel_table() -> Table {
    sales_table(&SalesConfig {
        rows: 2 * MORSEL_ROWS + 4321,
        ..SalesConfig::default()
    })
}

/// A table smaller than one morsel (degenerate decomposition).
fn small_table() -> Table {
    sales_table(&SalesConfig {
        rows: 777,
        ..SalesConfig::default()
    })
}

/// Assert two tables are identical down to the float bit patterns.
fn assert_bitwise_eq(a: &Table, b: &Table, context: &str) {
    assert_eq!(a.schema(), b.schema(), "{context}: schema");
    assert_eq!(a.num_rows(), b.num_rows(), "{context}: row count");
    for field in a.schema().fields() {
        let ca = a.column(field.name()).expect("left column");
        let cb = b.column(field.name()).expect("right column");
        for row in 0..a.num_rows() {
            let va = ca.value(row).expect("left cell");
            let vb = cb.value(row).expect("right cell");
            match (va, vb) {
                (Value::Float(x), Value::Float(y)) => assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{context}: {}[{row}] {x} vs {y}",
                    field.name()
                ),
                (x, y) => assert_eq!(x, y, "{context}: {}[{row}]", field.name()),
            }
        }
    }
}

/// The same twelve shapes as the serial/parallel differential harness.
fn query_shapes() -> Vec<(&'static str, Query)> {
    vec![
        ("full_scan", Query::new()),
        (
            "filter_scan",
            Query::new().filter(Predicate::range("price", 100.0, 600.0)),
        ),
        (
            "projection",
            Query::new()
                .filter(Predicate::cmp("qty", CmpOp::Ge, 5.0))
                .select(&["region", "price"]),
        ),
        (
            "order_limit",
            Query::new()
                .filter(Predicate::range("price", 50.0, 900.0))
                .select(&["product", "price"])
                .order("price", SortOrder::Desc)
                .take(123),
        ),
        (
            "global_aggregates",
            Query::new()
                .agg(AggFunc::Count, "qty")
                .agg(AggFunc::Sum, "price")
                .agg(AggFunc::Avg, "price")
                .agg(AggFunc::Min, "discount")
                .agg(AggFunc::Max, "discount")
                .agg(AggFunc::Var, "price")
                .agg(AggFunc::Std, "price"),
        ),
        (
            "filtered_global_aggregate",
            Query::new()
                .filter(Predicate::eq("channel", "channel1"))
                .agg(AggFunc::Avg, "price"),
        ),
        (
            "group_by",
            Query::new()
                .group("region")
                .agg(AggFunc::Count, "qty")
                .agg(AggFunc::Sum, "price"),
        ),
        (
            "multi_column_group_by",
            Query::new()
                .group("region")
                .group("channel")
                .agg(AggFunc::Avg, "price")
                .agg(AggFunc::Var, "discount"),
        ),
        (
            "full_pipeline",
            Query::new()
                .filter(Predicate::range("price", 50.0, 800.0).and(Predicate::cmp(
                    "qty",
                    CmpOp::Ge,
                    2.0,
                )))
                .group("product")
                .agg(AggFunc::Sum, "price")
                .agg(AggFunc::Avg, "qty")
                .order("sum(price)", SortOrder::Desc)
                .take(7),
        ),
        (
            "compound_predicate",
            Query::new().filter(
                Predicate::eq("region", "region0")
                    .or(Predicate::range("price", 0.0, 120.0))
                    .and(Predicate::cmp("qty", CmpOp::Lt, 8.0).not()),
            ),
        ),
        (
            "empty_result_filter",
            Query::new()
                .filter(Predicate::cmp("price", CmpOp::Lt, -1.0))
                .group("region")
                .agg(AggFunc::Sum, "price"),
        ),
        (
            "string_predicate_scan",
            Query::new()
                .filter(Predicate::eq("channel", "channel0"))
                .select(&["channel", "qty"]),
        ),
    ]
}

fn engine(t: &Table, obs: bool, cache: bool, exec: ExecPolicy) -> ExploreDb {
    let db = ExploreDb::new();
    if obs {
        db.set_obs_policy(ObsPolicy::on());
    }
    if cache {
        db.set_cache_policy(CachePolicy::On(CacheConfig {
            byte_budget: 1 << 30,
            ..CacheConfig::default()
        }));
    }
    db.set_exec_policy(exec);
    db.register("sales", t.clone());
    db
}

const EXEC_POLICIES: [ExecPolicy; 2] = [ExecPolicy::Serial, ExecPolicy::Parallel { workers: 4 }];

/// The last finished trace of a one-query engine interaction.
fn last_trace(db: &ExploreDb) -> QueryTrace {
    db.recent_traces().last().expect("a recorded trace").clone()
}

fn exec_spans(trace: &QueryTrace) -> Vec<(u32, u32, u32)> {
    trace
        .spans
        .iter()
        .filter_map(|s| match s.kind {
            SpanKind::Exec {
                participants,
                morsels,
                ..
            } => Some((s.id, participants, morsels)),
            _ => None,
        })
        .collect()
}

#[test]
fn obs_on_is_bit_identical_across_shapes_policies_and_cache_modes() {
    for (table_name, t) in [
        ("multi-morsel", multi_morsel_table()),
        ("sub-morsel", small_table()),
    ] {
        for exec in EXEC_POLICIES {
            for cache in [false, true] {
                let off = engine(&t, false, cache, exec);
                let on = engine(&t, true, cache, exec);
                for (shape, q) in query_shapes() {
                    let context = format!("{shape} ({table_name}, {exec:?}, cache={cache})");
                    // Cold pass (and, when caching, the admissions).
                    assert_bitwise_eq(
                        &off.query("sales", &q).unwrap(),
                        &on.query("sales", &q).unwrap(),
                        &format!("{context}, cold"),
                    );
                    // Second pass: with caching every query is now an
                    // exact hit — serves must be as invisible as misses.
                    assert_bitwise_eq(
                        &off.query("sales", &q).unwrap(),
                        &on.query("sales", &q).unwrap(),
                        &format!("{context}, warm"),
                    );
                }
            }
        }
    }
}

#[test]
fn uncached_traces_record_one_fan_out_with_a_morsel_per_window() {
    let t = multi_morsel_table();
    let n_morsels = morsel_count(t.num_rows()) as u32;
    assert!(n_morsels >= 3, "table must span several morsels");
    for exec in EXEC_POLICIES {
        let db = engine(&t, true, false, exec);
        for (shape, q) in query_shapes() {
            db.query("sales", &q).unwrap();
            let trace = last_trace(&db);
            let context = format!("{shape} ({exec:?})");
            assert!(trace.is_well_formed(), "{context}: {trace:?}");
            let execs = exec_spans(&trace);
            assert_eq!(execs.len(), 1, "{context}: one fan-out per uncached query");
            let (exec_id, participants, morsels) = execs[0];
            assert_eq!(morsels, n_morsels, "{context}: morsels match table size");
            assert!(participants >= 1, "{context}");
            assert_eq!(
                trace.span(exec_id).unwrap().parent,
                ROOT_SPAN,
                "{context}: exec spans hang off the root"
            );
            // One morsel child per row window, all inside the fan-out.
            let morsel_spans = trace.spans_labelled("morsel");
            assert_eq!(morsel_spans.len(), n_morsels as usize, "{context}");
            assert!(
                morsel_spans.iter().all(|s| s.parent == exec_id),
                "{context}: morsels parent at their fan-out"
            );
            let mut indexes: Vec<u32> = morsel_spans
                .iter()
                .filter_map(|s| match s.kind {
                    SpanKind::Morsel { index } => Some(index),
                    _ => None,
                })
                .collect();
            indexes.sort_unstable();
            assert_eq!(
                indexes,
                (0..n_morsels).collect::<Vec<_>>(),
                "{context}: every window recorded exactly once"
            );
            assert_eq!(trace.spans_labelled("merge").len(), 1, "{context}");
            assert_eq!(trace.dropped_spans, 0, "{context}");
        }
    }
}

#[test]
fn cached_traces_tell_the_serve_story() {
    let t = multi_morsel_table();
    let n_morsels = morsel_count(t.num_rows()) as u32;
    for exec in EXEC_POLICIES {
        for (shape, q) in query_shapes() {
            // A fresh engine per shape: an earlier shape's cached
            // superset would otherwise serve this one by subsumption
            // and the cold pass would not be a miss.
            let db = engine(&t, true, true, exec);
            let context = format!("{shape} ({exec:?})");

            // Cold: a miss computes (filter + replay fan-outs) and admits.
            db.query("sales", &q).unwrap();
            let cold = last_trace(&db);
            assert!(cold.is_well_formed(), "{context}: {cold:?}");
            assert_eq!(
                cold.spans_labelled("cache.miss").len(),
                1,
                "{context}: cold lookup is a miss"
            );
            let execs = exec_spans(&cold);
            assert_eq!(execs.len(), 2, "{context}: filter then replay");
            assert!(
                execs.iter().all(|&(_, _, m)| m == n_morsels),
                "{context}: both fan-outs cover the base table"
            );
            assert_eq!(
                cold.spans_labelled("morsel").len(),
                2 * n_morsels as usize,
                "{context}"
            );
            assert_eq!(
                cold.spans_labelled("admit").len(),
                1,
                "{context}: computed result admitted"
            );

            // Warm: an exact hit executes nothing.
            db.query("sales", &q).unwrap();
            let warm = last_trace(&db);
            assert!(warm.is_well_formed(), "{context}: {warm:?}");
            assert_eq!(
                warm.spans_labelled("cache.hit").len(),
                1,
                "{context}: warm lookup is an exact hit"
            );
            assert!(
                exec_spans(&warm).is_empty() && warm.spans_labelled("morsel").is_empty(),
                "{context}: a cache hit must not contain exec spans: {warm:?}"
            );
        }
    }
}

#[test]
fn subsumption_traces_mark_the_refilter_serve() {
    let t = multi_morsel_table();
    let db = engine(&t, true, true, ExecPolicy::Serial);
    // Seed a superset selection, then ask a strictly contained range the
    // cache has never seen: served by re-filtering the cached subset.
    db.query(
        "sales",
        &Query::new().filter(Predicate::range("price", 100.0, 800.0)),
    )
    .unwrap();
    db.query(
        "sales",
        &Query::new()
            .filter(Predicate::range("price", 200.0, 700.0))
            .agg(AggFunc::Sum, "price"),
    )
    .unwrap();
    let trace = last_trace(&db);
    assert!(trace.is_well_formed(), "{trace:?}");
    assert_eq!(
        trace.spans_labelled("cache.subsumption").len(),
        1,
        "contained range must serve via subsumption: {trace:?}"
    );
    // The re-filter executes over the cached subset, not the base table
    // — fan-outs exist but the lookup span itself contains none of them
    // (it closed at probe time).
    let lookup = trace.spans_labelled("cache.subsumption")[0];
    assert!(
        trace.children(lookup.id).is_empty(),
        "lookup spans have no children: {trace:?}"
    );
    assert!(!exec_spans(&trace).is_empty());
}

/// Every middleware entry point routed through the unified pipeline
/// records a well-formed trace carrying its stage span directly under
/// the root, and bumps its counter — `build_samples`, bounded/online
/// AQP, SeeDB recommendation, synopsis estimates, diversified top-k,
/// VizDeck proposals, and cube discovery.
#[test]
fn middleware_entry_points_record_wellformed_stage_spans() {
    let t = small_table();
    let db = engine(&t, true, false, ExecPolicy::Serial);
    db.build_samples("sales", &[0.05, 0.2], &[("region", 50)], 7)
        .unwrap();
    db.build_synopses("sales", 32).unwrap();

    // Each step: (context, run it, stage label, counter name).
    let check = |db: &ExploreDb, context: &str, label: &str, counter: &str| {
        let trace = last_trace(db);
        assert!(trace.is_well_formed(), "{context}: {trace:?}");
        let stages = trace.spans_labelled(label);
        assert_eq!(stages.len(), 1, "{context}: one `{label}` span: {trace:?}");
        assert_eq!(
            stages[0].parent, ROOT_SPAN,
            "{context}: stage spans hang off the root"
        );
        assert_eq!(trace.dropped_spans, 0, "{context}");
        assert!(
            db.metrics_snapshot().counter(counter) >= 1,
            "{context}: counter `{counter}` incremented"
        );
    };

    check(&db, "build_samples", "sample.build", "sample.builds");

    db.approx_aggregate(
        "sales",
        &Predicate::True,
        AggFunc::Avg,
        "price",
        exploration::aqp::Bound::RelativeError {
            target: 0.05,
            confidence: 0.95,
        },
    )
    .unwrap();
    let trace = last_trace(&db);
    assert!(trace.is_well_formed(), "approx_aggregate: {trace:?}");
    assert_eq!(
        trace.spans_labelled("aqp").len(),
        1,
        "approx_aggregate records one aqp span: {trace:?}"
    );

    let mut oa = db
        .online_aggregate("sales", &Predicate::True, AggFunc::Avg, "price", 0.95, 7)
        .unwrap();
    oa.step(200).unwrap();
    check(&db, "online_aggregate", "aqp.online", "aqp.online_sessions");

    db.recommend_views("sales", &Predicate::eq("product", "product0"), 3)
        .unwrap();
    check(
        &db,
        "recommend_views",
        "viz.recommend",
        "viz.recommendations",
    );

    db.estimate_range_count("sales", "price", 100.0, 600.0)
        .unwrap();
    check(
        &db,
        "estimate_range_count",
        "synopsis.estimate",
        "synopsis.estimates",
    );

    db.diversified_topk(
        "sales",
        &Predicate::True,
        "price",
        &["qty", "discount"],
        5,
        0.5,
    )
    .unwrap();
    check(&db, "diversified_topk", "div.topk", "div.topk");

    db.propose_charts("sales", 4).unwrap();
    check(&db, "propose_charts", "viz.propose", "viz.proposals");

    db.discover_cube("sales", "region", "product", "price")
        .unwrap();
    check(&db, "discover_cube", "cube.discover", "cube.discoveries");
}

/// The instrumentation on the middleware entry points is observation
/// only: with the same seeds, `ObsPolicy::Off` and `ObsPolicy::On`
/// produce identical answers for every entry point — and Off records
/// no traces at all while doing so.
#[test]
fn middleware_obs_off_output_is_identical_to_on() {
    let t = small_table();
    let mut off = engine(&t, false, false, ExecPolicy::Serial);
    let mut on = engine(&t, true, false, ExecPolicy::Serial);
    for db in [&mut off, &mut on] {
        db.build_samples("sales", &[0.05, 0.2], &[("region", 50)], 7)
            .unwrap();
        db.build_synopses("sales", 32).unwrap();
    }
    let bound = exploration::aqp::Bound::RelativeError {
        target: 0.05,
        confidence: 0.95,
    };

    // Debug renderings preserve float text exactly; equal strings mean
    // the observed pipeline computed the same values.
    let run = |db: &mut ExploreDb| -> Vec<String> {
        let mut outs = Vec::new();
        outs.push(format!(
            "{:?}",
            db.approx_aggregate("sales", &Predicate::True, AggFunc::Avg, "price", bound)
                .unwrap()
        ));
        let mut oa = db
            .online_aggregate("sales", &Predicate::True, AggFunc::Sum, "price", 0.95, 11)
            .unwrap();
        outs.push(format!("{:?}", oa.step(300).unwrap()));
        outs.push(format!(
            "{:?}",
            db.recommend_views("sales", &Predicate::eq("product", "product0"), 3)
                .unwrap()
        ));
        outs.push(format!(
            "{:?}",
            db.estimate_range_count("sales", "price", 100.0, 600.0)
                .unwrap()
        ));
        outs.push(format!(
            "{:?}",
            db.estimate_distinct("sales", "region").unwrap()
        ));
        outs.push(format!(
            "{:?}",
            db.diversified_topk(
                "sales",
                &Predicate::True,
                "price",
                &["qty", "discount"],
                5,
                0.5
            )
            .unwrap()
        ));
        outs.push(format!("{:?}", db.propose_charts("sales", 4).unwrap()));
        outs.push(format!(
            "{:?}",
            db.discover_cube("sales", "region", "product", "price")
                .unwrap()
                .cells()
        ));
        outs
    };

    let off_outs = run(&mut off);
    let on_outs = run(&mut on);
    assert_eq!(off_outs.len(), on_outs.len());
    for (i, (a, b)) in off_outs.iter().zip(&on_outs).enumerate() {
        assert_eq!(a, b, "middleware output {i} diverged between Off and On");
    }
    assert!(
        off.recent_traces().is_empty(),
        "Off must record no middleware traces"
    );
    assert!(
        !on.recent_traces().is_empty(),
        "On must have recorded middleware traces"
    );
}

#[test]
fn off_records_nothing_and_ring_is_bounded() {
    let t = small_table();
    let db = engine(&t, false, false, ExecPolicy::Serial);
    for (_, q) in query_shapes() {
        db.query("sales", &q).unwrap();
    }
    assert!(db.recent_traces().is_empty(), "Off must record nothing");
    assert_eq!(db.metrics_snapshot().counter("query.traced"), 0);

    // On: the ring keeps the most recent `ring_capacity` traces.
    db.set_obs_policy(ObsPolicy::on());
    let capacity = db.obs_policy().config().expect("on").ring_capacity;
    for round in 0..capacity + 5 {
        let q = Query::new().agg(AggFunc::Count, "qty").take(round + 1);
        db.query("sales", &q).unwrap();
    }
    let traces = db.recent_traces();
    assert_eq!(traces.len(), capacity, "ring holds the newest traces");
    let seqs: Vec<u64> = traces.iter().map(|t| t.seq).collect();
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "oldest-first order: {seqs:?}"
    );
}
