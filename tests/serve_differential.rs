//! Serve-differential suite: routing a query through the serving layer
//! must never change what it computes — only when it runs.
//!
//! Every supported query shape is answered twice, by a direct engine
//! and by a session facade over an identically configured engine,
//! across Serial/Parallel execution and cache off/warm — bit-identical
//! down to float bit patterns. On top sits the scale proof: 1000+
//! concurrent sessions multiplexed over a 4-worker scheduler all
//! complete with results bit-identical to direct engine calls, and the
//! seeded interactive workload's checksum is unchanged when driven
//! through `explore-serve` with sessions ≫ scheduler workers.

use exploration::cache::CachePolicy;
use exploration::exec::ExecPolicy;
use exploration::serve::{ServeConfig, ServeEngine};
use exploration::storage::gen::{sales_table, SalesConfig};
use exploration::storage::{
    AggFunc, CmpOp, Predicate, Query, SortOrder, Table, Value, MORSEL_ROWS,
};
use exploration::workload::{DriveMode, WorkloadConfig, WorkloadRunner};
use exploration::ExploreDb;

/// A table spanning several morsels plus a ragged tail, so parallel
/// merge order matters (mirrors the other differential suites).
fn serve_table() -> Table {
    sales_table(&SalesConfig {
        rows: MORSEL_ROWS + 4321,
        ..SalesConfig::default()
    })
}

/// Assert two tables are identical down to the float bit patterns.
fn assert_bitwise_eq(a: &Table, b: &Table, context: &str) {
    assert_eq!(a.schema(), b.schema(), "{context}: schema");
    assert_eq!(a.num_rows(), b.num_rows(), "{context}: row count");
    for field in a.schema().fields() {
        let ca = a.column(field.name()).unwrap();
        let cb = b.column(field.name()).unwrap();
        for row in 0..a.num_rows() {
            let va = ca.value(row).unwrap();
            let vb = cb.value(row).unwrap();
            match (va, vb) {
                (Value::Float(x), Value::Float(y)) => assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{context}: {}[{row}] {x} vs {y}",
                    field.name()
                ),
                (x, y) => assert_eq!(x, y, "{context}: {}[{row}]", field.name()),
            }
        }
    }
}

/// The executor's supported query shapes (mirrors the serial/parallel
/// and chaos differential suites).
fn query_shapes() -> Vec<(&'static str, Query)> {
    vec![
        ("full_scan", Query::new()),
        (
            "filter_scan",
            Query::new().filter(Predicate::range("price", 100.0, 600.0)),
        ),
        (
            "projection",
            Query::new()
                .filter(Predicate::cmp("qty", CmpOp::Ge, 5.0))
                .select(&["region", "price"]),
        ),
        (
            "order_limit",
            Query::new()
                .filter(Predicate::range("price", 50.0, 900.0))
                .select(&["product", "price"])
                .order("price", SortOrder::Desc)
                .take(123),
        ),
        (
            "global_aggregates",
            Query::new()
                .agg(AggFunc::Count, "qty")
                .agg(AggFunc::Sum, "price")
                .agg(AggFunc::Avg, "price")
                .agg(AggFunc::Min, "discount")
                .agg(AggFunc::Max, "discount")
                .agg(AggFunc::Var, "price")
                .agg(AggFunc::Std, "price"),
        ),
        (
            "filtered_global_aggregate",
            Query::new()
                .filter(Predicate::eq("channel", "channel1"))
                .agg(AggFunc::Avg, "price"),
        ),
        (
            "group_by",
            Query::new()
                .group("region")
                .agg(AggFunc::Count, "qty")
                .agg(AggFunc::Sum, "price"),
        ),
        (
            "multi_column_group_by",
            Query::new()
                .group("region")
                .group("channel")
                .agg(AggFunc::Avg, "price")
                .agg(AggFunc::Var, "discount"),
        ),
        (
            "full_pipeline",
            Query::new()
                .filter(Predicate::range("price", 50.0, 800.0).and(Predicate::cmp(
                    "qty",
                    CmpOp::Ge,
                    2.0,
                )))
                .group("product")
                .agg(AggFunc::Sum, "price")
                .agg(AggFunc::Avg, "qty")
                .order("sum(price)", SortOrder::Desc)
                .take(7),
        ),
        (
            "compound_predicate",
            Query::new().filter(
                Predicate::eq("region", "region0")
                    .or(Predicate::range("price", 0.0, 120.0))
                    .and(Predicate::cmp("qty", CmpOp::Lt, 8.0).not()),
            ),
        ),
        (
            "empty_result_filter",
            Query::new()
                .filter(Predicate::cmp("price", CmpOp::Lt, -1.0))
                .group("region")
                .agg(AggFunc::Sum, "price"),
        ),
        (
            "string_predicate_scan",
            Query::new()
                .filter(Predicate::eq("channel", "channel0"))
                .select(&["channel", "qty"]),
        ),
    ]
}

/// An engine with the probe table and the given policies.
fn engine(table: &Table, policy: ExecPolicy, cache_on: bool) -> ExploreDb {
    let db = ExploreDb::with_exec_policy(policy);
    if cache_on {
        db.set_cache_policy(CachePolicy::on());
    }
    db.register("sales", table.clone());
    db
}

/// Every query shape × Serial/Parallel × cache off/warm: the session
/// facade answers bit-identically to a direct engine, on both the cold
/// and the warm (second) pass.
#[test]
fn session_facade_is_bitwise_identical_to_direct_engine() {
    let table = serve_table();
    let shapes = query_shapes();
    for policy in [ExecPolicy::Serial, ExecPolicy::Parallel { workers: 4 }] {
        for cache_on in [false, true] {
            let direct = engine(&table, policy, cache_on);
            let serve = ServeEngine::with_config(
                engine(&table, policy, cache_on),
                ServeConfig::with_workers(2),
            );
            for (name, query) in &shapes {
                let context = format!("{name} policy={policy:?} cache={cache_on}");
                let truth_cold = direct.query("sales", query).unwrap();
                let truth_warm = direct.query("sales", query).unwrap();
                let session = serve.session();
                let got_cold = session.query("sales", query).unwrap();
                let got_warm = session.query("sales", query).unwrap();
                assert_bitwise_eq(&truth_cold, &got_cold, &format!("{context} (cold)"));
                assert_bitwise_eq(&truth_warm, &got_warm, &format!("{context} (warm)"));
            }
        }
    }
}

/// The scale proof: 1200 concurrent sessions — 300× the worker count —
/// all submit before any result is consumed, and every answer is
/// bit-identical to the direct engine's truth for its shape. No
/// rejection (the queue is sized for the burst), no starvation (every
/// ticket completes), no corruption.
#[test]
fn thousand_plus_sessions_complete_on_four_workers_bit_identical() {
    const SESSIONS: usize = 1200;
    let table = sales_table(&SalesConfig {
        rows: 5_000,
        ..SalesConfig::default()
    });
    let shapes = query_shapes();
    let truths: Vec<Table> = {
        let db = ExploreDb::with_exec_policy(ExecPolicy::Serial);
        db.register("sales", table.clone());
        shapes
            .iter()
            .map(|(_, q)| db.query("sales", q).unwrap())
            .collect()
    };

    let db = ExploreDb::with_exec_policy(ExecPolicy::Serial);
    db.register("sales", table);
    let serve = ServeEngine::with_config(
        db,
        ServeConfig::with_workers(4).with_queue_limit(2 * SESSIONS),
    );
    let sessions: Vec<_> = (0..SESSIONS).map(|_| serve.session()).collect();
    let tickets: Vec<_> = sessions
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let query = shapes[i % shapes.len()].1.clone();
            s.submit(move |db| db.query("sales", &query))
                .expect("queue sized for the full burst")
        })
        .collect();
    assert!(
        serve.queue_depth() > 0 || !tickets.is_empty(),
        "submission outpaces four workers"
    );
    for (i, ticket) in tickets.iter().enumerate() {
        let got = ticket.wait().unwrap();
        let (name, _) = &shapes[i % shapes.len()];
        assert_bitwise_eq(&truths[i % shapes.len()], &got, name);
    }
}

/// The seeded interactive workload produces the same deterministic
/// report (checksum included) whether interactions run directly
/// against the shared engine or ride the serve scheduler with
/// sessions ≫ workers.
#[test]
fn workload_checksum_unchanged_through_serve_layer() {
    let base = WorkloadConfig {
        sessions: 12,
        interactions: 10,
        rows: 6_000,
        threads: 4,
        ..WorkloadConfig::default()
    };
    let direct = WorkloadRunner::new(base.clone()).unwrap().run().unwrap();
    let served = WorkloadRunner::new(WorkloadConfig {
        mode: DriveMode::Serve {
            workers: 2,
            queue_limit: 256,
        },
        ..base
    })
    .unwrap()
    .run()
    .unwrap();
    assert_eq!(direct.deterministic(), served.deterministic());
    assert_eq!(served.errors, 0);
}

/// The refactor's headline: two serve workers execute independent warm
/// queries with genuinely overlapping service spans — the engine's
/// `&self` query path means workers share it instead of serializing
/// behind a `Mutex<ExploreDb>`.
///
/// Each submitted closure timestamps its service span against a common
/// epoch and, between its query and its return, waits (bounded) until
/// it has seen the *other* closure inside its span too. Under the old
/// one-lock model the first closure would hold the engine for its
/// whole span and the rendezvous could never happen; with the shared
/// engine both workers sit inside their spans simultaneously, and the
/// recorded timestamps prove the overlap. Gated on hosts with ≥ 4
/// cores (like `tests/parallel_speedup.rs`), where the scheduler can
/// genuinely park both workers at once.
#[test]
fn warm_queries_on_two_workers_overlap_their_service_spans() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping span-overlap assertion: only {cores} core(s) available");
        return;
    }

    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let table = serve_table();
    let serve = ServeEngine::with_config(
        engine(&table, ExecPolicy::Serial, true),
        ServeConfig::with_workers(4),
    );
    let query = Query::new()
        .filter(Predicate::range("price", 50.0, 600.0))
        .group("region")
        .agg(AggFunc::Sum, "price");
    // Warm the cache so both service spans are pure read traffic.
    serve.session().query("sales", &query).unwrap();

    let epoch = Instant::now();
    let in_span = Arc::new(AtomicUsize::new(0));
    let spawn = |serve: &ServeEngine| {
        let session = serve.session();
        let query = query.clone();
        let in_span = Arc::clone(&in_span);
        session
            .submit(move |db| {
                let start_ns = epoch.elapsed().as_nanos() as u64;
                db.query("sales", &query)?;
                in_span.fetch_add(1, Ordering::SeqCst);
                // Bounded rendezvous: stay inside the span until the
                // other worker's span is live too (or give up — the
                // timestamps below then fail the test with evidence).
                let deadline = Instant::now() + Duration::from_secs(10);
                while in_span.load(Ordering::SeqCst) < 2 && Instant::now() < deadline {
                    std::thread::yield_now();
                }
                let end_ns = epoch.elapsed().as_nanos() as u64;
                Ok((start_ns, end_ns))
            })
            .unwrap()
    };
    let first = spawn(&serve);
    let second = spawn(&serve);
    let (start_a, end_a) = first.wait().unwrap();
    let (start_b, end_b) = second.wait().unwrap();

    // The service spans must genuinely overlap: each opened before the
    // other closed.
    assert!(
        start_a.max(start_b) < end_a.min(end_b),
        "service spans never overlapped: [{start_a}, {end_a}] vs [{start_b}, {end_b}] ns"
    );
}
