//! SeeDB: deviation-based visualization recommendation
//! (Parameswaran, Polyzotis, Garcia-Molina — PVLDB'14 \[49\]).
//!
//! Given a target subset of the data (the rows the analyst is looking
//! at), SeeDB scores every candidate view — (group-by dimension,
//! measure, aggregate) — by how *differently* the target distributes
//! compared to the reference data, and recommends the top-k most
//! deviating views. The paper's contribution is making this interactive:
//!
//! * **Naive** — two group-by queries per view: O(#views) scans.
//! * **Shared** — one combined scan computes every view's target and
//!   reference distributions simultaneously.
//! * **Pruned** — process the data in phases; after each phase, drop
//!   views whose running utility cannot reach the top-k (confidence
//!   interval separation), saving aggregation work at a small recall
//!   cost.

use std::collections::HashMap;

use explore_exec::QueryCtx;
use explore_storage::rng::SplitMix64;
use explore_storage::{AggFunc, Predicate, Result, StorageError, Table};

/// How often the row loops consult the cancellation tokens: one check
/// per this many rows keeps the disarmed cost negligible while bounding
/// post-cancel work to a fraction of a scan.
const CANCEL_CHECK_ROWS: usize = 4096;

/// One candidate view.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ViewSpec {
    pub dimension: String,
    pub measure: String,
    pub func: AggFunc,
}

impl ViewSpec {
    /// Human-readable label, e.g. `avg(price) by region`.
    pub fn label(&self) -> String {
        format!("{}({}) by {}", self.func, self.measure, self.dimension)
    }
}

/// A scored view.
#[derive(Debug, Clone)]
pub struct ScoredView {
    pub spec: ViewSpec,
    /// KL divergence of the target distribution from the reference.
    pub utility: f64,
}

/// Work accounting for the three strategies.
#[derive(Debug, Default, Clone, Copy)]
pub struct SeedbStats {
    /// Row-aggregation operations performed (rows × views touched).
    pub agg_ops: u64,
    /// Table scans performed.
    pub scans: u64,
    /// Views pruned before completion.
    pub pruned: u64,
}

/// Enumerate all candidate views: every Utf8 column is a dimension,
/// every numeric column a measure, crossed with the given aggregates.
pub fn candidate_views(table: &Table, funcs: &[AggFunc]) -> Vec<ViewSpec> {
    let mut dims = Vec::new();
    let mut measures = Vec::new();
    for f in table.schema().fields() {
        if f.data_type() == explore_storage::DataType::Utf8 {
            dims.push(f.name().to_owned());
        } else {
            measures.push(f.name().to_owned());
        }
    }
    let mut out = Vec::new();
    for d in &dims {
        for m in &measures {
            for &f in funcs {
                out.push(ViewSpec {
                    dimension: d.clone(),
                    measure: m.clone(),
                    func: f,
                });
            }
        }
    }
    out
}

/// KL divergence D(P‖Q) of two distributions given as aligned positive
/// vectors (normalized internally, with epsilon smoothing).
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    const EPS: f64 = 1e-9;
    let sp: f64 = p.iter().map(|x| x.max(0.0) + EPS).sum();
    let sq: f64 = q.iter().map(|x| x.max(0.0) + EPS).sum();
    p.iter()
        .zip(q)
        .map(|(&a, &b)| {
            let pa = (a.max(0.0) + EPS) / sp;
            let qb = (b.max(0.0) + EPS) / sq;
            pa * (pa / qb).ln()
        })
        .sum()
}

/// Internal per-view accumulation: per dimension value, (count, sum)
/// for target and reference rows.
#[derive(Default, Clone, Debug)]
struct ViewAcc {
    groups: HashMap<String, [f64; 4]>, // [t_count, t_sum, r_count, r_sum]
}

impl ViewAcc {
    #[inline]
    fn update(&mut self, group: &str, target: bool, value: f64) {
        let e = self.groups.entry(group.to_owned()).or_default();
        if target {
            e[0] += 1.0;
            e[1] += value;
        } else {
            e[2] += 1.0;
            e[3] += value;
        }
    }

    fn utility(&self, func: AggFunc) -> f64 {
        let mut p = Vec::with_capacity(self.groups.len());
        let mut q = Vec::with_capacity(self.groups.len());
        // Deterministic group order.
        let mut keys: Vec<&String> = self.groups.keys().collect();
        keys.sort_unstable();
        for k in keys {
            let [tc, ts, rc, rs] = self.groups[k];
            let (tv, rv) = match func {
                AggFunc::Count => (tc, rc),
                AggFunc::Sum => (ts, rs),
                AggFunc::Avg => (
                    if tc > 0.0 { ts / tc } else { 0.0 },
                    if rc > 0.0 { rs / rc } else { 0.0 },
                ),
                _ => (0.0, 0.0),
            };
            p.push(tv);
            q.push(rv);
        }
        kl_divergence(&p, &q)
    }
}

/// Context shared by the three strategies.
struct Prepared<'a> {
    dims: Vec<(&'a str, &'a [String])>,
    measures: Vec<(&'a str, Vec<f64>)>,
    mask: Vec<bool>,
}

impl<'a> Prepared<'a> {
    /// The prepared dimension labels for `name`; every view passed to
    /// [`prepare`] has its columns resolved there, so a miss is an
    /// internal invariant violation, not a user error.
    fn dim(&self, name: &str) -> Result<&'a [String]> {
        self.dims
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .ok_or_else(|| StorageError::Internal(format!("prepared dims lost column {name}")))
    }

    /// The prepared measure values for `name`; see [`Prepared::dim`].
    fn measure(&self, name: &str) -> Result<&[f64]> {
        self.measures
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_slice())
            .ok_or_else(|| StorageError::Internal(format!("prepared measures lost column {name}")))
    }
}

fn prepare<'a>(
    table: &'a Table,
    target: &Predicate,
    views: &'a [ViewSpec],
) -> Result<Prepared<'a>> {
    let mut dims = Vec::new();
    let mut measures: Vec<(&str, Vec<f64>)> = Vec::new();
    for v in views {
        if !dims.iter().any(|(n, _)| *n == v.dimension.as_str()) {
            let col = table.column(&v.dimension)?;
            let vals = col.as_utf8().ok_or_else(|| StorageError::TypeMismatch {
                column: v.dimension.clone(),
                expected: "Utf8",
                found: col.data_type().name(),
            })?;
            dims.push((v.dimension.as_str(), vals));
        }
        if !measures.iter().any(|(n, _)| *n == v.measure.as_str()) {
            let col = table.column(&v.measure)?;
            let vals: Vec<f64> = (0..table.num_rows())
                .map(|i| {
                    col.numeric_at(i).ok_or_else(|| StorageError::TypeMismatch {
                        column: v.measure.clone(),
                        expected: "numeric",
                        found: col.data_type().name(),
                    })
                })
                .collect::<Result<_>>()?;
            measures.push((v.measure.as_str(), vals));
        }
    }
    Ok(Prepared {
        dims,
        measures,
        mask: target.evaluate_mask(table)?,
    })
}

/// Naive strategy: one separate pass over the data per view. The
/// context's cancellation tokens are checked before each view's scan and
/// every `CANCEL_CHECK_ROWS` rows within it.
pub fn recommend_naive(
    table: &Table,
    target: &Predicate,
    views: &[ViewSpec],
    k: usize,
    stats: &mut SeedbStats,
    ctx: &QueryCtx,
) -> Result<Vec<ScoredView>> {
    let prep = prepare(table, target, views)?;
    let mut scored = Vec::with_capacity(views.len());
    for v in views {
        ctx.check_cancel()?;
        let dim = prep.dim(&v.dimension)?;
        let meas = prep.measure(&v.measure)?;
        let mut acc = ViewAcc::default();
        for row in 0..table.num_rows() {
            if row % CANCEL_CHECK_ROWS == 0 {
                ctx.check_cancel()?;
            }
            acc.update(&dim[row], prep.mask[row], meas[row]);
            stats.agg_ops += 1;
        }
        stats.scans += 1;
        scored.push(ScoredView {
            spec: v.clone(),
            utility: acc.utility(v.func),
        });
    }
    scored.sort_by(|a, b| b.utility.total_cmp(&a.utility));
    scored.truncate(k);
    Ok(scored)
}

/// Shared-scan strategy: one pass computes every view. Cancellation is
/// checked every `CANCEL_CHECK_ROWS` rows of the combined scan.
pub fn recommend_shared(
    table: &Table,
    target: &Predicate,
    views: &[ViewSpec],
    k: usize,
    stats: &mut SeedbStats,
    ctx: &QueryCtx,
) -> Result<Vec<ScoredView>> {
    let prep = prepare(table, target, views)?;
    // One accumulator per (dimension, measure) pair; aggregates share
    // it. Column lookups are hoisted out of the row loop.
    type PairAcc<'a> = (&'a str, &'a str, &'a [String], &'a [f64], ViewAcc);
    let mut pair_accs: Vec<PairAcc> = Vec::new();
    for v in views {
        let (d, m) = (v.dimension.as_str(), v.measure.as_str());
        if !pair_accs.iter().any(|&(pd, pm, ..)| pd == d && pm == m) {
            pair_accs.push((d, m, prep.dim(d)?, prep.measure(m)?, ViewAcc::default()));
        }
    }
    for row in 0..table.num_rows() {
        if row % CANCEL_CHECK_ROWS == 0 {
            ctx.check_cancel()?;
        }
        for (_, _, dim, meas, acc) in pair_accs.iter_mut() {
            acc.update(&dim[row], prep.mask[row], meas[row]);
            stats.agg_ops += 1;
        }
    }
    stats.scans += 1;
    let acc_for = |d: &str, m: &str| -> Result<&ViewAcc> {
        pair_accs
            .iter()
            .find(|&&(pd, pm, ..)| pd == d && pm == m)
            .map(|(.., acc)| acc)
            .ok_or_else(|| StorageError::Internal(format!("shared scan lost pair ({d}, {m})")))
    };
    let mut scored = Vec::with_capacity(views.len());
    for v in views {
        scored.push(ScoredView {
            spec: v.clone(),
            utility: acc_for(v.dimension.as_str(), v.measure.as_str())?.utility(v.func),
        });
    }
    scored.sort_by(|a, b| b.utility.total_cmp(&a.utility));
    scored.truncate(k);
    Ok(scored)
}

/// Shared + pruned strategy: the data is processed in `phases` shuffled
/// slices; after each phase, views whose running utility plus a shrinking
/// margin falls below the k-th best minus the margin are dropped.
#[allow(clippy::too_many_arguments)]
pub fn recommend_pruned(
    table: &Table,
    target: &Predicate,
    views: &[ViewSpec],
    k: usize,
    phases: usize,
    seed: u64,
    stats: &mut SeedbStats,
    ctx: &QueryCtx,
) -> Result<Vec<ScoredView>> {
    let phases = phases.max(1);
    let prep = prepare(table, target, views)?;
    let n = table.num_rows();
    let mut order: Vec<u32> = (0..n as u32).collect();
    SplitMix64::new(seed).shuffle(&mut order);

    // Resolve every view's columns once, up front.
    let cols: Vec<(&[String], &[f64])> = views
        .iter()
        .map(|v| Ok((prep.dim(&v.dimension)?, prep.measure(&v.measure)?)))
        .collect::<Result<_>>()?;
    let mut alive: Vec<usize> = (0..views.len()).collect();
    let mut accs: Vec<ViewAcc> = vec![ViewAcc::default(); views.len()];
    let phase_len = n.div_ceil(phases);
    for phase in 0..phases {
        let slice = &order[phase * phase_len..((phase + 1) * phase_len).min(n)];
        for (i, &row) in slice.iter().enumerate() {
            if i % CANCEL_CHECK_ROWS == 0 {
                ctx.check_cancel()?;
            }
            let row = row as usize;
            for &vi in &alive {
                let (dim, meas) = cols[vi];
                accs[vi].update(&dim[row], prep.mask[row], meas[row]);
                stats.agg_ops += 1;
            }
        }
        stats.scans += 1; // one slice pass
        if phase + 1 == phases || alive.len() <= k {
            continue;
        }
        // Prune with a margin that shrinks as more data is seen (a
        // Hoeffding-style 1/√seen envelope on the KL estimate).
        let seen = ((phase + 1) * phase_len).min(n) as f64;
        let margin = 2.0 / seen.sqrt() * 10.0;
        let mut utilities: Vec<(usize, f64)> = alive
            .iter()
            .map(|&vi| (vi, accs[vi].utility(views[vi].func)))
            .collect();
        utilities.sort_by(|a, b| b.1.total_cmp(&a.1));
        let kth = utilities[k.min(utilities.len()) - 1].1;
        let before = alive.len();
        alive = utilities
            .iter()
            .filter(|&&(_, u)| u + margin >= kth - margin)
            .map(|&(vi, _)| vi)
            .collect();
        stats.pruned += (before - alive.len()) as u64;
    }
    let mut scored: Vec<ScoredView> = alive
        .into_iter()
        .map(|vi| ScoredView {
            spec: views[vi].clone(),
            utility: accs[vi].utility(views[vi].func),
        })
        .collect();
    scored.sort_by(|a, b| b.utility.total_cmp(&a.utility));
    scored.truncate(k);
    Ok(scored)
}

/// Fraction of `reference` specs present in `got` (top-k recall).
pub fn recall(got: &[ScoredView], reference: &[ScoredView]) -> f64 {
    if reference.is_empty() {
        return 1.0;
    }
    let hits = reference
        .iter()
        .filter(|r| got.iter().any(|g| g.spec == r.spec))
        .count();
    hits as f64 / reference.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore_storage::gen::{sales_table, SalesConfig};

    fn setup() -> (Table, Predicate, Vec<ViewSpec>) {
        let t = sales_table(&SalesConfig {
            rows: 20_000,
            ..SalesConfig::default()
        });
        // Target: one product. Its price distribution by region/channel
        // deviates strongly (prices are product-driven in the generator).
        let target = Predicate::eq("product", "product0");
        let views = candidate_views(&t, &[AggFunc::Count, AggFunc::Sum, AggFunc::Avg]);
        (t, target, views)
    }

    #[test]
    fn candidate_enumeration_covers_cross_product() {
        let (t, _, views) = setup();
        // 3 dims × 3 measures × 3 funcs = 27.
        assert_eq!(views.len(), 27);
        assert!(views.iter().any(|v| v.label() == "avg(price) by region"));
        let _ = t;
    }

    #[test]
    fn kl_properties() {
        let p = [0.5, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-9);
        let q = [0.9, 0.1];
        assert!(kl_divergence(&p, &q) > 0.0);
        // Asymmetry is expected.
        assert!((kl_divergence(&p, &q) - kl_divergence(&q, &p)).abs() > 1e-6);
    }

    #[test]
    fn naive_and_shared_agree_exactly() {
        let (t, target, views) = setup();
        let mut s1 = SeedbStats::default();
        let mut s2 = SeedbStats::default();
        let a = recommend_naive(&t, &target, &views, 5, &mut s1, &QueryCtx::none()).unwrap();
        let b = recommend_shared(&t, &target, &views, 5, &mut s2, &QueryCtx::none()).unwrap();
        assert_eq!(recall(&b, &a), 1.0);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.utility - y.utility).abs() < 1e-9);
        }
    }

    #[test]
    fn shared_does_less_aggregation_work() {
        let (t, target, views) = setup();
        let mut naive = SeedbStats::default();
        let mut shared = SeedbStats::default();
        recommend_naive(&t, &target, &views, 5, &mut naive, &QueryCtx::none()).unwrap();
        recommend_shared(&t, &target, &views, 5, &mut shared, &QueryCtx::none()).unwrap();
        // Shared: one op per (dim, measure) pair per row = 9/row;
        // naive: one per view per row = 27/row.
        assert!(shared.agg_ops * 2 < naive.agg_ops);
        assert_eq!(shared.scans, 1);
        assert_eq!(naive.scans, 27);
    }

    #[test]
    fn pruning_saves_work_with_high_recall() {
        let (t, target, views) = setup();
        let mut exact_stats = SeedbStats::default();
        let exact =
            recommend_shared(&t, &target, &views, 5, &mut exact_stats, &QueryCtx::none()).unwrap();
        let mut pruned_stats = SeedbStats::default();
        let pruned = recommend_pruned(
            &t,
            &target,
            &views,
            5,
            10,
            7,
            &mut pruned_stats,
            &QueryCtx::none(),
        )
        .unwrap();
        assert!(
            pruned_stats.agg_ops < exact_stats.agg_ops,
            "pruned {} vs exact {}",
            pruned_stats.agg_ops,
            exact_stats.agg_ops
        );
        assert!(pruned_stats.pruned > 0);
        let r = recall(&pruned, &exact);
        assert!(r >= 0.6, "recall {r}");
    }

    #[test]
    fn top_view_is_genuinely_deviating() {
        let (t, target, views) = setup();
        let mut stats = SeedbStats::default();
        let top = recommend_shared(&t, &target, &views, 27, &mut stats, &QueryCtx::none()).unwrap();
        // Utilities are sorted and positive somewhere.
        assert!(top.windows(2).all(|w| w[0].utility >= w[1].utility));
        assert!(top[0].utility > top[top.len() - 1].utility);
    }

    #[test]
    fn single_phase_pruned_equals_shared() {
        let (t, target, views) = setup();
        let mut a = SeedbStats::default();
        let mut b = SeedbStats::default();
        let shared = recommend_shared(&t, &target, &views, 5, &mut a, &QueryCtx::none()).unwrap();
        let pruned =
            recommend_pruned(&t, &target, &views, 5, 1, 3, &mut b, &QueryCtx::none()).unwrap();
        assert_eq!(recall(&pruned, &shared), 1.0);
        assert_eq!(b.pruned, 0);
    }

    #[test]
    fn numeric_dimension_is_rejected() {
        let (t, target, _) = setup();
        let bad = vec![ViewSpec {
            dimension: "price".into(),
            measure: "qty".into(),
            func: AggFunc::Avg,
        }];
        let mut stats = SeedbStats::default();
        assert!(recommend_shared(&t, &target, &bad, 1, &mut stats, &QueryCtx::none()).is_err());
    }
}
