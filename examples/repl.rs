//! An interactive exploration shell over the declarative exploration
//! language — the paper's §2.4 "declarative exploration languages" open
//! problem, as a usable artifact.
//!
//! ```bash
//! cargo run --release --example repl            # scripted demo session
//! cargo run --release --example repl -- -i      # interactive (stdin)
//! ```

use std::io::{BufRead, Write};
use std::time::Duration;

use exploration::storage::gen::{sales_table, sky_table, SalesConfig};
use exploration::{ExplorationSession, ExploreDb, SessionCtx};

fn main() {
    let db = ExploreDb::new();
    db.register(
        "sales",
        sales_table(&SalesConfig {
            rows: 100_000,
            ..SalesConfig::default()
        }),
    );
    db.register("sky", sky_table(100_000, 4, 1000.0, 11));
    let mut session = ExplorationSession::with_db(db);
    // Every statement runs under a session-scoped budget: the deadline
    // is an overlay on the statement, not engine-global state, so a
    // runaway statement is cut without affecting anything else using
    // the engine.
    let budget = SessionCtx::default().with_deadline(Some(Duration::from_secs(10)));

    let interactive = std::env::args().any(|a| a == "-i" || a == "--interactive");
    if interactive {
        println!("exploration shell — statements end with ';', Ctrl-D to exit");
        println!("tables: sales, sky\n");
        let stdin = std::io::stdin();
        let mut buffer = String::new();
        loop {
            print!("explore> ");
            std::io::stdout().flush().expect("flush");
            buffer.clear();
            match stdin.lock().read_line(&mut buffer) {
                Ok(0) => break,
                Ok(_) => {
                    let line = buffer.trim();
                    if line.is_empty() {
                        continue;
                    }
                    if line.eq_ignore_ascii_case("quit") || line.eq_ignore_ascii_case("exit") {
                        break;
                    }
                    match session.execute_with(&budget, line) {
                        Ok(outcome) => println!("{outcome}"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                Err(e) => {
                    eprintln!("read error: {e}");
                    break;
                }
            }
        }
        return;
    }

    // Scripted demo: the same statements a user would type.
    let script = [
        "USE sales;",
        "SELECT avg(price), count(qty) WHERE region = \"region0\" GROUP BY product TOP 5;",
        "SAMPLES 0.01, 0.1 STRATIFY region CAP 200;",
        "APPROX avg(price) WHERE qty >= 3 WITHIN 2% CONFIDENCE 95;",
        "CRACK qty BETWEEN 3 AND 7;",
        "CRACK qty BETWEEN 3 AND 7;",
        "RECOMMEND VIEWS FOR product = \"product0\" TOP 3;",
        "FACETS FOR channel = \"channel0\" SUPPORT 20 TOP 4;",
        "DIVERSIFY price BY price, discount, qty TOP 8 LAMBDA 0.4;",
        "CHARTS TOP 4;",
        "SYNOPSES BUCKETS 64;",
        "ESTIMATE COUNT WHERE price BETWEEN 50 AND 250;",
        "ESTIMATE DISTINCT product;",
        "SEGMENT price BY discount INTO 3;",
        "USE sky;",
        "SELECT count(mag) WHERE x BETWEEN 100 AND 200 AND y BETWEEN 100 AND 200;",
    ];
    for stmt in script {
        println!("explore> {stmt}");
        match session.execute_with(&budget, stmt) {
            Ok(outcome) => println!("{outcome}\n"),
            Err(e) => println!("error: {e}\n"),
        }
    }
}
