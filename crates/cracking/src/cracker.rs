//! The core cracker column: physically self-organizing storage.
//!
//! Database cracking (Idreos, Kersten, Manegold — CIDR'07) turns each
//! range query into an incremental partitioning step: the first query over
//! a column pays roughly a scan, and every subsequent query refines the
//! physical order further, so the column converges towards a fully indexed
//! state exactly along the value ranges users explore.
//!
//! Representation: a copy of the base column's values plus an aligned
//! vector of original row ids (the "cracker column"), and a *cracker
//! index* mapping boundary values to positions. An index entry `(v, p)`
//! means: every position `< p` holds a value `< v`, and every position
//! `>= p` holds a value `>= v`.

use std::collections::BTreeMap;
use std::ops::Bound::{Excluded, Unbounded};

use explore_fault::CancelToken;
use explore_storage::Result;

/// Counters describing the physical work a cracker has performed.
/// Used by tests (to assert convergence) and by the benchmark harness
/// (to report work per query alongside wall time).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CrackStats {
    /// Number of crack (partition) operations performed.
    pub cracks: u64,
    /// Total elements visited by partition loops.
    pub touched: u64,
    /// Total element swaps performed.
    pub swaps: u64,
}

/// A self-organizing integer column.
#[derive(Debug, Clone)]
pub struct CrackerColumn {
    values: Vec<i64>,
    /// Original row id of each value, permuted in lockstep with `values`.
    ids: Vec<u32>,
    /// Boundary value → first position holding a value `>= boundary`.
    index: BTreeMap<i64, usize>,
    stats: CrackStats,
}

impl CrackerColumn {
    /// Build a cracker column over a base column. The input order is
    /// preserved until the first query cracks it.
    pub fn new(values: Vec<i64>) -> Self {
        assert!(
            values.len() <= u32::MAX as usize,
            "cracker columns are limited to u32 row ids"
        );
        let ids = (0..values.len() as u32).collect();
        CrackerColumn {
            values,
            ids,
            index: BTreeMap::new(),
            stats: CrackStats::default(),
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The (physically reordered) values.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// The row-id permutation aligned with [`values`](Self::values).
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> CrackStats {
        self.stats
    }

    /// Number of pieces the column is currently cracked into.
    pub fn num_pieces(&self) -> usize {
        // k boundaries cut the array into at most k+1 pieces; boundaries
        // at position 0 or len don't create new pieces but counting them
        // uniformly keeps the metric monotone, which is all tests need.
        self.index.len() + 1
    }

    /// Answer the half-open range query `low <= v < high`, cracking as
    /// needed. Returns the contiguous position range `[start, end)` in
    /// the cracker column holding the qualifying values.
    ///
    /// Infallible convenience over [`query_bounds`](Self::query_bounds)
    /// with no cancellation.
    pub fn query(&mut self, low: i64, high: i64) -> (usize, usize) {
        // With no token, no check can fail.
        self.query_bounds(low, high, None).unwrap_or_default()
    }

    /// The single range-query implementation: answer `low <= v < high`,
    /// cracking as needed, under an optional cooperative cancellation
    /// token. The token is checked before each crack (partition) step,
    /// so a cancelled query aborts between reorganization steps, never
    /// inside one. Because every crack op runs to completion before the
    /// next check, the cracker index is well-formed after a `Cancelled`/
    /// `DeadlineExceeded` error — any boundary the aborted query already
    /// registered is valid and benefits later queries. With `None` the
    /// checks cost one `Option` branch each.
    pub fn query_bounds(
        &mut self,
        low: i64,
        high: i64,
        cancel: Option<&CancelToken>,
    ) -> Result<(usize, usize)> {
        if low >= high || self.values.is_empty() {
            return Ok((0, 0));
        }
        if let Some(c) = cancel {
            c.check()?;
        }
        // If both bounds are new and land in the same piece, a single
        // three-way pass is cheaper than two two-way passes.
        if !self.index.contains_key(&low) && !self.index.contains_key(&high) {
            let (s1, e1) = self.piece_for(low);
            let (s2, e2) = self.piece_for(high);
            if (s1, e1) == (s2, e2) {
                let (p_lo, p_hi) = self.crack_in_three(s1, e1, low, high);
                self.index.insert(low, p_lo);
                self.index.insert(high, p_hi);
                return Ok((p_lo, p_hi));
            }
        }
        let p_lo = self.bound_position(low);
        // Mid-reorg cancellation point: the low boundary's crack has
        // fully completed (and stays useful); the high bound's crack
        // simply never starts.
        if let Some(c) = cancel {
            c.check()?;
        }
        let p_hi = self.bound_position(high);
        debug_assert!(p_lo <= p_hi);
        Ok((p_lo, p_hi))
    }

    /// Like [`query`](Self::query) but returns the base-table row ids of
    /// qualifying values (order unspecified).
    pub fn query_ids(&mut self, low: i64, high: i64) -> &[u32] {
        let (start, end) = self.query(low, high);
        &self.ids[start..end]
    }

    /// Count qualifying values without materializing ids.
    pub fn query_count(&mut self, low: i64, high: i64) -> usize {
        let (start, end) = self.query(low, high);
        end - start
    }

    /// The first position whose value is `>= bound`, cracking the piece
    /// containing `bound` if the boundary is not yet known.
    pub fn bound_position(&mut self, bound: i64) -> usize {
        if let Some(&p) = self.index.get(&bound) {
            return p;
        }
        let (start, end) = self.piece_for(bound);
        let p = self.crack_in_two(start, end, bound);
        self.index.insert(bound, p);
        p
    }

    /// Crack positions `[start, end)` around `pivot`: values `< pivot`
    /// move before the returned split, values `>= pivot` after.
    fn crack_in_two(&mut self, start: usize, end: usize, pivot: i64) -> usize {
        let mut lo = start;
        let mut hi = end;
        while lo < hi {
            if self.values[lo] < pivot {
                lo += 1;
            } else {
                hi -= 1;
                self.values.swap(lo, hi);
                self.ids.swap(lo, hi);
                self.stats.swaps += 1;
            }
        }
        self.stats.cracks += 1;
        self.stats.touched += (end - start) as u64;
        lo
    }

    /// Dutch-flag partition of `[start, end)` into `< a`, `[a, b)`, `>= b`.
    /// Returns the two split positions.
    fn crack_in_three(&mut self, start: usize, end: usize, a: i64, b: i64) -> (usize, usize) {
        debug_assert!(a < b);
        let mut lo = start;
        let mut mid = start;
        let mut hi = end;
        while mid < hi {
            let v = self.values[mid];
            if v < a {
                self.values.swap(mid, lo);
                self.ids.swap(mid, lo);
                self.stats.swaps += 1;
                lo += 1;
                mid += 1;
            } else if v >= b {
                hi -= 1;
                self.values.swap(mid, hi);
                self.ids.swap(mid, hi);
                self.stats.swaps += 1;
            } else {
                mid += 1;
            }
        }
        self.stats.cracks += 1;
        self.stats.touched += (end - start) as u64;
        (lo, mid)
    }

    /// Read-only probe: the position range for `[low, high)` if both
    /// boundaries are already known, without cracking. The concurrent
    /// cracker uses this to answer under a shared lock when possible.
    pub fn lookup(&self, low: i64, high: i64) -> Option<(usize, usize)> {
        if low >= high {
            return Some((0, 0));
        }
        let p_lo = self.lookup_bound(low)?;
        let p_hi = self.lookup_bound(high)?;
        Some((p_lo, p_hi))
    }

    /// Read-only probe for a single bound, succeeding when the boundary is
    /// registered or falls outside the stored value range.
    fn lookup_bound(&self, bound: i64) -> Option<usize> {
        if let Some(&p) = self.index.get(&bound) {
            return Some(p);
        }
        let (start, end) = self.piece_for(bound);
        // A zero-width piece pins the position without any data to crack.
        (start == end).then_some(start)
    }

    /// The value interval `[low, high)` covered by the piece containing
    /// `value`, as far as the index knows: `None` means unbounded on that
    /// side (no boundary yet). Stochastic cracking's DDC variant cracks at
    /// the center of this interval.
    pub fn piece_value_bounds(&self, value: i64) -> (Option<i64>, Option<i64>) {
        let low = self.index.range(..=value).next_back().map(|(&v, _)| v);
        let high = self
            .index
            .range((Excluded(value), Unbounded))
            .next()
            .map(|(&v, _)| v);
        (low, high)
    }

    /// The piece `[start, end)` that would contain `value`, according to
    /// the current cracker index.
    pub fn piece_for(&self, value: i64) -> (usize, usize) {
        let start = self
            .index
            .range(..=value)
            .next_back()
            .map_or(0, |(_, &p)| p);
        let end = self
            .index
            .range((Excluded(value), Unbounded))
            .next()
            .map_or(self.values.len(), |(_, &p)| p);
        (start, end)
    }

    /// Sizes of all current pieces (for tests and the ablation bench).
    pub fn piece_sizes(&self) -> Vec<usize> {
        let mut cuts: Vec<usize> = self.index.values().copied().collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut out = Vec::with_capacity(cuts.len() + 1);
        let mut prev = 0;
        for c in cuts {
            out.push(c - prev);
            prev = c;
        }
        out.push(self.values.len() - prev);
        out
    }

    /// Size of the largest unindexed piece — the convergence metric used
    /// by the stochastic-cracking experiments.
    pub fn max_piece(&self) -> usize {
        self.piece_sizes().into_iter().max().unwrap_or(0)
    }

    /// Branch-free (predicated) variant of crack-in-two over an explicit
    /// piece — the kernel question of "Database cracking: fancy scan,
    /// not poor man's sort!" (Pirk et al., DaMoN'14 \[50\]): on modern
    /// CPUs, replacing the partition loop's data-dependent branch with
    /// predicated stores can beat the classic Hoare-style loop because
    /// the branch predictor cannot learn a 50/50 pivot comparison.
    /// Exposed for the `ablation_predication` bench; semantics are
    /// identical to the branchy kernel (verified by tests).
    ///
    /// Does **not** register a boundary: callers must only partition
    /// within a single existing piece (as
    /// [`bound_position`](Self::bound_position) does) or on a fresh
    /// column, otherwise the cracker-index invariant breaks.
    pub fn crack_in_two_predicated(&mut self, start: usize, end: usize, pivot: i64) -> usize {
        // Out-of-place predicated partition into a scratch buffer:
        // write each element to either the advancing low cursor or the
        // retreating high cursor, selected without a branch.
        let len = end - start;
        let mut scratch_v = vec![0i64; len];
        let mut scratch_i = vec![0u32; len];
        let mut lo = 0usize;
        let mut hi = len;
        for k in start..end {
            let v = self.values[k];
            let id = self.ids[k];
            let is_low = (v < pivot) as usize;
            // Predicated cursor select: write to lo when below the
            // pivot, to hi-1 otherwise, then advance the chosen cursor.
            let dst = if is_low == 1 { lo } else { hi - 1 };
            scratch_v[dst] = v;
            scratch_i[dst] = id;
            lo += is_low;
            hi -= 1 - is_low;
        }
        self.values[start..end].copy_from_slice(&scratch_v);
        self.ids[start..end].copy_from_slice(&scratch_i);
        self.stats.cracks += 1;
        self.stats.touched += len as u64;
        start + lo
    }

    /// Crack an explicit piece around a pivot, recording the boundary.
    /// Exposed for the stochastic cracking strategies, which introduce
    /// extra data-driven pivots beyond the query bounds.
    pub fn crack_at(&mut self, pivot: i64) {
        if self.index.contains_key(&pivot) {
            return;
        }
        let (start, end) = self.piece_for(pivot);
        let p = self.crack_in_two(start, end, pivot);
        self.index.insert(pivot, p);
    }

    /// Boundaries with value strictly above `value`, ascending.
    /// Used by the ripple-insert machinery in [`crate::updates`].
    pub(crate) fn boundaries_above(&self, value: i64) -> Vec<(i64, usize)> {
        self.index
            .range((Excluded(value), Unbounded))
            .map(|(&v, &p)| (v, p))
            .collect()
    }

    /// Append a (value, id) pair at the end without touching the index.
    /// Callers must restore the invariant (ripple insert does).
    pub(crate) fn push_raw(&mut self, value: i64, id: u32) {
        self.values.push(value);
        self.ids.push(id);
    }

    /// Swap two physical slots.
    pub(crate) fn swap_raw(&mut self, a: usize, b: usize) {
        self.values.swap(a, b);
        self.ids.swap(a, b);
    }

    /// Overwrite one physical slot.
    pub(crate) fn place_raw(&mut self, pos: usize, value: i64, id: u32) {
        self.values[pos] = value;
        self.ids[pos] = id;
    }

    /// Move an existing boundary to a new position (ripple bookkeeping).
    pub(crate) fn shift_boundary(&mut self, boundary_value: i64, new_pos: usize) {
        if let Some(p) = self.index.get_mut(&boundary_value) {
            *p = new_pos;
        }
    }

    /// Verify the cracker invariant: for every index entry `(v, p)`,
    /// all values before `p` are `< v` and all from `p` on are `>= v`.
    /// O(k·n); test-only.
    pub fn check_invariants(&self) -> bool {
        for (&v, &p) in &self.index {
            if self.values[..p].iter().any(|&x| x >= v) {
                return false;
            }
            if self.values[p..].iter().any(|&x| x < v) {
                return false;
            }
        }
        // ids must remain a permutation tracking values: verified by
        // checking a few random positions against nothing here (requires
        // the base column); full check lives in tests.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore_storage::gen::uniform_i64;
    use explore_storage::rng::SplitMix64;

    fn brute(base: &[i64], low: i64, high: i64) -> Vec<u32> {
        base.iter()
            .enumerate()
            .filter(|(_, &v)| v >= low && v < high)
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn first_query_matches_scan_semantics() {
        let base = uniform_i64(10_000, 0, 1000, 1);
        let mut c = CrackerColumn::new(base.clone());
        let mut got: Vec<u32> = c.query_ids(100, 200).to_vec();
        got.sort_unstable();
        assert_eq!(got, brute(&base, 100, 200));
        assert!(c.check_invariants());
    }

    #[test]
    fn many_random_queries_stay_correct() {
        let base = uniform_i64(5000, 0, 500, 2);
        let mut c = CrackerColumn::new(base.clone());
        let mut rng = SplitMix64::new(3);
        for _ in 0..200 {
            let a = rng.range_i64(0, 500);
            let b = rng.range_i64(0, 500);
            let (low, high) = (a.min(b), a.max(b) + 1);
            let mut got: Vec<u32> = c.query_ids(low, high).to_vec();
            got.sort_unstable();
            assert_eq!(got, brute(&base, low, high));
        }
        assert!(c.check_invariants());
    }

    #[test]
    fn ids_stay_aligned_with_values() {
        let base = uniform_i64(2000, 0, 100, 4);
        let mut c = CrackerColumn::new(base.clone());
        c.query(10, 30);
        c.query(50, 90);
        c.query(5, 95);
        for (pos, &id) in c.ids().iter().enumerate() {
            assert_eq!(c.values()[pos], base[id as usize]);
        }
    }

    #[test]
    fn empty_and_degenerate_ranges() {
        let mut c = CrackerColumn::new(vec![]);
        assert_eq!(c.query(0, 10), (0, 0));
        let mut c = CrackerColumn::new(vec![5, 5, 5]);
        assert_eq!(c.query_count(5, 6), 3);
        assert_eq!(c.query_count(6, 5), 0); // low >= high
        assert_eq!(c.query_count(0, 5), 0);
        assert_eq!(c.query_count(6, 100), 0);
    }

    #[test]
    fn bounds_outside_domain() {
        let base = uniform_i64(1000, 0, 100, 5);
        let mut c = CrackerColumn::new(base.clone());
        assert_eq!(c.query_count(i64::MIN, i64::MAX), 1000);
        assert_eq!(c.query_count(-50, 0), 0);
        assert_eq!(c.query_count(100, 200), 0);
    }

    #[test]
    fn repeated_query_does_no_new_work() {
        let base = uniform_i64(10_000, 0, 1000, 6);
        let mut c = CrackerColumn::new(base);
        c.query(100, 200);
        let after_first = c.stats();
        c.query(100, 200);
        assert_eq!(c.stats().cracks, after_first.cracks);
        assert_eq!(c.stats().touched, after_first.touched);
    }

    #[test]
    fn work_per_query_decreases() {
        let base = uniform_i64(100_000, 0, 100_000, 7);
        let mut c = CrackerColumn::new(base);
        let mut rng = SplitMix64::new(8);
        let mut touched = Vec::new();
        let mut prev = 0;
        for _ in 0..100 {
            let a = rng.range_i64(0, 99_000);
            c.query(a, a + 1000);
            let s = c.stats();
            touched.push(s.touched - prev);
            prev = s.touched;
        }
        let early: u64 = touched[..10].iter().sum();
        let late: u64 = touched[90..].iter().sum();
        assert!(
            late * 5 < early,
            "late work {late} not ≪ early work {early}"
        );
    }

    #[test]
    fn crack_in_three_used_for_fresh_piece() {
        let base = uniform_i64(10_000, 0, 1000, 9);
        let mut c = CrackerColumn::new(base);
        c.query(400, 600);
        // One three-way crack, not two two-way cracks.
        assert_eq!(c.stats().cracks, 1);
        assert_eq!(c.num_pieces(), 3);
    }

    #[test]
    fn crack_at_registers_boundary() {
        let base = uniform_i64(1000, 0, 100, 10);
        let mut c = CrackerColumn::new(base);
        c.crack_at(50);
        assert!(c.check_invariants());
        let pieces = c.piece_sizes();
        assert_eq!(pieces.iter().sum::<usize>(), 1000);
        c.crack_at(50); // idempotent
        assert_eq!(c.stats().cracks, 1);
    }

    #[test]
    fn max_piece_shrinks_with_queries() {
        let base = uniform_i64(50_000, 0, 50_000, 11);
        let mut c = CrackerColumn::new(base);
        let before = c.max_piece();
        let mut rng = SplitMix64::new(12);
        for _ in 0..50 {
            let a = rng.range_i64(0, 49_000);
            c.query(a, a + 500);
        }
        assert!(c.max_piece() < before / 4);
    }
}

#[cfg(test)]
mod predication_tests {
    use super::*;
    use explore_storage::gen::uniform_i64;

    #[test]
    fn predicated_partition_matches_branchy_semantics() {
        let base = uniform_i64(10_000, 0, 1000, 42);
        let mut a = CrackerColumn::new(base.clone());
        let mut b = CrackerColumn::new(base.clone());
        let split_a = {
            // Branchy path via the public bound API.
            a.bound_position(500)
        };
        let split_b = b.crack_in_two_predicated(0, base.len(), 500);
        assert_eq!(split_a, split_b, "same split position");
        // Both sides hold the same multisets.
        let sort = |v: &[i64]| {
            let mut v = v.to_vec();
            v.sort_unstable();
            v
        };
        assert_eq!(sort(&a.values()[..split_a]), sort(&b.values()[..split_b]));
        assert_eq!(sort(&a.values()[split_a..]), sort(&b.values()[split_b..]));
        // Ids stay aligned with values in the predicated kernel too.
        for (pos, &id) in b.ids().iter().enumerate() {
            assert_eq!(b.values()[pos], base[id as usize]);
        }
    }

    #[test]
    fn predicated_partition_edge_pivots() {
        let base = vec![5i64, 1, 9, 5, 3];
        let mut c = CrackerColumn::new(base.clone());
        assert_eq!(c.crack_in_two_predicated(0, 5, i64::MIN), 0);
        let mut c = CrackerColumn::new(base.clone());
        assert_eq!(c.crack_in_two_predicated(0, 5, i64::MAX), 5);
        let mut c = CrackerColumn::new(base);
        let s = c.crack_in_two_predicated(1, 4, 5); // sub-piece [1,4)
        assert!((1..=4).contains(&s));
        assert!(c.values()[1..s].iter().all(|&v| v < 5));
        assert!(c.values()[s..4].iter().all(|&v| v >= 5));
    }
}
