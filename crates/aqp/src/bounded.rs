//! Error- and time-bounded approximate execution (BlinkDB \[6, 7\]).
//!
//! BlinkDB's contract: *"SELECT avg(x) ... ERROR WITHIN 2% AT CONFIDENCE
//! 95%"* or *"... WITHIN 100 ms"*. The runtime walks the sample catalog's
//! ladder from small to large, predicts each sample's error from its size
//! and a pilot variance estimate, and executes on the smallest sample
//! that satisfies the bound — or, for time bounds, the largest sample
//! that fits the latency budget given a calibrated processing rate.

use std::sync::Arc;
use std::time::Instant;

use explore_cache::{predicate_key, Fingerprint, ResultCache};
use explore_exec::{evaluate_selection, QueryCtx};
use explore_obs::MetricsRegistry;
use explore_sampling::{SampleCatalog, UniformSample};
use explore_storage::{
    Accumulator, AggFunc, Column, DataType, Predicate, Result, Schema, StorageError, Table,
};

use crate::ci::{mean_interval, sum_interval, ConfidenceInterval};

/// What the user asked to bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bound {
    /// Maximum relative error (CI half-width / estimate) at the given
    /// confidence, e.g. `RelativeError { target: 0.02, confidence: 0.95 }`.
    RelativeError { target: f64, confidence: f64 },
    /// Maximum rows the execution may touch (the deterministic stand-in
    /// for a wall-clock budget; rows/sec is calibrated by the harness).
    RowBudget { rows: usize },
}

/// The outcome of a bounded approximate aggregate.
#[derive(Debug, Clone)]
pub struct BoundedAnswer {
    /// Estimate with confidence interval (scaled to the base table).
    pub interval: ConfidenceInterval,
    /// Sampling fraction of the sample actually used (1.0 = exact).
    pub fraction_used: f64,
    /// Rows scanned to produce the answer.
    pub rows_scanned: usize,
    /// True when the answer came from the full table.
    pub exact: bool,
}

/// Key the cache under the full request shape so distinct bounds never
/// collide (a looser bound legitimately yields a different answer).
fn answer_key(predicate: &Predicate, func: AggFunc, column: &str, bound: Bound) -> String {
    let b = match bound {
        Bound::RelativeError { target, confidence } => {
            format!("re:{:016x}:{:016x}", target.to_bits(), confidence.to_bits())
        }
        Bound::RowBudget { rows } => format!("rb:{rows}"),
    };
    format!(
        "aqp|p={}|f={func}|c={}:{column}|b={b}",
        predicate_key(predicate),
        column.len()
    )
}

/// Encode a [`BoundedAnswer`] as a one-row table for cache residency.
fn encode_answer(ans: &BoundedAnswer) -> Result<Table> {
    Table::new(
        Schema::of(&[
            ("estimate", DataType::Float64),
            ("half_width", DataType::Float64),
            ("confidence", DataType::Float64),
            ("fraction_used", DataType::Float64),
            ("rows_scanned", DataType::Int64),
            ("exact", DataType::Int64),
        ]),
        vec![
            Column::from(vec![ans.interval.estimate]),
            Column::from(vec![ans.interval.half_width]),
            Column::from(vec![ans.interval.confidence]),
            Column::from(vec![ans.fraction_used]),
            Column::from(vec![ans.rows_scanned as i64]),
            Column::from(vec![i64::from(ans.exact)]),
        ],
    )
    .map_err(|e| StorageError::Internal(format!("static answer schema: {e}")))
}

/// Decode [`encode_answer`]'s shape back; `None` on foreign entries.
fn decode_answer(t: &Table) -> Option<BoundedAnswer> {
    let f = |name: &str| -> Option<f64> { t.column(name).ok()?.as_f64()?.first().copied() };
    let i = |name: &str| -> Option<i64> { t.column(name).ok()?.as_i64()?.first().copied() };
    Some(BoundedAnswer {
        interval: ConfidenceInterval {
            estimate: f("estimate")?,
            half_width: f("half_width")?,
            confidence: f("confidence")?,
        },
        fraction_used: f("fraction_used")?,
        rows_scanned: i("rows_scanned")? as usize,
        exact: i("exact")? != 0,
    })
}

/// Bounded executor over a base table and its sample catalog.
#[derive(Debug)]
pub struct BoundedExecutor<'a> {
    base: &'a Table,
    catalog: &'a SampleCatalog,
    confidence_default: f64,
    /// Optional shared result cache, the base table's registered name,
    /// and the attach-time admission epoch.
    cache: Option<(Arc<ResultCache>, String, u64)>,
    /// Optional observability registry mirroring answer counters.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl<'a> BoundedExecutor<'a> {
    /// Create an executor. `confidence_default` applies to row-budget
    /// queries (error-bounded queries carry their own confidence).
    pub fn new(base: &'a Table, catalog: &'a SampleCatalog) -> Self {
        BoundedExecutor {
            base,
            catalog,
            confidence_default: 0.95,
            cache: None,
            metrics: None,
        }
    }

    /// Memoize answers in the engine's shared result cache. A cached
    /// answer is bit-identical to rerunning against the same sample
    /// catalog; mutations of the base table invalidate it like any other
    /// cached result. `epoch` is `table_name`'s mutation epoch, read by
    /// the caller **before** snapshotting the base table this executor
    /// borrows — admissions use it so a mutation racing the attach
    /// leaves entries refused (dead epoch), never stale (see
    /// `explore_cache::cached_query_at_epoch`).
    pub fn with_cache(mut self, cache: Arc<ResultCache>, table_name: &str, epoch: u64) -> Self {
        self.cache = Some((cache, table_name.to_owned(), epoch));
        self
    }

    /// Mirror answer counters (`aqp.answers`, `aqp.exact_fallbacks`) and
    /// the `aqp.latency_ns` histogram into an observability registry.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Approximate `func(column)` over rows matching `predicate`,
    /// honouring the bound. Falls back to exact execution when no sample
    /// suffices (the BlinkDB semantics).
    ///
    /// The context supplies the execution policy for predicate scans
    /// (sample scans are usually small, but the exact fallback walks the
    /// full base table, where the morsel pool pays off — either policy
    /// yields bit-identical selections), and its cancellation tokens are
    /// checked per ladder rung and per scan morsel, so a deadline stops
    /// the sample-size escalation between rungs.
    pub fn aggregate(
        &self,
        predicate: &Predicate,
        func: AggFunc,
        column: &str,
        bound: Bound,
        ctx: &QueryCtx,
    ) -> Result<BoundedAnswer> {
        let started = self.metrics.as_ref().map(|_| Instant::now());
        let out = self.aggregate_dispatch(predicate, func, column, bound, ctx);
        if let (Some(metrics), Some(started)) = (&self.metrics, started) {
            metrics.inc("aqp.answers", 1);
            metrics.observe_ns("aqp.latency_ns", started.elapsed().as_nanos() as u64);
            if matches!(&out, Ok(ans) if ans.exact) {
                metrics.inc("aqp.exact_fallbacks", 1);
            }
        }
        out
    }

    /// Route through the shared cache when one is wired.
    fn aggregate_dispatch(
        &self,
        predicate: &Predicate,
        func: AggFunc,
        column: &str,
        bound: Bound,
        ctx: &QueryCtx,
    ) -> Result<BoundedAnswer> {
        let Some((cache, table_name, epoch)) = &self.cache else {
            return self.aggregate_uncached(predicate, func, column, bound, ctx);
        };
        let epoch = *epoch;
        let fp = Fingerprint::custom(table_name, answer_key(predicate, func, column, bound));
        if let Some(hit) = cache.get(&fp).and_then(|t| decode_answer(&t)) {
            return Ok(hit);
        }
        cache.note_miss();
        let started = Instant::now();
        let ans = self.aggregate_uncached(predicate, func, column, bound, ctx)?;
        let cost_ns = started.elapsed().as_nanos();
        cache.insert(fp, Arc::new(encode_answer(&ans)?), None, cost_ns, epoch);
        Ok(ans)
    }

    fn aggregate_uncached(
        &self,
        predicate: &Predicate,
        func: AggFunc,
        column: &str,
        bound: Bound,
        ctx: &QueryCtx,
    ) -> Result<BoundedAnswer> {
        match bound {
            Bound::RelativeError { target, confidence } => {
                for (fraction, sample) in self.catalog.uniform_ladder() {
                    ctx.check_cancel()?;
                    let ans = self.run_on_sample(
                        sample, fraction, predicate, func, column, confidence, ctx,
                    )?;
                    if ans.interval.relative_error() <= target {
                        return Ok(ans);
                    }
                }
                self.run_exact(predicate, func, column, ctx)
            }
            Bound::RowBudget { rows } => {
                // Largest sample fitting the budget.
                let ladder = self.catalog.uniform_ladder();
                let pick = ladder
                    .iter()
                    .rev()
                    .find(|(_, s)| s.table().num_rows() <= rows);
                match pick {
                    Some(&(fraction, sample)) => self.run_on_sample(
                        sample,
                        fraction,
                        predicate,
                        func,
                        column,
                        self.confidence_default,
                        ctx,
                    ),
                    None => {
                        if self.base.num_rows() <= rows {
                            self.run_exact(predicate, func, column, ctx)
                        } else {
                            Err(StorageError::InvalidQuery(format!(
                                "no sample fits a budget of {rows} rows"
                            )))
                        }
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_on_sample(
        &self,
        sample: &UniformSample,
        fraction: f64,
        predicate: &Predicate,
        func: AggFunc,
        column: &str,
        confidence: f64,
        ctx: &QueryCtx,
    ) -> Result<BoundedAnswer> {
        let t = sample.table();
        let sel = evaluate_selection(t, predicate, ctx)?;
        let col = t.column(column)?;
        if func != AggFunc::Count && !col.data_type().is_numeric() {
            return Err(StorageError::TypeMismatch {
                column: column.to_owned(),
                expected: "numeric",
                found: col.data_type().name(),
            });
        }
        let mut acc = Accumulator::new();
        let mut masked = Accumulator::new();
        let matches: std::collections::HashSet<u32> = sel.iter().copied().collect();
        for row in 0..t.num_rows() {
            let x = if func == AggFunc::Count {
                1.0
            } else {
                col.numeric_at(row).unwrap_or(0.0)
            };
            if matches.contains(&(row as u32)) {
                acc.update(x);
                masked.update(x);
            } else {
                masked.update(0.0);
            }
        }
        let n_sample = t.num_rows() as u64;
        let total = sample.base_rows() as u64;
        let interval = match func {
            AggFunc::Avg => {
                // Estimated matching population for the FPC.
                let est_matching = if n_sample == 0 {
                    total
                } else {
                    ((acc.count() as f64 / n_sample as f64) * total as f64).round() as u64
                };
                mean_interval(
                    acc.mean(),
                    acc.sample_variance(),
                    acc.count(),
                    est_matching.max(acc.count()),
                    confidence,
                )
            }
            AggFunc::Sum | AggFunc::Count => sum_interval(
                masked.mean(),
                masked.sample_variance(),
                n_sample,
                total,
                confidence,
            ),
            other => {
                return Err(StorageError::InvalidQuery(format!(
                    "bounded execution supports COUNT/SUM/AVG, not {other}"
                )))
            }
        };
        Ok(BoundedAnswer {
            interval,
            fraction_used: fraction,
            rows_scanned: t.num_rows(),
            exact: false,
        })
    }

    fn run_exact(
        &self,
        predicate: &Predicate,
        func: AggFunc,
        column: &str,
        ctx: &QueryCtx,
    ) -> Result<BoundedAnswer> {
        let sel = evaluate_selection(self.base, predicate, ctx)?;
        let col = self.base.column(column)?;
        let mut acc = Accumulator::new();
        for &row in &sel {
            let x = if func == AggFunc::Count {
                1.0
            } else {
                col.numeric_at(row as usize).unwrap_or(0.0)
            };
            acc.update(x);
        }
        Ok(BoundedAnswer {
            interval: ConfidenceInterval {
                estimate: acc.finish(func),
                half_width: 0.0,
                confidence: 1.0,
            },
            fraction_used: 1.0,
            rows_scanned: self.base.num_rows(),
            exact: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore_sampling::SampleCatalog;
    use explore_storage::gen::{sales_table, SalesConfig};

    fn setup() -> (Table, SampleCatalog) {
        let base = sales_table(&SalesConfig {
            rows: 100_000,
            ..SalesConfig::default()
        });
        let catalog =
            SampleCatalog::build(&base, &[0.001, 0.01, 0.05, 0.2], &[], 7, &QueryCtx::none())
                .unwrap();
        (base, catalog)
    }

    fn truth_avg(t: &Table) -> f64 {
        let p = t.column("price").unwrap().as_f64().unwrap();
        p.iter().sum::<f64>() / p.len() as f64
    }

    #[test]
    fn loose_bound_uses_small_sample() {
        let (base, catalog) = setup();
        let ex = BoundedExecutor::new(&base, &catalog);
        let ans = ex
            .aggregate(
                &Predicate::True,
                AggFunc::Avg,
                "price",
                Bound::RelativeError {
                    target: 0.10,
                    confidence: 0.95,
                },
                &QueryCtx::none(),
            )
            .unwrap();
        assert!(!ans.exact);
        assert!(ans.fraction_used <= 0.01, "used {}", ans.fraction_used);
        let truth = truth_avg(&base);
        assert!((ans.interval.estimate - truth).abs() / truth < 0.15);
    }

    #[test]
    fn tight_bound_escalates_to_larger_sample() {
        let (base, catalog) = setup();
        let ex = BoundedExecutor::new(&base, &catalog);
        let loose = ex
            .aggregate(
                &Predicate::True,
                AggFunc::Avg,
                "price",
                Bound::RelativeError {
                    target: 0.2,
                    confidence: 0.95,
                },
                &QueryCtx::none(),
            )
            .unwrap();
        let tight = ex
            .aggregate(
                &Predicate::True,
                AggFunc::Avg,
                "price",
                Bound::RelativeError {
                    target: 0.005,
                    confidence: 0.95,
                },
                &QueryCtx::none(),
            )
            .unwrap();
        assert!(tight.fraction_used > loose.fraction_used);
        assert!(tight.interval.relative_error() <= 0.005);
    }

    #[test]
    fn impossible_bound_falls_back_to_exact() {
        let (base, catalog) = setup();
        let ex = BoundedExecutor::new(&base, &catalog);
        let ans = ex
            .aggregate(
                &Predicate::True,
                AggFunc::Avg,
                "price",
                Bound::RelativeError {
                    target: 0.0,
                    confidence: 0.95,
                },
                &QueryCtx::none(),
            )
            .unwrap();
        assert!(ans.exact);
        assert_eq!(ans.fraction_used, 1.0);
        assert_eq!(ans.interval.half_width, 0.0);
    }

    #[test]
    fn row_budget_picks_largest_fitting_sample() {
        let (base, catalog) = setup();
        let ex = BoundedExecutor::new(&base, &catalog);
        let ans = ex
            .aggregate(
                &Predicate::True,
                AggFunc::Avg,
                "price",
                Bound::RowBudget { rows: 2000 },
                &QueryCtx::none(),
            )
            .unwrap();
        // 0.01 × 100k = 1000 fits; 0.05 × 100k = 5000 does not.
        assert!((ans.fraction_used - 0.01).abs() < 1e-9);
        assert!(ans.rows_scanned <= 2000);
    }

    #[test]
    fn row_budget_too_small_errors() {
        let (base, catalog) = setup();
        let ex = BoundedExecutor::new(&base, &catalog);
        let r = ex.aggregate(
            &Predicate::True,
            AggFunc::Avg,
            "price",
            Bound::RowBudget { rows: 10 },
            &QueryCtx::none(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn sum_and_count_bracket_truth() {
        let (base, catalog) = setup();
        let ex = BoundedExecutor::new(&base, &catalog);
        let pred = Predicate::eq("region", "region0");
        let sel = pred.evaluate(&base).unwrap();
        let prices = base.column("price").unwrap().as_f64().unwrap();
        let truth_sum: f64 = sel.iter().map(|&i| prices[i as usize]).sum();
        let truth_count = sel.len() as f64;
        let sum = ex
            .aggregate(
                &pred,
                AggFunc::Sum,
                "price",
                Bound::RelativeError {
                    target: 0.05,
                    confidence: 0.99,
                },
                &QueryCtx::none(),
            )
            .unwrap();
        assert!(
            sum.interval.contains(truth_sum),
            "{:?} vs {truth_sum}",
            sum.interval
        );
        let count = ex
            .aggregate(
                &pred,
                AggFunc::Count,
                "qty",
                Bound::RelativeError {
                    target: 0.05,
                    confidence: 0.99,
                },
                &QueryCtx::none(),
            )
            .unwrap();
        assert!(
            count.interval.contains(truth_count),
            "{:?} vs {truth_count}",
            count.interval
        );
    }

    #[test]
    fn cached_answers_match_uncached_and_invalidate_on_epoch_bump() {
        let (base, catalog) = setup();
        let shared = Arc::new(ResultCache::default());
        let plain = BoundedExecutor::new(&base, &catalog);
        let cached = BoundedExecutor::new(&base, &catalog).with_cache(
            Arc::clone(&shared),
            "sales",
            shared.epoch("sales"),
        );
        let bound = Bound::RelativeError {
            target: 0.05,
            confidence: 0.95,
        };
        let truth = plain
            .aggregate(
                &Predicate::True,
                AggFunc::Avg,
                "price",
                bound,
                &QueryCtx::none(),
            )
            .unwrap();
        let cold = cached
            .aggregate(
                &Predicate::True,
                AggFunc::Avg,
                "price",
                bound,
                &QueryCtx::none(),
            )
            .unwrap();
        let warm = cached
            .aggregate(
                &Predicate::True,
                AggFunc::Avg,
                "price",
                bound,
                &QueryCtx::none(),
            )
            .unwrap();
        for ans in [&cold, &warm] {
            assert_eq!(
                truth.interval.estimate.to_bits(),
                ans.interval.estimate.to_bits()
            );
            assert_eq!(
                truth.interval.half_width.to_bits(),
                ans.interval.half_width.to_bits()
            );
            assert_eq!(truth.fraction_used, ans.fraction_used);
            assert_eq!(truth.rows_scanned, ans.rows_scanned);
            assert_eq!(truth.exact, ans.exact);
        }
        assert_eq!(shared.stats().hits, 1);
        // A different bound is a different key, never a false hit.
        let budgeted = cached
            .aggregate(
                &Predicate::True,
                AggFunc::Avg,
                "price",
                Bound::RowBudget { rows: 2000 },
                &QueryCtx::none(),
            )
            .unwrap();
        assert!((budgeted.fraction_used - 0.01).abs() < 1e-9);
        assert_eq!(shared.stats().hits, 1);
        // An epoch bump (base-table mutation) invalidates the answers.
        shared.bump_epoch("sales");
        cached
            .aggregate(
                &Predicate::True,
                AggFunc::Avg,
                "price",
                bound,
                &QueryCtx::none(),
            )
            .unwrap();
        assert_eq!(shared.stats().hits, 1, "stale answer is never served");
    }

    #[test]
    fn metrics_count_answers_and_exact_fallbacks() {
        let (base, catalog) = setup();
        let m = Arc::new(MetricsRegistry::default());
        let ex = BoundedExecutor::new(&base, &catalog).with_metrics(Arc::clone(&m));
        ex.aggregate(
            &Predicate::True,
            AggFunc::Avg,
            "price",
            Bound::RelativeError {
                target: 0.10,
                confidence: 0.95,
            },
            &QueryCtx::none(),
        )
        .unwrap();
        ex.aggregate(
            &Predicate::True,
            AggFunc::Avg,
            "price",
            Bound::RelativeError {
                target: 0.0,
                confidence: 0.95,
            },
            &QueryCtx::none(),
        )
        .unwrap();
        let snap = m.snapshot();
        assert_eq!(snap.counter("aqp.answers"), 2);
        assert_eq!(snap.counter("aqp.exact_fallbacks"), 1);
        assert_eq!(snap.histogram("aqp.latency_ns").unwrap().count, 2);
    }

    #[test]
    fn unsupported_aggregate_is_rejected() {
        let (base, catalog) = setup();
        let ex = BoundedExecutor::new(&base, &catalog);
        let r = ex.aggregate(
            &Predicate::True,
            AggFunc::Max,
            "price",
            Bound::RelativeError {
                target: 0.5,
                confidence: 0.95,
            },
            &QueryCtx::none(),
        );
        assert!(r.is_err());
    }
}
