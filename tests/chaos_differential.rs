//! Chaos-differential suite: every query under every injected fault is
//! either **bit-identical to the fault-free run** or a **clean typed
//! error** — never a panic, never a silently wrong answer, never a
//! corrupted engine.
//!
//! The harness runs the executor's supported query shapes against
//! seeded random fault schedules (`Schedule::Seeded` decisions are pure
//! functions of the seed and hit index, so every failure is replayable
//! from its iteration number), across Serial/Parallel execution and
//! cache off/warm. After each faulty run the faults are disarmed and
//! the *same engine* answers the same query again — it must match the
//! fault-free truth bit-for-bit, proving no fault corrupted persistent
//! state (cache, loaders, cracker indexes, exec pool).
//!
//! The iteration count defaults to the CI smoke budget and scales up
//! via the `CHAOS_ITERS` env var for long-run soaking.

use std::time::Duration;

use exploration::cache::CachePolicy;
use exploration::exec::ExecPolicy;
use exploration::serve::{ServeConfig, ServeEngine};
use exploration::storage::gen::{sales_table, SalesConfig};
use exploration::storage::rng::SplitMix64;
use exploration::storage::{
    AggFunc, CmpOp, Predicate, Query, SortOrder, StorageError, Table, Value, MORSEL_ROWS,
};
use exploration::{CancelToken, ExploreDb, Schedule, SessionCtx};

/// A table spanning several morsels plus a ragged tail, so parallel
/// merge order and serial-fallback re-runs actually matter.
fn chaos_table() -> Table {
    sales_table(&SalesConfig {
        rows: 2 * MORSEL_ROWS + 4321,
        ..SalesConfig::default()
    })
}

/// Assert two tables are identical down to the float bit patterns.
fn assert_bitwise_eq(a: &Table, b: &Table, context: &str) {
    assert_eq!(a.schema(), b.schema(), "{context}: schema");
    assert_eq!(a.num_rows(), b.num_rows(), "{context}: row count");
    for field in a.schema().fields() {
        let ca = a.column(field.name()).unwrap();
        let cb = b.column(field.name()).unwrap();
        for row in 0..a.num_rows() {
            let va = ca.value(row).unwrap();
            let vb = cb.value(row).unwrap();
            match (va, vb) {
                (Value::Float(x), Value::Float(y)) => assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{context}: {}[{row}] {x} vs {y}",
                    field.name()
                ),
                (x, y) => assert_eq!(x, y, "{context}: {}[{row}]", field.name()),
            }
        }
    }
}

/// The executor's supported query shapes (mirrors the serial/parallel
/// differential suite).
fn query_shapes() -> Vec<(&'static str, Query)> {
    vec![
        ("full_scan", Query::new()),
        (
            "filter_scan",
            Query::new().filter(Predicate::range("price", 100.0, 600.0)),
        ),
        (
            "projection",
            Query::new()
                .filter(Predicate::cmp("qty", CmpOp::Ge, 5.0))
                .select(&["region", "price"]),
        ),
        (
            "order_limit",
            Query::new()
                .filter(Predicate::range("price", 50.0, 900.0))
                .select(&["product", "price"])
                .order("price", SortOrder::Desc)
                .take(123),
        ),
        (
            "global_aggregates",
            Query::new()
                .agg(AggFunc::Count, "qty")
                .agg(AggFunc::Sum, "price")
                .agg(AggFunc::Avg, "price")
                .agg(AggFunc::Min, "discount")
                .agg(AggFunc::Max, "discount")
                .agg(AggFunc::Var, "price")
                .agg(AggFunc::Std, "price"),
        ),
        (
            "filtered_global_aggregate",
            Query::new()
                .filter(Predicate::eq("channel", "channel1"))
                .agg(AggFunc::Avg, "price"),
        ),
        (
            "group_by",
            Query::new()
                .group("region")
                .agg(AggFunc::Count, "qty")
                .agg(AggFunc::Sum, "price"),
        ),
        (
            "multi_column_group_by",
            Query::new()
                .group("region")
                .group("channel")
                .agg(AggFunc::Avg, "price")
                .agg(AggFunc::Var, "discount"),
        ),
        (
            "full_pipeline",
            Query::new()
                .filter(Predicate::range("price", 50.0, 800.0).and(Predicate::cmp(
                    "qty",
                    CmpOp::Ge,
                    2.0,
                )))
                .group("product")
                .agg(AggFunc::Sum, "price")
                .agg(AggFunc::Avg, "qty")
                .order("sum(price)", SortOrder::Desc)
                .take(7),
        ),
        (
            "compound_predicate",
            Query::new().filter(
                Predicate::eq("region", "region0")
                    .or(Predicate::range("price", 0.0, 120.0))
                    .and(Predicate::cmp("qty", CmpOp::Lt, 8.0).not()),
            ),
        ),
        (
            "empty_result_filter",
            Query::new()
                .filter(Predicate::cmp("price", CmpOp::Lt, -1.0))
                .group("region")
                .agg(AggFunc::Sum, "price"),
        ),
        (
            "string_predicate_scan",
            Query::new()
                .filter(Predicate::eq("channel", "channel0"))
                .select(&["channel", "qty"]),
        ),
    ]
}

/// Fail points reachable through `ExploreDb::query`.
const POINTS: &[&str] = &[
    "exec.spawn",
    "exec.morsel",
    "cache.admit",
    "cache.lookup",
    "cache.evict",
];

/// Iteration budget: the CI smoke default satisfies the ≥200-seeded-
/// schedules acceptance bar; `CHAOS_ITERS` scales it up for soak runs.
fn chaos_iters() -> usize {
    std::env::var("CHAOS_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
}

/// A random fault schedule derived deterministically from the rng.
fn random_schedule(rng: &mut SplitMix64) -> Schedule {
    match rng.range_i64(0, 4) {
        0 => Schedule::Always,
        1 => Schedule::Nth(rng.range_i64(1, 5) as u64),
        2 => Schedule::FirstN(rng.range_i64(1, 4) as u64),
        _ => Schedule::Seeded {
            seed: rng.next_u64(),
            one_in: rng.range_i64(1, 5) as u64,
        },
    }
}

/// The main chaos loop. Every iteration arms a random subset of fail
/// points with random seeded schedules, sometimes adds a cancellation
/// budget, runs one query shape, and requires bit-identical output or a
/// clean typed error — then disarms and proves the engine undamaged.
#[test]
fn seeded_fault_schedules_never_corrupt_results() {
    let table = chaos_table();
    let shapes = query_shapes();
    // Fault-free truth per shape, computed once on a pristine engine.
    let truths: Vec<Table> = {
        let db = ExploreDb::with_exec_policy(ExecPolicy::Serial);
        db.register("sales", table.clone());
        shapes
            .iter()
            .map(|(name, q)| {
                db.query("sales", q)
                    .unwrap_or_else(|e| panic!("truth for {name}: {e}"))
            })
            .collect()
    };

    for iter in 0..chaos_iters() {
        let mut rng = SplitMix64::new(0xC4A0_5000 + iter as u64);
        let (shape_idx, policy, cache_on) = (
            rng.range_i64(0, shapes.len() as i64) as usize,
            if rng.range_i64(0, 2) == 0 {
                ExecPolicy::Serial
            } else {
                ExecPolicy::Parallel {
                    workers: rng.range_i64(1, 5) as usize,
                }
            },
            rng.range_i64(0, 2) == 0,
        );
        let (name, query) = &shapes[shape_idx];
        let context = format!("iter {iter}: {name} policy={policy:?} cache={cache_on}");

        let db = ExploreDb::with_exec_policy(policy);
        if cache_on {
            db.set_cache_policy(CachePolicy::on());
        }
        db.register("sales", table.clone());
        if cache_on {
            // Warm the cache fault-free so lookup/evict faults have
            // entries to chew on.
            for (_, q) in &shapes {
                db.query("sales", q).unwrap();
            }
        }

        let faults = db.fail_points();
        let n_armed = rng.range_i64(1, 4) as usize;
        for _ in 0..n_armed {
            let point = POINTS[rng.range_i64(0, POINTS.len() as i64) as usize];
            let schedule = random_schedule(&mut rng);
            faults.arm(point, schedule);
        }
        // One run in four also races a cancellation budget against the
        // faulty query.
        let cancel = (rng.range_i64(0, 4) == 0)
            .then(|| CancelToken::after_checks(rng.range_i64(0, 12) as u64));

        let overlay = SessionCtx::default().with_cancel(cancel.clone());
        let result = db.with_session(&overlay, |db| db.query("sales", query));
        match result {
            Ok(got) => assert_bitwise_eq(&truths[shape_idx], &got, &context),
            Err(StorageError::Cancelled) => assert!(
                cancel.is_some(),
                "{context}: Cancelled without a cancel token"
            ),
            Err(e) => panic!("{context}: fault leaked as non-typed error: {e}"),
        }

        // Disarm and re-query the SAME engine: any corruption a fault
        // left behind (cache entry, pool state) would surface here.
        faults.disarm_all();
        let clean = db
            .query("sales", query)
            .unwrap_or_else(|e| panic!("{context}: post-fault query failed: {e}"));
        assert_bitwise_eq(
            &truths[shape_idx],
            &clean,
            &format!("{context} (post-fault)"),
        );
    }
}

/// An injected worker panic inside a pooled morsel degrades to a full
/// serial re-run with identical results, and the event is counted.
#[test]
fn injected_worker_panic_falls_back_to_serial() {
    let table = chaos_table();
    let db = ExploreDb::with_exec_policy(ExecPolicy::Parallel { workers: 4 });
    db.register("sales", table);
    let q = Query::new().group("region").agg(AggFunc::Sum, "price");
    let truth = {
        let serial = ExploreDb::with_exec_policy(ExecPolicy::Serial);
        serial.register("sales", chaos_table());
        serial.query("sales", &q).unwrap()
    };

    let faults = db.fail_points();
    faults.arm("exec.morsel", Schedule::Always);
    let got = db.query("sales", &q).expect("degrades, not fails");
    assert_bitwise_eq(&truth, &got, "exec.morsel fallback");
    assert!(faults.trips("exec.morsel") > 0, "fault actually fired");
    assert!(
        faults.event("fault.exec.serial_fallback") >= 1,
        "fallback event counted"
    );

    // Pool survives: a fault-free parallel query still works.
    faults.disarm_all();
    let clean = db.query("sales", &q).unwrap();
    assert_bitwise_eq(&truth, &clean, "post-panic pool reuse");
}

/// Refusing pool dispatch (`exec.spawn`) degrades to inline serial
/// execution with identical results.
#[test]
fn spawn_failure_degrades_to_inline_serial() {
    let table = chaos_table();
    let db = ExploreDb::with_exec_policy(ExecPolicy::Parallel { workers: 4 });
    db.register("sales", table.clone());
    let q = Query::new()
        .filter(Predicate::range("price", 100.0, 600.0))
        .agg(AggFunc::Sum, "price");
    let truth = db.query("sales", &q).unwrap();

    let faults = db.fail_points();
    faults.arm("exec.spawn", Schedule::Always);
    let got = db.query("sales", &q).unwrap();
    assert_bitwise_eq(&truth, &got, "exec.spawn fallback");
    assert!(faults.event("fault.exec.serial_fallback") >= 1);
}

/// Cache admission refusal (`cache.admit`) means every query takes the
/// compute path — correct answers, zero insertions.
#[test]
fn admission_failure_serves_through_compute() {
    let table = chaos_table();
    let db = ExploreDb::with_cache_policy(CachePolicy::on());
    db.register("sales", table);
    let faults = db.fail_points();
    faults.arm("cache.admit", Schedule::Always);

    let q = Query::new().group("region").agg(AggFunc::Sum, "price");
    let a = db.query("sales", &q).unwrap();
    let b = db.query("sales", &q).unwrap();
    assert_bitwise_eq(&a, &b, "admit-refused queries");
    assert_eq!(db.cache_stats().insertions, 0, "nothing was admitted");
    assert!(faults.trips("cache.admit") >= 2);

    // Disarm: the cache starts admitting again on the same engine.
    faults.disarm_all();
    db.query("sales", &q).unwrap();
    assert_eq!(db.cache_stats().insertions, 1);
    db.query("sales", &q).unwrap();
    assert_eq!(db.cache_stats().hits, 1);
}

/// Forced lookup misses (`cache.lookup`) recompute every answer —
/// bit-identical, and the warm cache is still intact after disarming.
#[test]
fn lookup_failure_forces_recompute() {
    let table = chaos_table();
    let db = ExploreDb::with_cache_policy(CachePolicy::on());
    db.register("sales", table);
    let q = Query::new()
        .filter(Predicate::range("price", 100.0, 700.0))
        .group("region")
        .agg(AggFunc::Avg, "price");
    let truth = db.query("sales", &q).unwrap(); // warm the entry

    let faults = db.fail_points();
    faults.arm("cache.lookup", Schedule::Always);
    let hits_before = db.cache_stats().hits;
    let got = db.query("sales", &q).unwrap();
    assert_bitwise_eq(&truth, &got, "forced miss");
    assert_eq!(db.cache_stats().hits, hits_before, "lookup never hit");

    faults.disarm_all();
    db.query("sales", &q).unwrap();
    assert!(db.cache_stats().hits > hits_before, "cache survived");
}

/// `crack.reorg` degrades the adaptive index to a base-column scan:
/// same ids, no reorganization, event counted.
#[test]
fn crack_reorg_failure_degrades_to_scan() {
    let db = ExploreDb::new();
    db.register("sales", chaos_table());
    let mut truth = db.cracked_range("sales", "qty", 3, 7).unwrap();
    truth.sort_unstable();
    let pieces = db.index_pieces("sales", "qty").unwrap();

    let faults = db.fail_points();
    faults.arm("crack.reorg", Schedule::Always);
    let mut got = db.cracked_range("sales", "qty", 2, 9).unwrap();
    got.sort_unstable();
    let mut scan = Predicate::range("qty", 2i64, 9i64)
        .evaluate(&db.table("sales").unwrap())
        .unwrap();
    scan.sort_unstable();
    assert_eq!(got, scan);
    assert_eq!(
        db.index_pieces("sales", "qty").unwrap(),
        pieces,
        "degraded query must not reorganize"
    );
    assert!(faults.event("fault.crack.scan_fallback") >= 1);

    // Disarm: cracking resumes on the same index.
    faults.disarm_all();
    let mut again = db.cracked_range("sales", "qty", 2, 9).unwrap();
    again.sort_unstable();
    assert_eq!(again, scan);
    assert!(db.index_pieces("sales", "qty").unwrap() > pieces);
}

/// Seeded chaos over `diversified_topk`: the middleware entry point is
/// routed through the same context-threaded pipeline as `query`, so
/// exec-layer faults and cancellation budgets must leave it either
/// returning the exact fault-free ranking or a clean typed error —
/// and the engine keeps serving truth afterwards.
#[test]
fn seeded_chaos_over_diversified_topk_is_exact_or_typed() {
    let table = chaos_table();
    let pred = Predicate::range("price", 50.0, 800.0);
    let features = ["qty", "discount"];
    let truth = {
        let db = ExploreDb::with_exec_policy(ExecPolicy::Serial);
        db.register("sales", table.clone());
        db.diversified_topk("sales", &pred, "price", &features, 10, 0.5)
            .unwrap()
    };
    assert_eq!(truth.len(), 10);

    for iter in 0..chaos_iters().min(100) {
        let mut rng = SplitMix64::new(0xD1BE_7000 + iter as u64);
        let policy = if rng.range_i64(0, 2) == 0 {
            ExecPolicy::Serial
        } else {
            ExecPolicy::Parallel {
                workers: rng.range_i64(1, 5) as usize,
            }
        };
        let context = format!("diversify iter {iter}: policy={policy:?}");
        let db = ExploreDb::with_exec_policy(policy);
        db.register("sales", table.clone());

        let faults = db.fail_points();
        for _ in 0..rng.range_i64(1, 3) {
            let point = POINTS[rng.range_i64(0, POINTS.len() as i64) as usize];
            faults.arm(point, random_schedule(&mut rng));
        }
        let cancel = (rng.range_i64(0, 3) == 0)
            .then(|| CancelToken::after_checks(rng.range_i64(0, 8) as u64));

        let overlay = SessionCtx::default().with_cancel(cancel.clone());
        let result = db.with_session(&overlay, |db| {
            db.diversified_topk("sales", &pred, "price", &features, 10, 0.5)
        });
        match result {
            Ok(got) => assert_eq!(got, truth, "{context}"),
            Err(StorageError::Cancelled) => assert!(
                cancel.is_some(),
                "{context}: Cancelled without a cancel token"
            ),
            Err(e) => panic!("{context}: fault leaked as non-typed error: {e}"),
        }

        // Disarmed, the same engine reproduces the exact ranking.
        faults.disarm_all();
        let clean = db
            .diversified_topk("sales", &pred, "price", &features, 10, 0.5)
            .unwrap_or_else(|e| panic!("{context}: post-fault call failed: {e}"));
        assert_eq!(clean, truth, "{context} (post-fault)");
    }
}

/// `serve.admit` armed: the scheduler degrades gracefully — every
/// submission runs inline on the calling thread instead of queueing —
/// with exact answers, the degradation event counted, and the queue
/// path restored (truth re-served) after disarming.
#[test]
fn serve_admit_fault_degrades_to_inline_execution() {
    let table = chaos_table();
    let q = Query::new().group("region").agg(AggFunc::Sum, "price");
    let truth = {
        let db = ExploreDb::new();
        db.register("sales", table.clone());
        db.query("sales", &q).unwrap()
    };

    let db = ExploreDb::new();
    db.register("sales", table);
    let serve = ServeEngine::with_config(db, ServeConfig::with_workers(2));
    let faults = serve.fail_points();
    faults.arm("serve.admit", Schedule::Always);

    let session = serve.session();
    let got = session.query("sales", &q).expect("degrades, not fails");
    assert_bitwise_eq(&truth, &got, "serve.admit inline degradation");
    assert!(faults.trips("serve.admit") >= 1, "fault actually fired");
    assert!(
        faults.event("fault.serve.inline") >= 1,
        "inline degradation counted"
    );

    // Disarm: the same facade schedules through the queue again.
    faults.disarm_all();
    let clean = session.query("sales", &q).unwrap();
    assert_bitwise_eq(&truth, &clean, "post-fault scheduled query");
}

/// `serve.yield` armed: cooperative yield points are skipped — degraded
/// scheduling, bit-identical answers — and the skip is noted.
#[test]
fn serve_yield_fault_skips_yields_without_corruption() {
    let table = chaos_table();
    let q = Query::new()
        .filter(Predicate::range("price", 50.0, 800.0))
        .group("product")
        .agg(AggFunc::Sum, "price")
        .order("sum(price)", SortOrder::Desc)
        .take(7);
    let truth = {
        let db = ExploreDb::new();
        db.register("sales", table.clone());
        db.query("sales", &q).unwrap()
    };

    let db = ExploreDb::new();
    db.register("sales", table);
    let serve = ServeEngine::with_config(db, ServeConfig::with_workers(1));
    let faults = serve.fail_points();
    faults.arm("serve.yield", Schedule::Always);

    let got = serve.session().query("sales", &q).unwrap();
    assert_bitwise_eq(&truth, &got, "serve.yield skip");
    assert!(
        faults.event("fault.serve.yield_skipped") >= 1,
        "yield skips are noted"
    );

    faults.disarm_all();
    let clean = serve.session().query("sales", &q).unwrap();
    assert_bitwise_eq(&truth, &clean, "post-fault yielding query");
}

/// Seeded chaos through the serving layer: random engine and serve
/// fail points (plus occasional zero deadline budgets) over scheduled
/// sessions must produce the exact fault-free answer or a clean typed
/// error — and after disarming, the same facade re-serves truth.
#[test]
fn seeded_serve_chaos_is_exact_or_typed() {
    let table = chaos_table();
    let shapes = query_shapes();
    let truths: Vec<Table> = {
        let db = ExploreDb::with_exec_policy(ExecPolicy::Serial);
        db.register("sales", table.clone());
        shapes
            .iter()
            .map(|(_, q)| db.query("sales", q).unwrap())
            .collect()
    };
    const SERVE_POINTS: &[&str] = &["serve.admit", "serve.yield"];

    for iter in 0..chaos_iters().min(60) {
        let mut rng = SplitMix64::new(0x5E2E_9000 + iter as u64);
        let shape_idx = rng.range_i64(0, shapes.len() as i64) as usize;
        let policy = if rng.range_i64(0, 2) == 0 {
            ExecPolicy::Serial
        } else {
            ExecPolicy::Parallel {
                workers: rng.range_i64(1, 5) as usize,
            }
        };
        let (name, query) = &shapes[shape_idx];
        let context = format!("serve iter {iter}: {name} policy={policy:?}");

        let db = ExploreDb::with_exec_policy(policy);
        db.register("sales", table.clone());
        let serve =
            ServeEngine::with_config(db, ServeConfig::with_workers(rng.range_i64(1, 3) as usize));
        let faults = serve.fail_points();
        // Always at least one serve-layer point, plus engine points.
        faults.arm(
            SERVE_POINTS[rng.range_i64(0, SERVE_POINTS.len() as i64) as usize],
            random_schedule(&mut rng),
        );
        for _ in 0..rng.range_i64(0, 3) {
            let point = POINTS[rng.range_i64(0, POINTS.len() as i64) as usize];
            faults.arm(point, random_schedule(&mut rng));
        }
        // One run in four races a zero deadline budget against it.
        let zero_deadline = rng.range_i64(0, 4) == 0;
        let session = if zero_deadline {
            serve.session().with_deadline(Some(Duration::ZERO))
        } else {
            serve.session()
        };

        match session.query("sales", query) {
            Ok(got) => assert_bitwise_eq(&truths[shape_idx], &got, &context),
            Err(StorageError::DeadlineExceeded) => assert!(
                zero_deadline,
                "{context}: DeadlineExceeded without a deadline budget"
            ),
            Err(e) => panic!("{context}: fault leaked as non-typed error: {e}"),
        }

        // Disarm and re-serve truth through the SAME facade.
        faults.disarm_all();
        let clean = serve
            .session()
            .query("sales", query)
            .unwrap_or_else(|e| panic!("{context}: post-fault query failed: {e}"));
        assert_bitwise_eq(
            &truths[shape_idx],
            &clean,
            &format!("{context} (post-fault)"),
        );
    }
}

/// Raw-CSV parse faults follow the engine's `ErrorPolicy`: `Abort`
/// surfaces a typed CSV error, `SkipRow` tombstones the row and keeps
/// serving; `load.map` faults are invisible (bit-identical reads).
#[test]
fn raw_parse_faults_follow_error_policy() {
    use exploration::loading::{ErrorPolicy, RawCsv};
    use exploration::storage::csv::write_csv;

    let t = sales_table(&SalesConfig {
        rows: 500,
        ..SalesConfig::default()
    });
    let q = Query::new().agg(AggFunc::Count, "qty");

    // Abort (default): the injected malformed row fails the query with
    // a typed CSV error; the engine (and loader) survive.
    let db = ExploreDb::new();
    db.attach_raw(
        "raw",
        RawCsv::new(write_csv(&t), t.schema().clone()).unwrap(),
    );
    let faults = db.fail_points();
    faults.arm("load.parse", Schedule::Nth(3));
    match db.query("raw", &q) {
        Err(StorageError::Csv { .. }) => {}
        other => panic!("expected a typed CSV error, got {other:?}"),
    }
    faults.disarm_all();
    let clean = db.query("raw", &q).unwrap();
    assert_eq!(
        clean.column("count(qty)").unwrap().as_f64().unwrap()[0],
        500.0
    );

    // SkipRow: the same fault tombstones one row and the query answers.
    let db = ExploreDb::new();
    db.set_load_error_policy(ErrorPolicy::SkipRow);
    db.attach_raw(
        "raw",
        RawCsv::new(write_csv(&t), t.schema().clone()).unwrap(),
    );
    db.fail_points().arm("load.parse", Schedule::Nth(3));
    let skipped = db.query("raw", &q).unwrap();
    assert_eq!(
        skipped.column("count(qty)").unwrap().as_f64().unwrap()[0],
        499.0
    );
    assert_eq!(db.rows_skipped("raw"), Some(1));

    // load.map: positional-map bypass is bit-identical.
    let db = ExploreDb::new();
    db.attach_raw(
        "raw",
        RawCsv::new(write_csv(&t), t.schema().clone()).unwrap(),
    );
    let truth = {
        let plain = ExploreDb::new();
        plain.register("mem", t.clone());
        plain.query(
            "mem",
            &Query::new().group("region").agg(AggFunc::Sum, "price"),
        )
    }
    .unwrap();
    db.fail_points()
        .arm("load.map", Schedule::Seeded { seed: 7, one_in: 2 });
    let got = db
        .query(
            "raw",
            &Query::new().group("region").agg(AggFunc::Sum, "price"),
        )
        .unwrap();
    assert_bitwise_eq(&truth, &got, "load.map bypass");
}
