//! Discovery-driven cube exploration (Sarawagi, Agrawal, Megiddo —
//! EDBT'98 \[54\]; i3 \[55\]).
//!
//! Manually drilling through a cube to find anomalies is hopeless; the
//! system should *pre-compute surprise* and steer the analyst toward it.
//! For a 2-D cuboid we fit the independence model — expected cell value
//! `E[i,j] = rowᵢ · colⱼ / grand` — and score each cell by its
//! standardized residual. Cells whose |residual| exceeds a threshold are
//! *exceptions*; dimension values are ranked by the exceptions beneath
//! them so the UI can highlight where to drill.

use std::collections::HashMap;

use explore_storage::{AggFunc, Query, Result, StorageError, Table};

/// One scored cube cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellScore {
    pub dim_a: String,
    pub dim_b: String,
    pub actual: f64,
    pub expected: f64,
    /// Standardized residual `(actual - expected) / sqrt(expected)`.
    pub surprise: f64,
}

/// A 2-D discovery-driven view over a table.
#[derive(Debug, Clone)]
pub struct DiscoveryView {
    cells: Vec<CellScore>,
}

impl DiscoveryView {
    /// Score every (a, b) cell of `SUM(measure) GROUP BY dim_a, dim_b`
    /// against the independence model.
    pub fn build(table: &Table, dim_a: &str, dim_b: &str, measure: &str) -> Result<Self> {
        let grouped = Query::new()
            .group(dim_a)
            .group(dim_b)
            .agg(AggFunc::Sum, measure)
            .run(table)?;
        DiscoveryView::from_grouped(&grouped, dim_a, dim_b, measure)
    }

    /// Score an already-grouped `SUM(measure) GROUP BY dim_a, dim_b`
    /// result. Lets callers that obtained the grouped table elsewhere
    /// (e.g. through the engine's cached/traced pipeline) reuse it.
    pub fn from_grouped(grouped: &Table, dim_a: &str, dim_b: &str, measure: &str) -> Result<Self> {
        let utf8 = |name: &str| -> Result<&[String]> {
            grouped.column(name)?.as_utf8().ok_or_else(|| {
                StorageError::Internal(format!("discovery dimension {name} is not Utf8"))
            })
        };
        let a_vals = utf8(dim_a)?;
        let b_vals = utf8(dim_b)?;
        let agg_name = format!("sum({measure})");
        let sums = grouped.column(&agg_name)?.as_f64().ok_or_else(|| {
            StorageError::Internal(format!("discovery aggregate {agg_name} is not Float64"))
        })?;

        let mut row_tot: HashMap<&str, f64> = HashMap::new();
        let mut col_tot: HashMap<&str, f64> = HashMap::new();
        let mut grand = 0.0;
        for ((a, b), &s) in a_vals.iter().zip(b_vals).zip(sums) {
            *row_tot.entry(a).or_insert(0.0) += s;
            *col_tot.entry(b).or_insert(0.0) += s;
            grand += s;
        }
        let mut cells = Vec::with_capacity(sums.len());
        for ((a, b), &actual) in a_vals.iter().zip(b_vals).zip(sums) {
            let expected = if grand != 0.0 {
                row_tot[a.as_str()] * col_tot[b.as_str()] / grand
            } else {
                0.0
            };
            let surprise = if expected > 0.0 {
                (actual - expected) / expected.sqrt()
            } else {
                0.0
            };
            cells.push(CellScore {
                dim_a: a.clone(),
                dim_b: b.clone(),
                actual,
                expected,
                surprise,
            });
        }
        Ok(DiscoveryView { cells })
    }

    /// All scored cells.
    pub fn cells(&self) -> &[CellScore] {
        &self.cells
    }

    /// Cells whose |surprise| is at least `threshold`, most surprising
    /// first — the exceptions the interface highlights.
    pub fn exceptions(&self, threshold: f64) -> Vec<&CellScore> {
        let mut v: Vec<&CellScore> = self
            .cells
            .iter()
            .filter(|c| c.surprise.abs() >= threshold)
            .collect();
        v.sort_by(|x, y| y.surprise.abs().total_cmp(&x.surprise.abs()));
        v
    }

    /// Dimension-A values ranked by the total |surprise| beneath them —
    /// "drill here next" guidance.
    pub fn drill_ranking(&self) -> Vec<(String, f64)> {
        let mut agg: HashMap<&str, f64> = HashMap::new();
        for c in &self.cells {
            *agg.entry(c.dim_a.as_str()).or_insert(0.0) += c.surprise.abs();
        }
        let mut v: Vec<(String, f64)> = agg.into_iter().map(|(k, s)| (k.to_owned(), s)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore_storage::{Column, DataType, Schema};

    /// A table where (a1, b1) is wildly out of line with independence.
    fn anomalous_table() -> Table {
        let mut region = Vec::new();
        let mut product = Vec::new();
        let mut amount = Vec::new();
        for r in 0..4 {
            for p in 0..4 {
                for _ in 0..10 {
                    region.push(format!("a{r}"));
                    product.push(format!("b{p}"));
                    // Smooth base, one injected anomaly.
                    let base = 10.0 + r as f64 + p as f64;
                    amount.push(if r == 1 && p == 1 { base * 20.0 } else { base });
                }
            }
        }
        Table::new(
            Schema::of(&[
                ("region", DataType::Utf8),
                ("product", DataType::Utf8),
                ("amount", DataType::Float64),
            ]),
            vec![
                Column::from(region),
                Column::from(product),
                Column::from(amount),
            ],
        )
        .unwrap()
    }

    #[test]
    fn anomalous_cell_has_top_surprise() {
        let t = anomalous_table();
        let v = DiscoveryView::build(&t, "region", "product", "amount").unwrap();
        let top = v
            .cells()
            .iter()
            .max_by(|x, y| x.surprise.abs().total_cmp(&y.surprise.abs()))
            .unwrap();
        assert_eq!((top.dim_a.as_str(), top.dim_b.as_str()), ("a1", "b1"));
        assert!(top.surprise > 0.0, "anomaly is an excess");
    }

    #[test]
    fn exceptions_are_thresholded_and_sorted() {
        let t = anomalous_table();
        let v = DiscoveryView::build(&t, "region", "product", "amount").unwrap();
        let all = v.exceptions(0.0);
        assert_eq!(all.len(), 16);
        assert!(all
            .windows(2)
            .all(|w| w[0].surprise.abs() >= w[1].surprise.abs()));
        let top_s = all[0].surprise.abs();
        let few = v.exceptions(top_s * 0.9);
        assert!(few.len() < all.len());
        assert!(!few.is_empty());
    }

    #[test]
    fn drill_ranking_points_at_the_anomalous_slice() {
        let t = anomalous_table();
        let v = DiscoveryView::build(&t, "region", "product", "amount").unwrap();
        let ranking = v.drill_ranking();
        assert_eq!(ranking[0].0, "a1");
        assert_eq!(ranking.len(), 4);
    }

    #[test]
    fn uniform_table_has_low_surprise() {
        let mut region = Vec::new();
        let mut product = Vec::new();
        let mut amount = Vec::new();
        for r in 0..3 {
            for p in 0..3 {
                region.push(format!("a{r}"));
                product.push(format!("b{p}"));
                amount.push(100.0);
            }
        }
        let t = Table::new(
            Schema::of(&[
                ("region", DataType::Utf8),
                ("product", DataType::Utf8),
                ("amount", DataType::Float64),
            ]),
            vec![
                Column::from(region),
                Column::from(product),
                Column::from(amount),
            ],
        )
        .unwrap();
        let v = DiscoveryView::build(&t, "region", "product", "amount").unwrap();
        assert!(v.cells().iter().all(|c| c.surprise.abs() < 1e-9));
        assert!(v.exceptions(0.1).is_empty());
    }

    #[test]
    fn residuals_sum_to_zero_rowwise() {
        // Independence model property: per-row residual sums vanish.
        let t = anomalous_table();
        let v = DiscoveryView::build(&t, "region", "product", "amount").unwrap();
        for r in 0..4 {
            let label = format!("a{r}");
            let sum: f64 = v
                .cells()
                .iter()
                .filter(|c| c.dim_a == label)
                .map(|c| c.actual - c.expected)
                .sum();
            assert!(sum.abs() < 1e-6, "row {label} residual {sum}");
        }
    }
}
