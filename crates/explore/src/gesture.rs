//! Gestural query interfaces (dbtouch \[32, 44\]; GestureDB \[45, 47\]).
//!
//! The "novel query interfaces" cluster replaces the keyboard: the user
//! touches a rendered table/canvas and the *database kernel* interprets
//! the physical gesture as a query and processes it incrementally. We
//! simulate the touch hardware with synthetic point traces; the
//! database-side contribution — classifying traces into gestures and
//! compiling gestures to query intents over the touched region — is
//! implemented for real.

use explore_storage::rng::SplitMix64;

/// One touch sample: position in canvas coordinates (0..1), for one of
/// up to two fingers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TouchPoint {
    pub x: f64,
    pub y: f64,
    pub finger: u8,
}

/// A recognized gesture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gesture {
    /// Short press: inspect one tuple/cell.
    Tap,
    /// Horizontal slide: scan along the row axis (dbtouch's "slide to
    /// scan").
    SwipeHorizontal,
    /// Vertical slide: scan along a column.
    SwipeVertical,
    /// Two fingers converging: zoom out → summarize/aggregate the region.
    Pinch,
    /// Two fingers diverging: zoom in → drill into detail.
    Spread,
    /// No confident classification.
    Unknown,
}

/// What the engine should do in response — the gesture→query mapping of
/// GestureDB's classifier stage.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryIntent {
    /// Fetch the single tuple nearest the touch.
    InspectTuple { x: f64, y: f64 },
    /// Scan the horizontal band the swipe covered.
    ScanRows { y: f64 },
    /// Scan the column at the swipe's x position.
    ScanColumn { x: f64 },
    /// Aggregate (summarize) the touched region.
    Summarize { cx: f64, cy: f64 },
    /// Drill into the touched region.
    DrillDown { cx: f64, cy: f64 },
    /// Ignore.
    None,
}

/// Classify a touch trace into a gesture.
pub fn classify(trace: &[TouchPoint]) -> Gesture {
    if trace.is_empty() {
        return Gesture::Unknown;
    }
    let fingers: Vec<u8> = {
        let mut f: Vec<u8> = trace.iter().map(|p| p.finger).collect();
        f.sort_unstable();
        f.dedup();
        f
    };
    if fingers.len() >= 2 {
        // Two-finger gesture: compare inter-finger distance start vs end.
        let path = |finger: u8| -> Vec<&TouchPoint> {
            trace.iter().filter(|p| p.finger == finger).collect()
        };
        let a = path(fingers[0]);
        let b = path(fingers[1]);
        if a.len() < 2 || b.len() < 2 {
            return Gesture::Unknown;
        }
        let d = |p: &TouchPoint, q: &TouchPoint| ((p.x - q.x).powi(2) + (p.y - q.y).powi(2)).sqrt();
        let start = d(a[0], b[0]);
        let end = d(a[a.len() - 1], b[b.len() - 1]);
        return if end < start * 0.7 {
            Gesture::Pinch
        } else if end > start * 1.4 {
            Gesture::Spread
        } else {
            Gesture::Unknown
        };
    }
    // One-finger gesture: displacement decides.
    let first = trace[0];
    let last = trace[trace.len() - 1];
    let dx = (last.x - first.x).abs();
    let dy = (last.y - first.y).abs();
    let dist = (dx * dx + dy * dy).sqrt();
    if dist < 0.02 {
        Gesture::Tap
    } else if dx > 2.0 * dy {
        Gesture::SwipeHorizontal
    } else if dy > 2.0 * dx {
        Gesture::SwipeVertical
    } else {
        Gesture::Unknown
    }
}

/// Compile a classified trace into a query intent.
pub fn to_intent(trace: &[TouchPoint]) -> QueryIntent {
    if trace.is_empty() {
        return QueryIntent::None;
    }
    let cx = trace.iter().map(|p| p.x).sum::<f64>() / trace.len() as f64;
    let cy = trace.iter().map(|p| p.y).sum::<f64>() / trace.len() as f64;
    match classify(trace) {
        Gesture::Tap => QueryIntent::InspectTuple {
            x: trace[0].x,
            y: trace[0].y,
        },
        Gesture::SwipeHorizontal => QueryIntent::ScanRows { y: cy },
        Gesture::SwipeVertical => QueryIntent::ScanColumn { x: cx },
        Gesture::Pinch => QueryIntent::Summarize { cx, cy },
        Gesture::Spread => QueryIntent::DrillDown { cx, cy },
        Gesture::Unknown => QueryIntent::None,
    }
}

/// Generate a synthetic trace of the given gesture (the touch-hardware
/// simulation; noise models finger jitter).
pub fn synthetic_trace(gesture: Gesture, samples: usize, noise: f64, seed: u64) -> Vec<TouchPoint> {
    let mut rng = SplitMix64::new(seed);
    let samples = samples.max(2);
    let mut trace = Vec::with_capacity(samples * 2);
    let jitter = |rng: &mut SplitMix64| rng.range_f64(-1.0, 1.0) * noise;
    match gesture {
        Gesture::Tap => {
            let (x, y) = (rng.range_f64(0.2, 0.8), rng.range_f64(0.2, 0.8));
            for _ in 0..samples {
                trace.push(TouchPoint {
                    x: x + jitter(&mut rng) * 0.1,
                    y: y + jitter(&mut rng) * 0.1,
                    finger: 0,
                });
            }
        }
        Gesture::SwipeHorizontal | Gesture::SwipeVertical => {
            let c = rng.range_f64(0.3, 0.7);
            for i in 0..samples {
                let t = 0.1 + 0.8 * i as f64 / (samples - 1) as f64;
                let (x, y) = if gesture == Gesture::SwipeHorizontal {
                    (t, c)
                } else {
                    (c, t)
                };
                trace.push(TouchPoint {
                    x: x + jitter(&mut rng),
                    y: y + jitter(&mut rng),
                    finger: 0,
                });
            }
        }
        Gesture::Pinch | Gesture::Spread => {
            let (cx, cy) = (0.5, 0.5);
            for i in 0..samples {
                let t = i as f64 / (samples - 1) as f64;
                // Pinch: gap shrinks 0.4 → 0.1; spread: grows 0.1 → 0.4.
                let gap = if gesture == Gesture::Pinch {
                    0.4 - 0.3 * t
                } else {
                    0.1 + 0.3 * t
                };
                for (finger, sign) in [(0u8, -1.0), (1u8, 1.0)] {
                    trace.push(TouchPoint {
                        x: cx + sign * gap + jitter(&mut rng),
                        y: cy + jitter(&mut rng),
                        finger,
                    });
                }
            }
        }
        Gesture::Unknown => {
            for _ in 0..samples {
                trace.push(TouchPoint {
                    x: rng.unit_f64(),
                    y: rng.unit_f64(),
                    finger: 0,
                });
            }
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_gestures_classify_correctly() {
        for g in [
            Gesture::Tap,
            Gesture::SwipeHorizontal,
            Gesture::SwipeVertical,
            Gesture::Pinch,
            Gesture::Spread,
        ] {
            let trace = synthetic_trace(g, 20, 0.0, 1);
            assert_eq!(classify(&trace), g, "{g:?}");
        }
    }

    #[test]
    fn noisy_gestures_mostly_classify_correctly() {
        let mut correct = 0;
        let total = 200;
        let gestures = [
            Gesture::Tap,
            Gesture::SwipeHorizontal,
            Gesture::SwipeVertical,
            Gesture::Pinch,
            Gesture::Spread,
        ];
        for i in 0..total {
            let g = gestures[i % gestures.len()];
            let trace = synthetic_trace(g, 20, 0.004, i as u64);
            if classify(&trace) == g {
                correct += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn intents_carry_positions() {
        let tap = synthetic_trace(Gesture::Tap, 10, 0.0, 2);
        match to_intent(&tap) {
            QueryIntent::InspectTuple { x, y } => {
                assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
            }
            other => panic!("expected inspect, got {other:?}"),
        }
        let pinch = synthetic_trace(Gesture::Pinch, 10, 0.0, 3);
        assert!(matches!(to_intent(&pinch), QueryIntent::Summarize { .. }));
        let spread = synthetic_trace(Gesture::Spread, 10, 0.0, 4);
        assert!(matches!(to_intent(&spread), QueryIntent::DrillDown { .. }));
    }

    #[test]
    fn empty_and_ambiguous_traces() {
        assert_eq!(classify(&[]), Gesture::Unknown);
        assert_eq!(to_intent(&[]), QueryIntent::None);
        // A perfect diagonal is ambiguous between the swipe axes.
        let diagonal: Vec<TouchPoint> = (0..10)
            .map(|i| TouchPoint {
                x: i as f64 / 10.0,
                y: i as f64 / 10.0,
                finger: 0,
            })
            .collect();
        assert_eq!(classify(&diagonal), Gesture::Unknown);
    }

    #[test]
    fn single_sample_two_finger_trace_is_unknown() {
        let trace = vec![
            TouchPoint {
                x: 0.3,
                y: 0.5,
                finger: 0,
            },
            TouchPoint {
                x: 0.7,
                y: 0.5,
                finger: 1,
            },
        ];
        assert_eq!(classify(&trace), Gesture::Unknown);
    }
}
