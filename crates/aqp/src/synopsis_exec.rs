//! AQUA-style synopsis-backed answering (Acharya, Gibbons, Poosala,
//! Ramaswamy — SIGMOD'99 \[5\]).
//!
//! Where BlinkDB keeps *row samples*, AQUA keeps *statistical synopses*
//! and answers aggregate queries from them without touching base data at
//! all: a histogram answers range COUNTs, a sketch answers point
//! frequencies, an HLL answers COUNT DISTINCT. This module maintains a
//! synopsis set per table column and routes the queries each synopsis
//! can serve, reporting which synopsis answered and its expected error
//! regime.

use std::collections::HashMap;

use explore_storage::{Column, Result, StorageError, Table};
use explore_synopses::{CountMinSketch, Histogram, HyperLogLog};

/// Which synopsis produced an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnsweredBy {
    EquiDepthHistogram,
    CountMinSketch,
    HyperLogLog,
}

/// An answer served from synopses only.
#[derive(Debug, Clone, Copy)]
pub struct SynopsisAnswer {
    pub estimate: f64,
    pub answered_by: AnsweredBy,
}

/// Per-column synopsis state.
#[derive(Debug)]
struct ColumnSynopses {
    histogram: Option<Histogram>,
    sketch: Option<CountMinSketch>,
    distinct: Option<HyperLogLog>,
}

/// A synopsis set covering one table.
#[derive(Debug)]
pub struct SynopsisStore {
    columns: HashMap<String, ColumnSynopses>,
    rows: usize,
}

impl SynopsisStore {
    /// Build synopses for every column of `table`: an equi-depth
    /// histogram per numeric column (`buckets` buckets), and a count-min
    /// sketch + HyperLogLog per string column.
    pub fn build(table: &Table, buckets: usize) -> Self {
        let mut columns = HashMap::new();
        for (i, field) in table.schema().fields().iter().enumerate() {
            let syn = match table.column_at(i) {
                Column::Utf8(values) => {
                    let mut sketch = CountMinSketch::with_error(0.001, 0.01);
                    let mut distinct = HyperLogLog::new(12);
                    for v in values {
                        sketch.insert_str(v);
                        distinct.insert_str(v);
                    }
                    ColumnSynopses {
                        histogram: None,
                        sketch: Some(sketch),
                        distinct: Some(distinct),
                    }
                }
                col => {
                    let data: Vec<f64> = (0..table.num_rows())
                        .filter_map(|r| col.numeric_at(r))
                        .collect();
                    ColumnSynopses {
                        histogram: Some(Histogram::equi_depth(&data, buckets)),
                        sketch: None,
                        distinct: None,
                    }
                }
            };
            columns.insert(field.name().to_owned(), syn);
        }
        SynopsisStore {
            columns,
            rows: table.num_rows(),
        }
    }

    /// Base-table rows summarized.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Estimate `COUNT(*) WHERE low <= column < high` from the column's
    /// histogram.
    pub fn range_count(&self, column: &str, low: f64, high: f64) -> Result<SynopsisAnswer> {
        let syn = self.get(column)?;
        let hist = syn.histogram.as_ref().ok_or_else(|| {
            StorageError::InvalidQuery(format!("no histogram on {column} (string column?)"))
        })?;
        Ok(SynopsisAnswer {
            estimate: hist.estimate_range(low, high),
            answered_by: AnsweredBy::EquiDepthHistogram,
        })
    }

    /// Estimate a quantile of a numeric column.
    pub fn quantile(&self, column: &str, q: f64) -> Result<SynopsisAnswer> {
        let syn = self.get(column)?;
        let hist = syn
            .histogram
            .as_ref()
            .ok_or_else(|| StorageError::InvalidQuery(format!("no histogram on {column}")))?;
        Ok(SynopsisAnswer {
            estimate: hist.estimate_quantile(q),
            answered_by: AnsweredBy::EquiDepthHistogram,
        })
    }

    /// Estimate `COUNT(*) WHERE column = value` for a string column from
    /// its count-min sketch (never an underestimate).
    pub fn point_count(&self, column: &str, value: &str) -> Result<SynopsisAnswer> {
        let syn = self.get(column)?;
        let sketch = syn.sketch.as_ref().ok_or_else(|| {
            StorageError::InvalidQuery(format!("no sketch on {column} (numeric column?)"))
        })?;
        Ok(SynopsisAnswer {
            estimate: sketch.estimate_str(value) as f64,
            answered_by: AnsweredBy::CountMinSketch,
        })
    }

    /// Estimate `COUNT(DISTINCT column)` for a string column.
    pub fn distinct_count(&self, column: &str) -> Result<SynopsisAnswer> {
        let syn = self.get(column)?;
        let hll = syn.distinct.as_ref().ok_or_else(|| {
            StorageError::InvalidQuery(format!("no distinct-count synopsis on {column}"))
        })?;
        Ok(SynopsisAnswer {
            estimate: hll.estimate(),
            answered_by: AnsweredBy::HyperLogLog,
        })
    }

    fn get(&self, column: &str) -> Result<&ColumnSynopses> {
        self.columns
            .get(column)
            .ok_or_else(|| StorageError::UnknownColumn(column.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore_storage::gen::{sales_table, SalesConfig};
    use explore_storage::Predicate;

    fn setup() -> (Table, SynopsisStore) {
        let t = sales_table(&SalesConfig {
            rows: 50_000,
            ..SalesConfig::default()
        });
        let store = SynopsisStore::build(&t, 64);
        (t, store)
    }

    #[test]
    fn range_counts_are_accurate_without_touching_base_data() {
        let (t, store) = setup();
        for (lo, hi) in [(10.0, 100.0), (100.0, 300.0), (0.0, 1e9)] {
            let truth = Predicate::range("price", lo, hi)
                .evaluate(&t)
                .unwrap()
                .len() as f64;
            let ans = store.range_count("price", lo, hi).unwrap();
            assert_eq!(ans.answered_by, AnsweredBy::EquiDepthHistogram);
            let rel = (ans.estimate - truth).abs() / truth.max(1.0);
            assert!(rel < 0.1, "[{lo},{hi}): est {} truth {truth}", ans.estimate);
        }
    }

    #[test]
    fn quantiles_track_sorted_truth() {
        let (t, store) = setup();
        let mut prices = t.column("price").unwrap().as_f64().unwrap().to_vec();
        prices.sort_by(f64::total_cmp);
        for q in [0.25, 0.5, 0.9] {
            let truth = prices[(q * (prices.len() - 1) as f64) as usize];
            let est = store.quantile("price", q).unwrap().estimate;
            assert!(
                (est - truth).abs() / truth < 0.1,
                "q={q}: est {est} truth {truth}"
            );
        }
    }

    #[test]
    fn point_counts_never_underestimate() {
        let (t, store) = setup();
        let regions = t.column("region").unwrap().as_utf8().unwrap();
        for label in ["region0", "region3", "never-seen"] {
            let truth = regions.iter().filter(|r| r.as_str() == label).count() as f64;
            let ans = store.point_count("region", label).unwrap();
            assert_eq!(ans.answered_by, AnsweredBy::CountMinSketch);
            assert!(ans.estimate >= truth, "{label}");
            // And with a 0.1% sketch, the overestimate is tiny.
            assert!(ans.estimate <= truth + 0.002 * 50_000.0, "{label}");
        }
    }

    #[test]
    fn distinct_counts_are_close() {
        let (t, store) = setup();
        let truth = {
            let mut v: Vec<&String> = t
                .column("product")
                .unwrap()
                .as_utf8()
                .unwrap()
                .iter()
                .collect();
            v.sort();
            v.dedup();
            v.len() as f64
        };
        let ans = store.distinct_count("product").unwrap();
        assert_eq!(ans.answered_by, AnsweredBy::HyperLogLog);
        assert!((ans.estimate - truth).abs() / truth < 0.1);
    }

    #[test]
    fn routing_errors_are_clear() {
        let (_, store) = setup();
        assert!(store.range_count("region", 0.0, 1.0).is_err(), "string col");
        assert!(store.point_count("price", "x").is_err(), "numeric col");
        assert!(store.distinct_count("qty").is_err());
        assert!(store.range_count("missing", 0.0, 1.0).is_err());
        assert_eq!(store.rows(), 50_000);
    }
}
