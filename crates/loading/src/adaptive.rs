//! The NoDB-style adaptive loader (Alagiannis et al., SIGMOD'12 \[8\];
//! CIDR "Here are my data files" \[28\]) with invisible loading \[2\].
//!
//! Queries run directly on the raw file. Three mechanisms amortize the
//! parsing cost exactly where queries look:
//!
//! * **Positional map** — while tokenizing a row to reach field `j`, the
//!   byte offsets of all fields passed are recorded, so a later access
//!   to any field `<= j` jumps straight to its bytes, and an access to a
//!   deeper field resumes tokenizing from the last known offset instead
//!   of the line start.
//! * **Column cache** — the first query that needs a column parses and
//!   materializes it; subsequent queries run at in-memory speed
//!   ("invisible loading": the database loads itself as a side effect of
//!   the workload).
//! * **Selective parsing** — columns never touched are never parsed.

use std::sync::Arc;

use explore_exec::QueryCtx;
use explore_fault::FailPoints;
use explore_storage::csv::push_parsed;
use explore_storage::{Column, Field, Query, Result, Schema, StorageError, Table, Value};

use crate::raw::RawCsv;

/// Work metrics distinguishing the adaptive loader from the baselines.
#[derive(Debug, Default, Clone, Copy)]
pub struct LoadMetrics {
    /// Fields tokenized (comma scans) so far.
    pub fields_tokenized: u64,
    /// Fields parsed (string → typed value) so far.
    pub fields_parsed: u64,
    /// Positional-map hits (field located without tokenizing).
    pub map_hits: u64,
    /// Queries answered entirely from cached columns.
    pub cached_queries: u64,
    /// Rows excluded under [`ErrorPolicy::SkipRow`].
    pub rows_skipped: u64,
}

/// What to do when a row fails to parse (malformed field, short row, or
/// an injected `load.parse` fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorPolicy {
    /// Surface the parse error to the caller (the default — queries on
    /// clean files are unaffected either way).
    #[default]
    Abort,
    /// Drop the offending row from every query answer and keep going;
    /// each skipped row is counted in [`LoadMetrics::rows_skipped`].
    SkipRow,
}

/// An adaptive loader over one raw CSV file.
#[derive(Debug)]
pub struct AdaptiveLoader {
    raw: RawCsv,
    /// Positional map: `offsets[row * ncols + field]` = byte offset of
    /// the field start *within its line*; valid for `field <
    /// known[row]`.
    offsets: Vec<u32>,
    known: Vec<u16>,
    /// Parsed column cache.
    cache: Vec<Option<Column>>,
    /// Materialized views keyed by the referenced column set, so
    /// repeated query shapes never re-clone column data. Bounded by the
    /// number of distinct shapes in a session (small in practice).
    view_cache: std::collections::HashMap<Vec<String>, Table>,
    metrics: LoadMetrics,
    /// How row-level parse failures are handled.
    error_policy: ErrorPolicy,
    /// Rows excluded from query answers under [`ErrorPolicy::SkipRow`].
    /// Columns keep a typed placeholder at dead rows so lengths stay
    /// aligned; views filter them out.
    dead: Vec<bool>,
    /// Fail-point registry for the tokenizer/positional-map hazard
    /// sites, when attached.
    faults: Option<Arc<FailPoints>>,
}

impl AdaptiveLoader {
    /// Attach to a raw file.
    pub fn new(raw: RawCsv) -> Self {
        let rows = raw.num_rows();
        let ncols = raw.schema().len();
        AdaptiveLoader {
            raw,
            offsets: vec![0; rows * ncols],
            known: vec![0; rows],
            cache: vec![None; ncols],
            view_cache: std::collections::HashMap::new(),
            metrics: LoadMetrics::default(),
            error_policy: ErrorPolicy::default(),
            dead: vec![false; rows],
            faults: None,
        }
    }

    /// Set how row-level parse failures are handled.
    pub fn set_error_policy(&mut self, policy: ErrorPolicy) {
        self.error_policy = policy;
    }

    /// Current parse-failure policy.
    pub fn error_policy(&self) -> ErrorPolicy {
        self.error_policy
    }

    /// Attach (or detach) a fail-point registry. Armed points:
    /// `load.parse` makes a field read parse as malformed (handled per
    /// the [`ErrorPolicy`]), `load.map` makes one positional-map read
    /// fall back to tokenizing the line from its start (bit-identical
    /// answer, just slower).
    pub fn set_faults(&mut self, faults: Option<Arc<FailPoints>>) {
        self.faults = faults;
    }

    /// Does the named fail point trigger? One `Option` check when no
    /// registry is attached.
    fn fire(&self, name: &str) -> bool {
        self.faults.as_ref().is_some_and(|f| f.fire(name))
    }

    /// Rows currently excluded under [`ErrorPolicy::SkipRow`].
    pub fn rows_skipped(&self) -> u64 {
        self.metrics.rows_skipped
    }

    /// The file's schema.
    pub fn schema(&self) -> &Schema {
        self.raw.schema()
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.raw.num_rows()
    }

    /// Work metrics so far.
    pub fn metrics(&self) -> LoadMetrics {
        self.metrics
    }

    /// Number of columns materialized so far (invisible-loading progress).
    pub fn columns_loaded(&self) -> usize {
        self.cache.iter().filter(|c| c.is_some()).count()
    }

    /// True when the whole file has been migrated into memory.
    pub fn fully_loaded(&self) -> bool {
        self.cache.iter().all(Option::is_some)
    }

    /// Ensure a column is parsed and cached; returns whether any file
    /// work happened.
    pub fn ensure_column(&mut self, name: &str) -> Result<bool> {
        let fi = self.raw.schema().index_of(name)?;
        if self.cache[fi].is_some() {
            return Ok(false);
        }
        let dt = self.raw.schema().fields()[fi].data_type();
        let mut col = Column::with_capacity(dt, self.raw.num_rows());
        for row in 0..self.raw.num_rows() {
            let (start, end) = self.locate_field(row, fi);
            let line = self.raw.line(row);
            let parsed = if self.fire("load.parse") {
                Err(StorageError::Csv {
                    line: row + 2,
                    message: "injected parse fault".into(),
                })
            } else {
                push_parsed(&mut col, &line[start..end], row + 2)
            };
            match parsed {
                Ok(()) => {}
                Err(e) => match self.error_policy {
                    // Abort mid-column leaves valid state: the cache
                    // slot stays `None` and the positional map only
                    // ever gained accurate offsets.
                    ErrorPolicy::Abort => return Err(e),
                    ErrorPolicy::SkipRow => {
                        // Keep column lengths aligned with a typed
                        // placeholder; the row is filtered out of every
                        // view below.
                        col.push(match dt {
                            explore_storage::DataType::Int64 => Value::Int(0),
                            explore_storage::DataType::Float64 => Value::Float(0.0),
                            explore_storage::DataType::Utf8 => Value::Str(String::new()),
                        })?;
                        if !self.dead[row] {
                            self.dead[row] = true;
                            self.metrics.rows_skipped += 1;
                            // Views built before this row died include it.
                            self.view_cache.clear();
                        }
                    }
                },
            }
            self.metrics.fields_parsed += 1;
        }
        self.cache[fi] = Some(col);
        Ok(true)
    }

    /// Byte range (within the line) of `field` in `row`, tokenizing as
    /// little as possible and extending the positional map.
    fn locate_field(&mut self, row: usize, field: usize) -> (usize, usize) {
        if self.fire("load.map") {
            // Injected positional-map failure: ignore the map for this
            // access and tokenize the line from its start. Same bytes
            // come back and the map is left untouched, so a corrupted
            // or unavailable map entry can never corrupt an answer.
            let line = self.raw.line(row);
            let mut start = 0usize;
            for _ in 0..field {
                self.metrics.fields_tokenized += 1;
                match line[start..].find(',') {
                    Some(i) => start += i + 1,
                    None => break, // short row; parse error surfaces later
                }
            }
            let end = line[start..].find(',').map_or(line.len(), |i| start + i);
            return (start, end);
        }
        let ncols = self.raw.schema().len();
        let line = self.raw.line(row);
        let known = self.known[row] as usize;
        if field < known {
            self.metrics.map_hits += 1;
            let start = self.offsets[row * ncols + field] as usize;
            let end = if field + 1 < known {
                self.offsets[row * ncols + field + 1] as usize - 1
            } else {
                line[start..].find(',').map_or(line.len(), |i| start + i)
            };
            return (start, end);
        }
        // Resume tokenizing from the last known field start.
        let mut pos = if known == 0 {
            0
        } else {
            self.offsets[row * ncols + known - 1] as usize
        };
        let mut f = known.saturating_sub(1);
        if known == 0 {
            self.offsets[row * ncols] = 0;
            self.known[row] = 1;
            f = 0;
        }
        // Walk commas until `field` is known.
        while f < field {
            let comma = line[pos..].find(',').map(|i| pos + i);
            self.metrics.fields_tokenized += 1;
            match comma {
                Some(c) => {
                    pos = c + 1;
                    f += 1;
                    self.offsets[row * ncols + f] = pos as u32;
                    self.known[row] = self.known[row].max((f + 1) as u16);
                }
                None => break, // short row; parse error surfaces later
            }
        }
        let start = self.offsets[row * ncols + field] as usize;
        let end = line[start..].find(',').map_or(line.len(), |i| start + i);
        (start, end)
    }

    /// Run a query directly against the raw file, loading exactly the
    /// referenced columns first. The context's cancellation tokens are
    /// checked before each column load — the loader's unit of work — so
    /// a deadline stops invisible loading between columns, leaving the
    /// cache and positional map valid for the next query.
    pub fn query(&mut self, query: &Query, ctx: &QueryCtx) -> Result<Table> {
        let needed: Vec<String> = query
            .referenced_columns()
            .into_iter()
            .map(str::to_owned)
            .collect();
        let mut any_loaded = false;
        for name in &needed {
            ctx.check_cancel()?;
            any_loaded |= self.ensure_column(name)?;
        }
        if !any_loaded {
            self.metrics.cached_queries += 1;
        }
        // Build a view table of the needed columns only (clones Column
        // handles once per query; the underlying data moved at load time).
        let names: Vec<String> = if needed.is_empty() {
            self.raw
                .schema()
                .names()
                .iter()
                .map(|s| s.to_string())
                .collect()
        } else {
            needed
        };
        if !self.view_cache.contains_key(&names) {
            let mut fields = Vec::with_capacity(names.len());
            let mut cols = Vec::with_capacity(names.len());
            for name in &names {
                self.ensure_column(name)?;
                let fi = self.raw.schema().index_of(name)?;
                fields.push(Field::new(
                    name.clone(),
                    self.raw.schema().fields()[fi].data_type(),
                ));
                match self.cache[fi].clone() {
                    Some(col) => cols.push(col),
                    None => {
                        return Err(StorageError::Internal(format!(
                            "column cache lost {name} after ensure_column"
                        )))
                    }
                }
            }
            let mut view = Table::new(Schema::new(fields)?, cols)?;
            if self.dead.iter().any(|&d| d) {
                // Skipped rows are excluded once at view-build time;
                // the filtered view is what gets cached.
                let live: Vec<u32> = (0..self.raw.num_rows())
                    .filter(|&r| !self.dead[r])
                    .map(|r| r as u32)
                    .collect();
                view = view.gather(&live);
            }
            self.view_cache.insert(names.clone(), view);
        }
        let view = self
            .view_cache
            .get(&names)
            .ok_or_else(|| StorageError::Internal("view cache lost freshly built view".into()))?;
        query.run(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore_storage::csv::write_csv;
    use explore_storage::gen::{sales_table, SalesConfig};
    use explore_storage::{AggFunc, Predicate};

    fn loader(rows: usize) -> (Table, AdaptiveLoader) {
        let t = sales_table(&SalesConfig {
            rows,
            ..SalesConfig::default()
        });
        let raw = RawCsv::new(write_csv(&t), t.schema().clone()).unwrap();
        (t, AdaptiveLoader::new(raw))
    }

    #[test]
    fn query_results_match_eager_load() {
        let (t, mut l) = loader(500);
        let q = Query::new()
            .filter(Predicate::range("price", 50.0, 150.0))
            .group("region")
            .agg(AggFunc::Sum, "qty");
        assert_eq!(l.query(&q, &QueryCtx::none()).unwrap(), q.run(&t).unwrap());
    }

    #[test]
    fn untouched_columns_are_never_parsed() {
        let (_, mut l) = loader(300);
        let q = Query::new().agg(AggFunc::Avg, "price");
        l.query(&q, &QueryCtx::none()).unwrap();
        assert_eq!(l.columns_loaded(), 1);
        assert!(!l.fully_loaded());
        // price is field 3 of 6: parsed fields = rows × 1.
        assert_eq!(l.metrics().fields_parsed, 300);
    }

    #[test]
    fn repeated_query_is_answered_from_cache() {
        let (_, mut l) = loader(300);
        let q = Query::new()
            .filter(Predicate::eq("region", "region0"))
            .agg(AggFunc::Count, "region");
        l.query(&q, &QueryCtx::none()).unwrap();
        let toks = l.metrics().fields_tokenized;
        l.query(&q, &QueryCtx::none()).unwrap();
        let m = l.metrics();
        assert_eq!(m.fields_tokenized, toks, "no new tokenization");
        assert_eq!(m.cached_queries, 1);
    }

    #[test]
    fn positional_map_accelerates_deeper_fields() {
        // Load field 3 (price) first, then field 5 (qty): the second
        // load should resume from the recorded offsets, and accessing
        // field 0 afterwards is pure map hits.
        let (t, mut l) = loader(200);
        l.ensure_column("price").unwrap();
        let toks_after_price = l.metrics().fields_tokenized;
        l.ensure_column("qty").unwrap();
        let toks_after_qty = l.metrics().fields_tokenized;
        // qty (field 5) from price (field 3): 2 more commas per row,
        // not 5.
        assert_eq!(toks_after_qty - toks_after_price, 2 * 200);
        let hits_before = l.metrics().map_hits;
        l.ensure_column("region").unwrap();
        assert_eq!(l.metrics().map_hits - hits_before, 200, "field 0 is free");
        assert_eq!(
            l.query(&Query::new().agg(AggFunc::Sum, "qty"), &QueryCtx::none())
                .unwrap(),
            Query::new().agg(AggFunc::Sum, "qty").run(&t).unwrap()
        );
    }

    #[test]
    fn invisible_loading_completes_after_touching_everything() {
        let (t, mut l) = loader(100);
        for name in t.schema().names() {
            l.ensure_column(name).unwrap();
        }
        assert!(l.fully_loaded());
        // Everything now answers from memory.
        let q = Query::new().select(&["region", "qty"]).take(5);
        let before = l.metrics().fields_tokenized;
        l.query(&q, &QueryCtx::none()).unwrap();
        assert_eq!(l.metrics().fields_tokenized, before);
    }

    #[test]
    fn first_query_cost_is_proportional_to_referenced_columns() {
        let (_, mut narrow) = loader(400);
        narrow
            .query(
                &Query::new().agg(AggFunc::Count, "region"),
                &QueryCtx::none(),
            )
            .unwrap();
        let (_, mut wide) = loader(400);
        wide.query(
            &Query::new()
                .group("region")
                .agg(AggFunc::Sum, "qty")
                .agg(AggFunc::Avg, "price"),
            &QueryCtx::none(),
        )
        .unwrap();
        assert!(
            narrow.metrics().fields_parsed < wide.metrics().fields_parsed,
            "narrow {} vs wide {}",
            narrow.metrics().fields_parsed,
            wide.metrics().fields_parsed
        );
    }

    #[test]
    fn unknown_column_errors() {
        let (_, mut l) = loader(10);
        assert!(l.ensure_column("nope").is_err());
    }
}
