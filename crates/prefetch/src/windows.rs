//! Semantic windows (Kalinin, Cetintemel, Zdonik — SIGMOD'14 \[36\]).
//!
//! A semantic-window query asks for all `w × h` cell windows whose
//! aggregate satisfies a content predicate ("show me 3×3 sky regions
//! with more than 1000 bright objects"). Two evaluation strategies:
//!
//! * **Naive** — recompute the aggregate of every window from its cells:
//!   O(W·H·w·h) cell fetches.
//! * **Prefix-sum** — one pass builds 2-D prefix sums, then every window
//!   is O(1): the incremental-sharing idea underlying the paper's online
//!   algorithm.

use crate::grid::GridIndex;

/// A qualifying window: its cell origin and aggregate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowHit {
    pub cx: usize,
    pub cy: usize,
    pub count: u64,
    pub sum: f64,
}

/// Find all `w × h` windows with `count >= min_count`, naively.
/// Returns hits and the total cell-fetch cost in points touched.
pub fn find_windows_naive(
    grid: &GridIndex,
    w: usize,
    h: usize,
    min_count: u64,
) -> (Vec<WindowHit>, u64) {
    let mut hits = Vec::new();
    let mut cost = 0u64;
    if w == 0 || h == 0 || w > grid.cols() || h > grid.rows() {
        return (hits, cost);
    }
    for cy in 0..=(grid.rows() - h) {
        for cx in 0..=(grid.cols() - w) {
            let mut count = 0u64;
            let mut sum = 0.0;
            for dy in 0..h {
                for dx in 0..w {
                    let (agg, c) = grid.fetch_cell(cx + dx, cy + dy);
                    cost += c;
                    count += agg.count;
                    sum += agg.sum;
                }
            }
            if count >= min_count {
                hits.push(WindowHit { cx, cy, count, sum });
            }
        }
    }
    (hits, cost)
}

/// Find all `w × h` windows with `count >= min_count` via 2-D prefix
/// sums: every cell is fetched exactly once.
pub fn find_windows_prefix(
    grid: &GridIndex,
    w: usize,
    h: usize,
    min_count: u64,
) -> (Vec<WindowHit>, u64) {
    let mut hits = Vec::new();
    if w == 0 || h == 0 || w > grid.cols() || h > grid.rows() {
        return (hits, 0);
    }
    let cols = grid.cols();
    let rows = grid.rows();
    // Prefix arrays with a zero border: p[y+1][x+1] = sum over [0..=y][0..=x].
    let stride = cols + 1;
    let mut pc = vec![0u64; stride * (rows + 1)];
    let mut ps = vec![0f64; stride * (rows + 1)];
    let mut cost = 0u64;
    for cy in 0..rows {
        for cx in 0..cols {
            let (agg, c) = grid.fetch_cell(cx, cy);
            cost += c;
            let i = (cy + 1) * stride + (cx + 1);
            pc[i] = agg.count + pc[i - 1] + pc[i - stride] - pc[i - stride - 1];
            ps[i] = agg.sum + ps[i - 1] + ps[i - stride] - ps[i - stride - 1];
        }
    }
    let rect_count = |x0: usize, y0: usize, x1: usize, y1: usize| -> u64 {
        pc[y1 * stride + x1] + pc[y0 * stride + x0] - pc[y0 * stride + x1] - pc[y1 * stride + x0]
    };
    let rect_sum = |x0: usize, y0: usize, x1: usize, y1: usize| -> f64 {
        ps[y1 * stride + x1] + ps[y0 * stride + x0] - ps[y0 * stride + x1] - ps[y1 * stride + x0]
    };
    for cy in 0..=(rows - h) {
        for cx in 0..=(cols - w) {
            let count = rect_count(cx, cy, cx + w, cy + h);
            if count >= min_count {
                hits.push(WindowHit {
                    cx,
                    cy,
                    count,
                    sum: rect_sum(cx, cy, cx + w, cy + h),
                });
            }
        }
    }
    (hits, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore_storage::gen::sky_table;

    fn grid() -> GridIndex {
        let t = sky_table(20_000, 4, 100.0, 1);
        GridIndex::build(&t, "x", "y", "mag", 20, 20).unwrap()
    }

    #[test]
    fn naive_and_prefix_agree() {
        let g = grid();
        for &(w, h, t) in &[(3usize, 3usize, 800u64), (2, 4, 500), (1, 1, 200)] {
            let (mut a, _) = find_windows_naive(&g, w, h, t);
            let (mut b, _) = find_windows_prefix(&g, w, h, t);
            let key = |x: &WindowHit| (x.cx, x.cy);
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a.len(), b.len(), "w={w} h={h} t={t}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(key(x), key(y));
                assert_eq!(x.count, y.count);
                assert!((x.sum - y.sum).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn prefix_cost_is_one_pass() {
        let g = grid();
        let (_, naive_cost) = find_windows_naive(&g, 3, 3, 800);
        let (_, prefix_cost) = find_windows_prefix(&g, 3, 3, 800);
        assert_eq!(prefix_cost, g.total_points() as u64);
        assert!(
            naive_cost > prefix_cost * 5,
            "naive {naive_cost} vs prefix {prefix_cost}"
        );
    }

    #[test]
    fn clusters_produce_hits() {
        let g = grid();
        // 20k points over 400 cells: average window of 9 cells holds
        // ~450 points, clusters far more.
        let (hits, _) = find_windows_prefix(&g, 3, 3, 1000);
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|h| h.count >= 1000));
    }

    #[test]
    fn degenerate_window_sizes() {
        let g = grid();
        assert!(find_windows_naive(&g, 0, 3, 1).0.is_empty());
        assert!(find_windows_prefix(&g, 99, 3, 1).0.is_empty());
        // Full-grid window = exactly one hit when threshold permits.
        let (hits, _) = find_windows_prefix(&g, 20, 20, 0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].count, 20_000);
    }

    #[test]
    fn threshold_monotonicity() {
        let g = grid();
        let low = find_windows_prefix(&g, 2, 2, 100).0.len();
        let high = find_windows_prefix(&g, 2, 2, 1000).0.len();
        assert!(low >= high);
    }
}
