//! "Here are my data files. Here are my queries. Where are my results?"
//!
//! ```bash
//! cargo run --release --example raw_files
//! ```
//!
//! The Database Layer story: a fresh CSV lands on disk and the analyst
//! starts querying *immediately* — no load phase. Adaptive loading
//! parses only what queries touch; adaptive indexing cracks the touched
//! columns; adaptive storage rearranges layouts as the access pattern
//! shifts from analytics to tuple fetches.

use exploration::cracking::{CrackerColumn, ScanBaseline, SortedIndex};
use exploration::exec::QueryCtx;
use exploration::layout::{AccessOp, AdaptiveStore, LayoutUsed};
use exploration::loading::{eager_load, AdaptiveLoader, RawCsv};
use exploration::storage::csv::write_csv;
use exploration::storage::gen::{sales_table, SalesConfig};
use exploration::storage::{AggFunc, Predicate, Query};
use std::time::Instant;

fn main() {
    // The "file on disk".
    let ground_truth = sales_table(&SalesConfig {
        rows: 300_000,
        ..SalesConfig::default()
    });
    let csv = write_csv(&ground_truth);
    println!(
        "== raw CSV: {} rows, {:.1} MB\n",
        ground_truth.num_rows(),
        csv.len() as f64 / 1e6
    );

    // Baseline: eager full load, then query.
    let raw = RawCsv::new(csv.clone(), ground_truth.schema().clone()).expect("raw");
    let t0 = Instant::now();
    let loaded = eager_load(&raw).expect("load");
    let eager_load_time = t0.elapsed();
    let q = Query::new()
        .filter(Predicate::eq("region", "region0"))
        .agg(AggFunc::Avg, "price");
    let t0 = Instant::now();
    let eager_answer = q.run(&loaded).expect("query");
    let eager_query_time = t0.elapsed();
    println!("== eager:    load {eager_load_time:?} + query {eager_query_time:?}");

    // NoDB: query the raw file directly.
    let raw = RawCsv::new(csv, ground_truth.schema().clone()).expect("raw");
    let mut loader = AdaptiveLoader::new(raw);
    let t0 = Instant::now();
    let adaptive_answer = loader.query(&q, &QueryCtx::none()).expect("query");
    let first = t0.elapsed();
    let t0 = Instant::now();
    loader.query(&q, &QueryCtx::none()).expect("query");
    let second = t0.elapsed();
    assert_eq!(eager_answer, adaptive_answer);
    let (cols, total) = (loader.columns_loaded(), loader.schema().len());
    println!(
        "== adaptive: first query {first:?} (parsed {cols}/{total} columns), repeat {second:?}"
    );
    println!(
        "   metrics: {} fields tokenized, {} parsed, {} map hits\n",
        loader.metrics().fields_tokenized,
        loader.metrics().fields_parsed,
        loader.metrics().map_hits
    );

    // Adaptive indexing on the now-loaded qty column.
    let qty = ground_truth
        .column("qty")
        .expect("col")
        .as_i64()
        .expect("i64")
        .to_vec();
    let scan = ScanBaseline::new(qty.clone());
    let t0 = Instant::now();
    let sorted = SortedIndex::build(&qty);
    let sort_build = t0.elapsed();
    let mut cracker = CrackerColumn::new(qty);
    println!("== adaptive indexing on qty (vs sort-first: build {sort_build:?}):");
    for (i, (lo, hi)) in [(2, 5), (3, 7), (2, 5), (1, 4), (3, 7)].iter().enumerate() {
        let t0 = Instant::now();
        let n = cracker.query_count(*lo, *hi);
        let crack_t = t0.elapsed();
        let t0 = Instant::now();
        let n2 = scan.query_count(*lo, *hi);
        let scan_t = t0.elapsed();
        let t0 = Instant::now();
        let n3 = sorted.query_count(*lo, *hi);
        let index_t = t0.elapsed();
        assert_eq!(n, n2);
        assert_eq!(n, n3);
        println!(
            "   q{}: [{lo},{hi}) → {n} rows | crack {crack_t:?} scan {scan_t:?} b-search {index_t:?}",
            i + 1
        );
    }
    println!("   cracker now holds {} pieces\n", cracker.num_pieces());

    // Adaptive storage: the workload shifts to tuple reconstruction.
    let mut store = AdaptiveStore::new(ground_truth);
    let fetch = AccessOp::FetchRows {
        start: 1000,
        len: 5000,
        columns: vec!["price".into(), "discount".into(), "qty".into()],
    };
    println!("== adaptive storage under a tuple-fetch workload:");
    for i in 0..5 {
        let t0 = Instant::now();
        let r = store.execute(&fetch).expect("fetch");
        let dt = t0.elapsed();
        let layout = match r.layout {
            LayoutUsed::Columnar => "columnar",
            LayoutUsed::RowGroup => "row-group",
        };
        println!("   fetch {}: {layout:<9} {dt:?}", i + 1);
    }
    println!(
        "   {} auxiliary layout(s) materialized after {} ops",
        store.num_layouts(),
        store.monitor().distinct_patterns()
    );
}
