//! A minimal, API-compatible stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `parking_lot` it actually uses, backed by
//! `std::sync`. Poisoning is ignored (parking_lot locks do not poison):
//! a panic while holding a lock leaves the protected value in place, and
//! later acquisitions simply proceed — matching parking_lot semantics.
//!
//! Supported surface: [`Mutex`] (`new`, `lock`, `try_lock`, `into_inner`,
//! `get_mut`) and [`RwLock`] (`new`, `read`, `write`, `into_inner`,
//! `get_mut`), plus `Debug`/`Default` impls on both.

use std::fmt;
use std::sync::{self, PoisonError, TryLockError};

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive; `lock` never returns a poison error.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Reader-writer lock; `read`/`write` never return poison errors.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(TryLockError::Poisoned(p)) => {
                f.debug_tuple("RwLock").field(&&*p.into_inner()).finish()
            }
            Err(TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn locks_survive_panics_without_poisoning() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);

        let l = Arc::new(RwLock::new(0));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*l.read(), 0);
    }
}
