//! The sharded mirror of one registered table.
//!
//! A [`ShardedTable`] partitions a table's rows into contiguous ranges
//! ("shards"), each holding a bitwise copy of its rows plus private
//! adaptive-index state. The canonical table stays in the engine
//! catalog — every non-query subsystem (samples, synopses, SeeDB,
//! facets, raw loading) keeps reading it unchanged — and the mirror is
//! kept in sync by routing each mutation to its owning shard.
//!
//! Each shard owns a **cache-epoch scope** of its own: cache entries
//! for shard `i` of table `t` live under the scoped table name
//! [`scoped_name`]`(t, i)`, so a mutation to one shard bumps only that
//! shard's epoch and the other shards' entries stay live. That epoch
//! locality is the point of sharding a cache-fronted engine.
//!
//! **Locking.** Every shard carries its own `RwLock`, so sessions that
//! mutate *disjoint* shards of one table proceed concurrently, and
//! queries never block behind a mutation for longer than an `Arc`
//! clone. The two multi-shard operations acquire their guards in
//! ascending shard order and hold them together — ordered two-phase
//! locking, so they serialize against each other without deadlock:
//!
//! * [`ShardedTable::snapshot`] (read guards over every shard) gives a
//!   query a consistent cut of the whole shard set;
//! * [`ShardedTable::update_where`] (write guards over the touched
//!   shards) applies a multi-shard update atomically with respect to
//!   snapshots — no snapshot observes half of one update.
//!
//! Single-shard mutations ([`ShardedTable::push_row`],
//! [`ShardedTable::append_rows`]) lock only the last shard.

use std::collections::HashMap;
use std::sync::Arc;

use explore_cracking::CrackerColumn;
use explore_exec::morsel_rows_for;
use explore_fault::CancelToken;
use explore_storage::{Result, StorageError, Table, Value};
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::policy::ShardConfig;

/// The cache-epoch scope name of shard `shard` of table `table`. The
/// `#` separator cannot appear in a registered table name used through
/// the engine's public API, so scopes never collide with real tables.
pub fn scoped_name(table: &str, shard: usize) -> String {
    format!("{table}#s{shard}")
}

/// One contiguous row-range shard: a bitwise copy of the base table's
/// rows `[start, start + rows)` plus this shard's private adaptive
/// indexes, behind the shard's own reader-writer lock.
#[derive(Debug)]
pub struct Shard {
    /// Global row id of this shard's first row (fixed at build).
    start: usize,
    state: RwLock<ShardState>,
}

/// A shard's lock-protected contents. The table is `Arc`-shared so a
/// snapshot is one refcount bump; mutations go through `Arc::make_mut`
/// (in place while unshared, copy-on-write while a snapshot is live),
/// so a reader's snapshot is immutable by construction — torn reads
/// cannot happen.
#[derive(Debug)]
struct ShardState {
    table: Arc<Table>,
    /// Per-column cracker state, converging independently per shard.
    crackers: HashMap<String, CrackerColumn>,
}

/// Point-in-time statistics of one shard, via
/// [`ShardedTable::stats`] / `ExploreDb::shard_stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index within the table.
    pub shard: usize,
    /// Global row id of the shard's first row.
    pub start: usize,
    /// Rows currently held by the shard.
    pub rows: usize,
    /// The shard's cache epoch (its scoped name's epoch counter).
    pub epoch: u64,
    /// Columns with cracker state in this shard.
    pub crackers: usize,
    /// Total cracker pieces across this shard's columns.
    pub pieces: usize,
}

/// A consistent cut of a sharded table: every shard's table `Arc` plus
/// its global start row, captured while holding all shard read guards
/// (ascending order). Queries fan out over the snapshot lock-free; a
/// concurrent mutation copy-on-writes new shard tables and can never
/// reach into these.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    name: String,
    tables: Vec<Arc<Table>>,
    starts: Vec<usize>,
}

impl ShardSnapshot {
    /// The base table's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of shards (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.tables.len()
    }

    /// Total rows across all shards.
    pub fn num_rows(&self) -> usize {
        self.tables.iter().map(|t| t.num_rows()).sum()
    }

    /// Shard `i`'s table, as of the snapshot.
    pub fn table(&self, i: usize) -> &Table {
        &self.tables[i]
    }

    /// Global row range `[start, end)` of shard `i`, as of the snapshot.
    pub fn range(&self, i: usize) -> std::ops::Range<usize> {
        self.starts[i]..self.starts[i] + self.tables[i].num_rows()
    }
}

/// A table partitioned into independent contiguous row-range shards.
#[derive(Debug)]
pub struct ShardedTable {
    name: String,
    shards: Vec<Shard>,
}

impl ShardedTable {
    /// Mirror `table` (registered as `name`) into shards per `config`.
    /// The split is contiguous and near-balanced: shard `i` of `k` ends
    /// at `(i+1)*n/k`, **snapped to the executor's global morsel grid**
    /// when every shard spans at least one morsel. Snapping is a pure
    /// performance choice — any contiguous partition is bit-identical by
    /// construction — but aligned boundaries mean no global morsel
    /// straddles two shards, so the aggregate merge has no serially
    /// rebuilt straddle morsels (see `explore_shard::fanout`).
    pub fn build(name: impl Into<String>, table: &Table, config: &ShardConfig) -> ShardedTable {
        let n = table.num_rows();
        let k = config.effective_count(n);
        let rows_per = morsel_rows_for(n);
        let boundary = |i: usize| {
            if i == 0 || i == k {
                return i * n / k;
            }
            if n / k >= rows_per {
                // Interior boundaries spaced ≥ one morsel apart stay
                // strictly increasing after rounding to the grid.
                ((i * n + k * rows_per / 2) / (k * rows_per)) * rows_per
            } else {
                i * n / k
            }
        };
        let shards = (0..k)
            .map(|i| {
                let (start, end) = (boundary(i), boundary(i + 1));
                let sel: Vec<u32> = (start as u32..end as u32).collect();
                Shard {
                    start,
                    state: RwLock::new(ShardState {
                        table: Arc::new(table.gather(&sel)),
                        crackers: HashMap::new(),
                    }),
                }
            })
            .collect();
        ShardedTable {
            name: name.into(),
            shards,
        }
    }

    /// The base table's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of shards (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total rows across all shards (a consistent count: taken from a
    /// full snapshot).
    pub fn num_rows(&self) -> usize {
        self.snapshot().num_rows()
    }

    /// A consistent cut of every shard: all shard read guards are
    /// acquired in ascending order and held together while the table
    /// `Arc`s are cloned, so the snapshot observes each multi-shard
    /// update entirely or not at all (update guards are acquired in the
    /// same order — ordered 2PL).
    pub fn snapshot(&self) -> ShardSnapshot {
        let guards: Vec<RwLockReadGuard<'_, ShardState>> =
            self.shards.iter().map(|s| s.state.read()).collect();
        ShardSnapshot {
            name: self.name.clone(),
            tables: guards.iter().map(|g| Arc::clone(&g.table)).collect(),
            starts: self.shards.iter().map(|s| s.start).collect(),
        }
    }

    /// Append one row to the table; routes to the last shard (contiguous
    /// ranges make it the only shard that can grow without reshuffling
    /// global row ids). Locks only that shard. Returns the mutated
    /// shard's index.
    pub fn push_row(&self, values: Vec<Value>) -> Result<usize> {
        let idx = self.shards.len() - 1;
        let mut state = self.shards[idx].state.write();
        Arc::make_mut(&mut state.table).push_row(values)?;
        state.crackers.clear();
        Ok(idx)
    }

    /// Append all rows of `rows` to the last shard. Returns the mutated
    /// shard's index.
    pub fn append_rows(&self, rows: &Table) -> Result<usize> {
        let idx = self.shards.len() - 1;
        let mut state = self.shards[idx].state.write();
        Arc::make_mut(&mut state.table).append(rows)?;
        state.crackers.clear();
        Ok(idx)
    }

    /// Apply `column = value` to the global row ids in `sel` (ascending,
    /// as produced by predicate evaluation on the canonical table),
    /// routing each row to its owning shard. Write guards over exactly
    /// the touched shards are acquired in ascending order and held
    /// across all writes, so concurrent updates to disjoint shards
    /// proceed in parallel while snapshots never observe a half-applied
    /// update. Returns the indexes of the shards that changed,
    /// ascending. The caller has already validated type compatibility
    /// against the canonical table — identical schemas make the writes
    /// infallible here short of engine bugs.
    pub fn update_where(&self, sel: &[u32], column: &str, value: &Value) -> Result<Vec<usize>> {
        // Phase 1: partition the selection by the (immutable) shard
        // starts. Shard i < last covers [starts[i], starts[i+1]).
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
        let mut cursor = 0usize;
        for &row in sel {
            let owner = match self.shards.iter().rposition(|s| s.start <= row as usize) {
                Some(i) => i,
                None => {
                    return Err(StorageError::Internal(
                        "update selection not ascending across shards".into(),
                    ))
                }
            };
            if owner < cursor {
                return Err(StorageError::Internal(
                    "update selection not ascending across shards".into(),
                ));
            }
            cursor = owner;
            buckets[owner].push(row);
        }
        // Phase 2: lock the touched shards (ascending) and write.
        let mut guards: Vec<(usize, RwLockWriteGuard<'_, ShardState>)> = buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(i, _)| (i, self.shards[i].state.write()))
            .collect();
        let mut mutated = Vec::new();
        for (idx, state) in &mut guards {
            let start = self.shards[*idx].start;
            let len = state.table.num_rows();
            let mut touched = false;
            for &row in &buckets[*idx] {
                let local = row as usize - start;
                if local >= len {
                    // Beyond the last shard's current end: the canonical
                    // selection cannot name such rows; skip defensively.
                    continue;
                }
                Arc::make_mut(&mut state.table).set_cell(column, local, value.clone())?;
                touched = true;
            }
            if touched {
                state.crackers.clear();
                mutated.push(*idx);
            }
        }
        Ok(mutated)
    }

    /// Range query `low <= v < high` through per-shard adaptive indexes:
    /// each shard cracks its own copy of `column` independently (under
    /// its own write lock — cracking reorganizes), and the matching ids
    /// are returned offset back to global row ids, concatenated in
    /// shard order. Like the unsharded cracked path, ids come back in
    /// cracked (physical) order, not ascending.
    ///
    /// Returns `(ids, reorganized)` where `reorganized` lists the shards
    /// whose piece count grew — the caller bumps exactly those shards'
    /// epochs. The cancel token is checked between crack steps; a
    /// cancelled call leaves every shard's index well-formed.
    pub fn cracked_range(
        &self,
        column: &str,
        low: i64,
        high: i64,
        cancel: Option<&CancelToken>,
    ) -> Result<(Vec<u32>, Vec<usize>)> {
        let mut out = Vec::new();
        let mut reorganized = Vec::new();
        for (idx, shard) in self.shards.iter().enumerate() {
            let mut state = shard.state.write();
            if !state.crackers.contains_key(column) {
                let col = state.table.column(column)?;
                let values = col
                    .as_i64()
                    .ok_or_else(|| StorageError::TypeMismatch {
                        column: column.to_owned(),
                        expected: "Int64",
                        found: col.data_type().name(),
                    })?
                    .to_vec();
                state
                    .crackers
                    .insert(column.to_owned(), CrackerColumn::new(values));
            }
            let cracker = state
                .crackers
                .get_mut(column)
                .ok_or_else(|| StorageError::Internal("shard cracker lost after build".into()))?;
            let before = cracker.num_pieces();
            let (s, e) = cracker.query_bounds(low, high, cancel)?;
            if cracker.num_pieces() != before {
                reorganized.push(idx);
            }
            let start = shard.start as u32;
            out.extend(cracker.ids()[s..e].iter().map(|&i| start + i));
        }
        Ok((out, reorganized))
    }

    /// Total cracker pieces on `column` across shards, or `None` if no
    /// shard has cracked it yet.
    pub fn index_pieces(&self, column: &str) -> Option<usize> {
        let counts: Vec<usize> = self
            .shards
            .iter()
            .filter_map(|s| {
                s.state
                    .read()
                    .crackers
                    .get(column)
                    .map(CrackerColumn::num_pieces)
            })
            .collect();
        (!counts.is_empty()).then(|| counts.iter().sum())
    }

    /// Per-shard statistics; `epoch_of(i)` supplies shard `i`'s cache
    /// epoch (the engine reads it off the shared result cache).
    pub fn stats(&self, epoch_of: impl Fn(usize) -> u64) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let state = s.state.read();
                ShardStats {
                    shard: i,
                    start: s.start,
                    rows: state.table.num_rows(),
                    epoch: epoch_of(i),
                    crackers: state.crackers.len(),
                    pieces: state.crackers.values().map(CrackerColumn::num_pieces).sum(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore_storage::gen::{sales_table, SalesConfig};
    use explore_storage::Predicate;

    fn sales(rows: usize) -> Table {
        sales_table(&SalesConfig {
            rows,
            ..SalesConfig::default()
        })
    }

    fn config(count: usize) -> ShardConfig {
        ShardConfig {
            count,
            min_rows_per_shard: 1,
        }
    }

    #[test]
    fn split_is_contiguous_balanced_and_bitwise() {
        let t = sales(1003);
        let st = ShardedTable::build("sales", &t, &config(4));
        assert_eq!(st.shard_count(), 4);
        assert_eq!(st.num_rows(), 1003);
        let snap = st.snapshot();
        let mut covered = 0;
        for s in 0..snap.shard_count() {
            let range = snap.range(s);
            assert_eq!(range.start, covered);
            covered = range.end;
            for local in 0..snap.table(s).num_rows() {
                assert_eq!(
                    snap.table(s).row(local).unwrap(),
                    t.row(range.start + local).unwrap(),
                    "shard row {local}"
                );
            }
        }
        assert_eq!(covered, 1003);
        // Balance: no two shards differ by more than one row.
        let sizes: Vec<usize> = (0..snap.shard_count())
            .map(|s| snap.table(s).num_rows())
            .collect();
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(hi - lo <= 1, "{sizes:?}");
    }

    #[test]
    fn mutations_route_to_owning_shard() {
        let t = sales(100);
        let st = ShardedTable::build("sales", &t, &config(4));
        let row = t.row(0).unwrap();
        assert_eq!(st.push_row(row).unwrap(), 3);
        assert_eq!(st.num_rows(), 101);
        assert_eq!(st.append_rows(&t).unwrap(), 3);
        assert_eq!(st.num_rows(), 201);

        // Update rows spread across two shards.
        let sel = Predicate::range("qty", 0i64, 100i64).evaluate(&t).unwrap();
        let some: Vec<u32> = sel.iter().copied().filter(|&r| r < 50).collect();
        let mutated = st.update_where(&some, "qty", &Value::Int(42)).unwrap();
        assert!(!mutated.is_empty());
        for &i in &mutated {
            assert!(i < 2, "rows < 50 live in the first two shards of 201");
        }
    }

    #[test]
    fn snapshots_are_immutable_under_mutation() {
        let t = sales(100);
        let st = ShardedTable::build("sales", &t, &config(4));
        let before = st.snapshot();
        let rows_before = before.num_rows();
        st.push_row(t.row(0).unwrap()).unwrap();
        // The held snapshot still sees the pre-mutation cut.
        assert_eq!(before.num_rows(), rows_before);
        assert_eq!(st.snapshot().num_rows(), rows_before + 1);
    }

    #[test]
    fn cracked_range_matches_scan_per_shard() {
        let t = sales(5000);
        let st = ShardedTable::build("sales", &t, &config(4));
        let (ids, reorganized) = st.cracked_range("qty", 3, 7, None).unwrap();
        assert!(!reorganized.is_empty(), "first crack reorganizes");
        let mut got = ids.clone();
        got.sort_unstable();
        let want = Predicate::range("qty", 3i64, 7i64).evaluate(&t).unwrap();
        assert_eq!(got, want);
        // Repeat adds no pieces anywhere.
        let (_, again) = st.cracked_range("qty", 3, 7, None).unwrap();
        assert!(again.is_empty());
        assert!(st.index_pieces("qty").unwrap() >= 4);
        assert!(st.index_pieces("price").is_none());
    }

    #[test]
    fn stats_reflect_layout() {
        let t = sales(1000);
        let st = ShardedTable::build("sales", &t, &config(4));
        st.cracked_range("qty", 2, 5, None).unwrap();
        let stats = st.stats(|i| i as u64 * 10);
        assert_eq!(stats.len(), 4);
        assert_eq!(stats[0].start, 0);
        assert_eq!(stats[1].epoch, 10);
        assert!(stats.iter().all(|s| s.rows == 250 && s.crackers == 1));
        assert!(stats.iter().all(|s| s.pieces >= 1));
    }
}
