//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy drawing uniformly from a fixed set of options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_only_yields_options() {
        let mut rng = TestRng::from_seed(9);
        let s = select(vec!["a", "b", "c"]);
        for _ in 0..100 {
            assert!(["a", "b", "c"].contains(&s.generate(&mut rng)));
        }
    }
}
