//! Synthetic dataset generators shared by tests, examples and benches.
//!
//! Each generator mirrors a workload family used in the evaluations of the
//! surveyed systems: uniform integer columns (cracking), skewed categorical
//! sales facts (SeeDB / BlinkDB), spatial point clouds (semantic windows),
//! and multi-cluster numeric data (explore-by-example).

use crate::column::Column;
use crate::rng::{SplitMix64, Zipf};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::DataType;

/// A uniformly random `i64` column over `[low, high)` — the canonical
/// cracking evaluation input.
pub fn uniform_i64(n: usize, low: i64, high: i64, seed: u64) -> Vec<i64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.range_i64(low, high)).collect()
}

/// A uniformly random `f64` column over `[low, high)`.
pub fn uniform_f64(n: usize, low: f64, high: f64, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.range_f64(low, high)).collect()
}

/// A zipf-skewed categorical column with `k` distinct labels `v0..v{k-1}`,
/// label 0 most frequent.
pub fn zipf_labels(n: usize, k: usize, skew: f64, seed: u64) -> Vec<String> {
    let mut rng = SplitMix64::new(seed);
    let zipf = Zipf::new(k, skew);
    (0..n)
        .map(|_| format!("v{}", zipf.sample(&mut rng)))
        .collect()
}

/// Configuration for the synthetic sales fact table used across the
/// AQP, SeeDB and diversification experiments.
#[derive(Debug, Clone)]
pub struct SalesConfig {
    pub rows: usize,
    pub regions: usize,
    pub products: usize,
    pub channels: usize,
    /// Zipf skew of the categorical dimensions.
    pub skew: f64,
    pub seed: u64,
}

impl Default for SalesConfig {
    fn default() -> Self {
        SalesConfig {
            rows: 10_000,
            regions: 8,
            products: 20,
            channels: 4,
            skew: 0.8,
            seed: 42,
        }
    }
}

/// Generate a star-schema-like flat sales fact table:
/// `region, product, channel (Utf8), price, discount (Float64), qty (Int64)`.
///
/// `price` depends on the product (each product has a base price) plus
/// noise, so group-by views have real structure for SeeDB-style deviation
/// analysis; `discount` correlates with `channel` for the same reason.
pub fn sales_table(cfg: &SalesConfig) -> Table {
    let mut rng = SplitMix64::new(cfg.seed);
    let region_z = Zipf::new(cfg.regions, cfg.skew);
    let product_z = Zipf::new(cfg.products, cfg.skew);
    let channel_z = Zipf::new(cfg.channels, cfg.skew);
    let base_prices: Vec<f64> = (0..cfg.products)
        .map(|_| rng.range_f64(5.0, 500.0))
        .collect();
    let channel_discount: Vec<f64> = (0..cfg.channels).map(|_| rng.range_f64(0.0, 0.3)).collect();

    let mut region = Vec::with_capacity(cfg.rows);
    let mut product = Vec::with_capacity(cfg.rows);
    let mut channel = Vec::with_capacity(cfg.rows);
    let mut price = Vec::with_capacity(cfg.rows);
    let mut discount = Vec::with_capacity(cfg.rows);
    let mut qty = Vec::with_capacity(cfg.rows);
    for _ in 0..cfg.rows {
        let r = region_z.sample(&mut rng);
        let p = product_z.sample(&mut rng);
        let c = channel_z.sample(&mut rng);
        region.push(format!("region{r}"));
        product.push(format!("product{p}"));
        channel.push(format!("channel{c}"));
        price.push((base_prices[p] * (1.0 + 0.1 * rng.gaussian())).max(0.5));
        discount.push((channel_discount[c] + 0.02 * rng.gaussian()).clamp(0.0, 0.9));
        qty.push(1 + rng.below(9) as i64);
    }
    Table::new(
        Schema::of(&[
            ("region", DataType::Utf8),
            ("product", DataType::Utf8),
            ("channel", DataType::Utf8),
            ("price", DataType::Float64),
            ("discount", DataType::Float64),
            ("qty", DataType::Int64),
        ]),
        vec![
            Column::from(region),
            Column::from(product),
            Column::from(channel),
            Column::from(price),
            Column::from(discount),
            Column::from(qty),
        ],
    )
    .expect("generated columns are aligned")
}

/// A 2-D spatial point table `x, y (Float64), mag (Float64)` with
/// `clusters` dense Gaussian clusters over a `[0, extent)²` space plus a
/// uniform background — the sky-survey-style input of the semantic-window
/// and explore-by-example experiments (the astronomer from the paper's
/// introduction).
pub fn sky_table(n: usize, clusters: usize, extent: f64, seed: u64) -> Table {
    let mut rng = SplitMix64::new(seed);
    let centers: Vec<(f64, f64, f64)> = (0..clusters)
        .map(|_| {
            (
                rng.range_f64(0.1 * extent, 0.9 * extent),
                rng.range_f64(0.1 * extent, 0.9 * extent),
                rng.range_f64(0.01 * extent, 0.05 * extent),
            )
        })
        .collect();
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    let mut mags = Vec::with_capacity(n);
    for _ in 0..n {
        // 60% of points fall in clusters, 40% background.
        if clusters > 0 && rng.bernoulli(0.6) {
            let (cx, cy, sd) = centers[rng.below(clusters as u64) as usize];
            xs.push((cx + sd * rng.gaussian()).clamp(0.0, extent));
            ys.push((cy + sd * rng.gaussian()).clamp(0.0, extent));
            // Cluster members are brighter.
            mags.push(rng.range_f64(15.0, 20.0));
        } else {
            xs.push(rng.range_f64(0.0, extent));
            ys.push(rng.range_f64(0.0, extent));
            mags.push(rng.range_f64(10.0, 18.0));
        }
    }
    Table::new(
        Schema::of(&[
            ("x", DataType::Float64),
            ("y", DataType::Float64),
            ("mag", DataType::Float64),
        ]),
        vec![Column::from(xs), Column::from(ys), Column::from(mags)],
    )
    .expect("generated columns are aligned")
}

/// A numeric feature table with `dims` columns `f0..f{dims-1}` uniform over
/// `[0, 100)`, used as the search space for explore-by-example and
/// query-by-output experiments.
pub fn feature_table(n: usize, dims: usize, seed: u64) -> Table {
    let mut rng = SplitMix64::new(seed);
    let fields: Vec<(String, DataType)> = (0..dims)
        .map(|d| (format!("f{d}"), DataType::Float64))
        .collect();
    let defs: Vec<(&str, DataType)> = fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let columns: Vec<Column> = (0..dims)
        .map(|_| {
            Column::from(
                (0..n)
                    .map(|_| rng.range_f64(0.0, 100.0))
                    .collect::<Vec<f64>>(),
            )
        })
        .collect();
    Table::new(Schema::of(&defs), columns).expect("generated columns are aligned")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_generators_are_bounded_and_deterministic() {
        let a = uniform_i64(1000, -10, 10, 1);
        assert!(a.iter().all(|&x| (-10..10).contains(&x)));
        assert_eq!(a, uniform_i64(1000, -10, 10, 1));
        assert_ne!(a, uniform_i64(1000, -10, 10, 2));
        let f = uniform_f64(1000, 0.0, 1.0, 1);
        assert!(f.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn zipf_labels_skew_to_v0() {
        let labels = zipf_labels(10_000, 5, 1.0, 3);
        let head = labels.iter().filter(|l| l.as_str() == "v0").count();
        let tail = labels.iter().filter(|l| l.as_str() == "v4").count();
        assert!(head > tail * 2, "head={head} tail={tail}");
    }

    #[test]
    fn sales_table_shape_and_structure() {
        let t = sales_table(&SalesConfig {
            rows: 2000,
            ..SalesConfig::default()
        });
        assert_eq!(t.num_rows(), 2000);
        assert_eq!(t.num_columns(), 6);
        // Prices are positive, discounts in [0, 0.9].
        let prices = t.column("price").unwrap().as_f64().unwrap();
        assert!(prices.iter().all(|&p| p > 0.0));
        let d = t.column("discount").unwrap().as_f64().unwrap();
        assert!(d.iter().all(|&x| (0.0..=0.9).contains(&x)));
        let q = t.column("qty").unwrap().as_i64().unwrap();
        assert!(q.iter().all(|&x| (1..=9).contains(&x)));
    }

    #[test]
    fn sky_table_bounds_and_density() {
        let t = sky_table(5000, 3, 100.0, 7);
        assert_eq!(t.num_rows(), 5000);
        let xs = t.column("x").unwrap().as_f64().unwrap();
        assert!(xs.iter().all(|&x| (0.0..=100.0).contains(&x)));
        // Clusters concentrate mass: the densest decile of x should hold
        // far more than 10% of points.
        let mut counts = [0usize; 10];
        for &x in xs {
            counts[((x / 10.0) as usize).min(9)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max > 5000 / 10 * 2, "max decile {max}");
    }

    #[test]
    fn feature_table_has_named_dims() {
        let t = feature_table(100, 4, 9);
        assert_eq!(t.schema().names(), vec!["f0", "f1", "f2", "f3"]);
        assert_eq!(t.num_rows(), 100);
    }
}
