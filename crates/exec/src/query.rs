//! Morsel-driven execution of [`Query`] plans.
//!
//! A table is split into morsels at the same offsets regardless of
//! policy: [`MORSEL_ROWS`] rows each up to [`MAX_MORSELS`] units, then
//! adaptively coarser (see [`morsel_rows_for`]) so huge scans stay a
//! handful of work units. Each morsel independently evaluates the
//! predicate over its row window (vectorized, see
//! `Predicate::evaluate_range`) and either gathers its matching rows
//! (scan queries) or folds them into a per-worker aggregation state
//! that emits one partial batch per morsel (aggregate queries; see
//! `run_agg_morsels`). Partial results are then merged **in morsel
//! order**, so [`ExecPolicy::Serial`] and [`ExecPolicy::Parallel`]
//! produce bit-identical tables by construction: the only difference is
//! which thread computes each morsel, never what is computed or the
//! order in which partials are combined.
//!
//! Every entry point takes one [`QueryCtx`] carrying the execution
//! policy, fail-point registry, cancellation tokens, and trace handle —
//! there are no per-concern method variants. A default context
//! ([`QueryCtx::none`]) gives plain serial execution with every hook
//! disabled at the cost of a couple of `None` branches per morsel.
//!
//! Note the reference point: the serial policy here is the morsel
//! pipeline run on one thread, which matches [`Query::run`] exactly for
//! scans and for ordering/limits, while float aggregates can differ from
//! `Query::run` in the last ulp (per-morsel Welford accumulators merged
//! pairwise versus one long accumulation). Between the two policies the
//! results are identical down to the bit.

use std::borrow::Cow;
use std::cell::UnsafeCell;

use explore_obs::{SpanKind, ROOT_SPAN};
use explore_storage::{Predicate, Query, Result, StorageError, Table, MORSEL_ROWS};

use crate::ctx::QueryCtx;
use crate::policy::ExecPolicy;
use crate::pool::global_pool;

use explore_storage::{Aggregate, GroupedAggState, MorselAggBatch, WorkerAggState};

/// Cap on how many morsels one fan-out produces. Above
/// `MAX_MORSELS × MORSEL_ROWS` rows, morsels grow (in whole multiples
/// of [`MORSEL_ROWS`]) instead of multiplying, so a huge scan stays a
/// handful of coarse work units rather than hundreds of tiny tasks
/// whose per-morsel overhead (dispatch, span, partial merge) eats the
/// parallel win.
pub const MAX_MORSELS: usize = 64;

/// Adaptive morsel size for a table of `n_rows` rows: the fixed
/// [`MORSEL_ROWS`] granularity until the table would decompose into
/// more than [`MAX_MORSELS`] units, then scaled up so it doesn't.
/// The size depends *only* on the row count — never on the policy or
/// worker count — because serial and parallel execution must share the
/// decomposition for bit-identity, and selection replay must cut at
/// the same offsets.
pub fn morsel_rows_for(n_rows: usize) -> usize {
    let units = n_rows.div_ceil(MORSEL_ROWS).max(1);
    MORSEL_ROWS * units.div_ceil(MAX_MORSELS)
}

/// The half-open row window of morsel `m` in a table of `n_rows` rows.
pub fn morsel_range(m: usize, n_rows: usize) -> std::ops::Range<usize> {
    let rows = morsel_rows_for(n_rows);
    let start = m * rows;
    start..n_rows.min(start + rows)
}

/// How many morsels a table of `n_rows` rows decomposes into. Always at
/// least one, so validation (unknown columns, type mismatches) runs even
/// on empty tables and both policies surface identical errors.
pub fn morsel_count(n_rows: usize) -> usize {
    n_rows.div_ceil(morsel_rows_for(n_rows)).max(1)
}

/// Evaluate `predicate` over the whole table under `ctx`, returning
/// global row ids in ascending order — the same selection vector
/// [`Predicate::evaluate`] produces, computed morsel-wise. The context's
/// cancel tokens are checked once per morsel, armed fail points may
/// divert the dispatch path, and an attached trace records one exec span
/// with a morsel child per row window; the returned selection is
/// identical whatever the context carries.
pub fn evaluate_selection(
    table: &Table,
    predicate: &Predicate,
    ctx: &QueryCtx,
) -> Result<Vec<u32>> {
    let n = table.num_rows();
    let pieces = run_morsels(ctx, morsel_count(n), "filter", |m| {
        predicate.evaluate_range(table, morsel_range(m, n))
    })?;
    let mut sel = Vec::with_capacity(pieces.iter().map(Vec::len).sum());
    for piece in pieces {
        sel.extend_from_slice(&piece);
    }
    Ok(sel)
}

/// Execute `query` against `table` under `ctx`. See the module docs for
/// the determinism contract. A cancelled or expired token surfaces as
/// `StorageError::Cancelled`/`DeadlineExceeded` after at most one
/// in-flight morsel finishes; no partial result escapes.
pub fn run_query(table: &Table, query: &Query, ctx: &QueryCtx) -> Result<Table> {
    let n = table.num_rows();
    let n_morsels = morsel_count(n);

    if query.aggregates.is_empty() {
        // Scan query: project once, then gather each morsel's matches.
        let projected;
        let target = if query.projection.is_empty() {
            table
        } else {
            let names: Vec<&str> = query.projection.iter().map(String::as_str).collect();
            projected = table.project(&names)?;
            &projected
        };
        let pieces = run_morsels(ctx, n_morsels, "scan", |m| {
            let sel = query.predicate.evaluate_range(table, morsel_range(m, n))?;
            Ok(target.gather(&sel))
        })?;
        let out = merge_traced(ctx, || {
            let mut iter = pieces.into_iter();
            let mut out = iter.next().expect("at least one morsel");
            for piece in iter {
                out.append(&piece)?;
            }
            Ok(out)
        })?;
        query.apply_order_limit(out)
    } else {
        // Aggregate query: per-worker interner state, one partial batch
        // per morsel, absorbed in morsel order (group output order is
        // first-appearance order).
        let merged = run_agg_morsels(
            ctx,
            table,
            &query.group_by,
            &query.aggregates,
            n_morsels,
            "aggregate",
            |m| {
                Ok(Cow::Owned(
                    query.predicate.evaluate_range(table, morsel_range(m, n))?,
                ))
            },
        )?;
        query.apply_order_limit(merged)
    }
}

/// Execute the post-filter part of `query` on a precomputed selection
/// vector of **ascending global row ids**, preserving the base table's
/// morsel decomposition: morsel `m` processes exactly the slice of
/// `sel` falling inside its row window, and partials merge in morsel
/// order, as in [`run_query`]. The exec span is staged `"replay"` so
/// traces distinguish cache-subsumption replays from base-table scans.
///
/// The payoff is bit-exactness: if `sel` is what `query.predicate`
/// selects on `table`, the output is bit-identical to
/// `run_query(table, query, ctx)` — per-morsel float accumulation
/// sees the same values in the same order, and empty slices merge as
/// exact no-ops. The semantic result cache leans on this to answer a
/// contained range query from a cached superset without perturbing a
/// single ulp.
pub fn run_query_on_selection(
    table: &Table,
    query: &Query,
    sel: &[u32],
    ctx: &QueryCtx,
) -> Result<Table> {
    let n = table.num_rows();
    let n_morsels = morsel_count(n);
    // `sel` is ascending, so each morsel's share is one contiguous
    // slice; cut at the same row offsets `run_query` scans at.
    let rows_per_morsel = morsel_rows_for(n);
    let bounds: Vec<usize> = (0..=n_morsels)
        .map(|m| sel.partition_point(|&row| (row as usize) < m * rows_per_morsel))
        .collect();
    let slice = |m: usize| &sel[bounds[m]..bounds[m + 1]];

    if query.aggregates.is_empty() {
        let projected;
        let target = if query.projection.is_empty() {
            table
        } else {
            let names: Vec<&str> = query.projection.iter().map(String::as_str).collect();
            projected = table.project(&names)?;
            &projected
        };
        let pieces = run_morsels(ctx, n_morsels, "replay", |m| Ok(target.gather(slice(m))))?;
        let out = merge_traced(ctx, || {
            let mut iter = pieces.into_iter();
            let mut out = iter.next().expect("at least one morsel");
            for piece in iter {
                out.append(&piece)?;
            }
            Ok(out)
        })?;
        query.apply_order_limit(out)
    } else {
        let merged = run_agg_morsels(
            ctx,
            table,
            &query.group_by,
            &query.aggregates,
            n_morsels,
            "replay",
            |m| Ok(Cow::Borrowed(slice(m))),
        )?;
        query.apply_order_limit(merged)
    }
}

/// Run `f` once per morsel index under the context's policy and collect
/// the results in morsel order. Errors are resolved deterministically:
/// the error of the lowest-indexed failing morsel wins under either
/// policy.
///
/// The context hooks in three behaviours, all off (one branch each) by
/// default:
///
/// * **Cancellation** — `ctx.check_cancel()` runs before every morsel,
///   so a cancelled/expired token stops the query after at most the
///   in-flight morsels finish; remaining morsels fail fast without
///   doing work.
/// * **Fault injection** — the `exec.spawn` fail point diverts pool
///   dispatch to an inline serial loop, and the `exec.morsel` fail
///   point panics inside a pooled morsel task. Any worker panic
///   (injected or real) is caught and the whole batch degrades to
///   serial execution — bit-identical output, since the morsel
///   decomposition and merge order never change. A panic that repeats
///   serially propagates; the serial retry does not re-inject.
/// * **Tracing** — with `ctx.trace` set, records one [`SpanKind::Exec`]
///   span (parented at the trace root, stamped with the stage label and
///   the number of pool participants actually dispatched) plus one
///   [`SpanKind::Morsel`] child per morsel, and a [`SpanKind::Fault`]
///   marker when a degradation path engages. The exec span id is
///   reserved *before* the morsels run so children can parent under it,
///   then filled in afterwards once the participant count is known.
fn run_morsels<T, F>(ctx: &QueryCtx, n_morsels: usize, stage: &'static str, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    let span = ctx.trace.map(|t| (t, t.alloc_id(), t.now_ns()));
    // `inject` is true only for pooled attempts: the serial fallback
    // must not re-trigger the fault it is recovering from.
    let run_one = |m: usize, inject: bool| -> Result<T> {
        ctx.check_cancel()?;
        if inject && ctx.fire("exec.morsel") {
            panic!("faultsim: injected morsel panic");
        }
        match span {
            Some((t, exec_id, _)) => {
                let start = t.now_ns();
                let out = f(m);
                t.record(
                    exec_id,
                    SpanKind::Morsel { index: m as u32 },
                    start,
                    t.now_ns(),
                );
                out
            }
            None => f(m),
        }
    };
    let run_serial = |inject: bool| (0..n_morsels).map(|m| run_one(m, inject)).collect();
    let serial_fallback = || {
        ctx.note("fault.exec.serial_fallback");
        if let Some((t, exec_id, _)) = span {
            let now = t.now_ns();
            t.record(
                exec_id,
                SpanKind::Fault {
                    site: "exec.serial_fallback",
                },
                now,
                now,
            );
        }
        (run_serial(false), 1usize)
    };
    let (result, participants) = match ctx.exec {
        ExecPolicy::Serial => (run_serial(false), 1usize),
        ExecPolicy::Parallel { .. } if ctx.fire("exec.spawn") => {
            // Injected dispatch failure: pretend the pool was
            // unavailable and run the batch inline.
            serial_fallback()
        }
        ExecPolicy::Parallel { workers } if parallel_profitable(workers, n_morsels) => {
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let slots = SlotVec::new(n_morsels);
                let participants = global_pool().run_counted(workers.max(1), n_morsels, &|m| {
                    // Safety: the pool executes each morsel index exactly
                    // once, so each slot is written by exactly one task.
                    unsafe { slots.set(m, run_one(m, true)) };
                });
                (slots, participants)
            }));
            match attempt {
                Ok((slots, participants)) => {
                    let mut out = Vec::with_capacity(n_morsels);
                    let mut collected = Ok(());
                    for slot in slots.into_inner() {
                        match slot {
                            Some(Ok(v)) => out.push(v),
                            Some(Err(e)) => {
                                collected = Err(e);
                                break;
                            }
                            None => {
                                collected =
                                    Err(StorageError::Internal("pool skipped a morsel".into()));
                                break;
                            }
                        }
                    }
                    (collected.map(|()| out), participants.max(1))
                }
                // A worker panicked (injected or real). The pool caught
                // it, unpublished the job, and stays valid; re-run the
                // whole batch serially — same decomposition, same merge
                // order, bit-identical output.
                Err(_) => serial_fallback(),
            }
        }
        ExecPolicy::Parallel { .. } => {
            // Serial fast-path: the pool would run this inline on the
            // calling thread anyway (one effective worker or a tiny
            // job), so skip dispatch entirely. Fault semantics match
            // the pooled path: injected morsel panics still fire and
            // still degrade to the non-injecting serial fallback.
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_serial(true))) {
                Ok(result) => (result, 1usize),
                Err(_) => serial_fallback(),
            }
        }
    };
    if let Some((t, exec_id, start)) = span {
        t.record_as(
            exec_id,
            ROOT_SPAN,
            SpanKind::Exec {
                stage,
                participants: participants as u32,
                morsels: n_morsels as u32,
            },
            start,
            t.now_ns(),
        );
    }
    result
}

/// Would a parallel fan-out actually dispatch to more than one thread?
/// Mirrors the pool's own participant clamp; when the answer is no, the
/// executor skips pool submission entirely (the serial fast-path).
/// Public so other fan-out layers (cracked-range batches, shard
/// dispatch) apply the same profitability rule instead of inventing
/// their own thresholds.
pub fn parallel_profitable(workers: usize, n_morsels: usize) -> bool {
    workers
        .max(1)
        .min(global_pool().helper_count() + 1)
        .min(n_morsels)
        > 1
}

/// One pool participant's aggregation state plus its span bookkeeping.
struct AggWorker<'t> {
    state: WorkerAggState<'t>,
    /// `(first_start_ns, last_end_ns)` of this worker's morsels, when
    /// tracing.
    window: Option<(u64, u64)>,
    morsels: u32,
}

/// Per-participant state slots for one aggregation fan-out.
struct WorkerSlots<'t>(Vec<UnsafeCell<Option<AggWorker<'t>>>>);

// Safety: the pool guarantees each participant index is exclusive to
// one thread for the job's duration, so distinct slots are only ever
// touched by distinct threads; the pool's completion barrier
// happens-before the collector reads them.
unsafe impl Sync for WorkerSlots<'_> {}

impl<'t> WorkerSlots<'t> {
    fn new(cap: usize) -> Self {
        WorkerSlots((0..cap).map(|_| UnsafeCell::new(None)).collect())
    }

    /// # Safety
    /// Only participant `w` may call this for slot `w`, and only while
    /// the job runs (or after its completion barrier).
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self, w: usize) -> &mut Option<AggWorker<'t>> {
        unsafe { &mut *self.0[w].get() }
    }

    fn into_inner(self) -> Vec<Option<AggWorker<'t>>> {
        self.0.into_iter().map(UnsafeCell::into_inner).collect()
    }
}

/// Aggregate-specific fan-out: like [`run_morsels`], but each pool
/// participant keeps one [`WorkerAggState`] across every morsel it
/// runs (the group-key interner amortizes across stolen morsels instead
/// of being rebuilt per morsel), and each morsel yields a lightweight
/// [`MorselAggBatch`] partial. Batches are absorbed into the final
/// state **in morsel order** — a batch's content depends only on its
/// morsel's rows, never on the worker that ran it, so the result is
/// bit-identical across policies, worker counts, and steal schedules.
///
/// `sel_for(m)` produces morsel `m`'s selection (predicate evaluation
/// for direct runs, a precomputed slice for cache replays); it runs
/// before aggregate-column validation, preserving the error precedence
/// of the historical per-morsel path. Cancellation, fault injection
/// (`exec.spawn`/`exec.morsel` with serial fallback from fresh state),
/// and span recording all match [`run_morsels`]; additionally each
/// participant that ran at least one morsel gets a
/// [`SpanKind::Worker`] child under the exec span, and the merge bumps
/// the `exec.worker_merge` counter by the number of worker states
/// merged.
fn run_agg_morsels<'t, 's>(
    ctx: &QueryCtx,
    table: &'t Table,
    group_by: &'t [String],
    aggs: &'t [Aggregate],
    n_morsels: usize,
    stage: &'static str,
    sel_for: impl Fn(usize) -> Result<Cow<'s, [u32]>> + Sync,
) -> Result<Table> {
    let span = ctx.trace.map(|t| (t, t.alloc_id(), t.now_ns()));
    // `inject` is true only for first attempts; the serial fallback must
    // not re-trigger the fault it is recovering from.
    let run_one = |slots: &WorkerSlots<'t>,
                   w: usize,
                   m: usize,
                   inject: bool|
     -> Result<(u32, MorselAggBatch)> {
        ctx.check_cancel()?;
        if inject && ctx.fire("exec.morsel") {
            panic!("faultsim: injected morsel panic");
        }
        // Safety: the pool hands index `w` to exactly one thread.
        let cell = unsafe { slots.get(w) };
        let work = |cell: &mut Option<AggWorker<'t>>| -> Result<MorselAggBatch> {
            // Predicate errors must win over aggregate-validation errors
            // within a morsel, as in the historical path.
            let sel = sel_for(m)?;
            if cell.is_none() {
                *cell = Some(AggWorker {
                    state: WorkerAggState::new(table, group_by, aggs)?,
                    window: None,
                    morsels: 0,
                });
            }
            let worker = cell.as_mut().expect("initialized above");
            let batch = worker.state.update_morsel(&sel);
            worker.morsels += 1;
            Ok(batch)
        };
        match span {
            Some((t, exec_id, _)) => {
                let start = t.now_ns();
                let out = work(cell);
                let end = t.now_ns();
                t.record(exec_id, SpanKind::Morsel { index: m as u32 }, start, end);
                if let Some(worker) = cell.as_mut() {
                    let first = worker.window.map_or(start, |(s, _)| s);
                    worker.window = Some((first, end));
                }
                out.map(|batch| (w as u32, batch))
            }
            None => work(cell).map(|batch| (w as u32, batch)),
        }
    };
    type Collected = Result<Vec<(u32, MorselAggBatch)>>;
    let run_serial = |inject: bool| -> (WorkerSlots<'t>, Collected) {
        let slots = WorkerSlots::new(1);
        let result = (0..n_morsels)
            .map(|m| run_one(&slots, 0, m, inject))
            .collect();
        (slots, result)
    };
    let serial_fallback = || {
        ctx.note("fault.exec.serial_fallback");
        if let Some((t, exec_id, _)) = span {
            let now = t.now_ns();
            t.record(
                exec_id,
                SpanKind::Fault {
                    site: "exec.serial_fallback",
                },
                now,
                now,
            );
        }
        // Fresh state: nothing interned during an aborted pooled attempt
        // may leak into the serial re-run.
        let (slots, result) = run_serial(false);
        (slots, result, 1usize)
    };
    let (worker_slots, collected, participants) = match ctx.exec {
        ExecPolicy::Serial => {
            let (slots, result) = run_serial(false);
            (slots, result, 1usize)
        }
        ExecPolicy::Parallel { .. } if ctx.fire("exec.spawn") => serial_fallback(),
        ExecPolicy::Parallel { workers } if parallel_profitable(workers, n_morsels) => {
            let cap = workers
                .max(1)
                .min(global_pool().helper_count() + 1)
                .min(n_morsels);
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let slots = WorkerSlots::new(cap);
                let batches: SlotVec<Result<(u32, MorselAggBatch)>> = SlotVec::new(n_morsels);
                let participants =
                    global_pool().run_counted_indexed(workers.max(1), n_morsels, &|w, m| {
                        // Safety: each morsel index runs exactly once.
                        unsafe { batches.set(m, run_one(&slots, w, m, true)) };
                    });
                (slots, batches, participants)
            }));
            match attempt {
                Ok((slots, batches, participants)) => {
                    let mut out = Vec::with_capacity(n_morsels);
                    let mut result = Ok(());
                    for slot in batches.into_inner() {
                        match slot {
                            Some(Ok(v)) => out.push(v),
                            Some(Err(e)) => {
                                result = Err(e);
                                break;
                            }
                            None => {
                                result =
                                    Err(StorageError::Internal("pool skipped a morsel".into()));
                                break;
                            }
                        }
                    }
                    (slots, result.map(|()| out), participants.max(1))
                }
                Err(_) => serial_fallback(),
            }
        }
        ExecPolicy::Parallel { .. } => {
            // Serial fast-path below the profitability threshold; fault
            // semantics match the pooled path (see `run_morsels`).
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_serial(true))) {
                Ok((slots, result)) => (slots, result, 1usize),
                Err(_) => serial_fallback(),
            }
        }
    };
    let workers = worker_slots.into_inner();
    if let Some((t, exec_id, start)) = span {
        for (w, worker) in workers.iter().enumerate() {
            let Some(worker) = worker else { continue };
            if let Some((first, last)) = worker.window {
                t.record(
                    exec_id,
                    SpanKind::Worker {
                        index: w as u32,
                        morsels: worker.morsels,
                    },
                    first,
                    last,
                );
            }
        }
        t.record_as(
            exec_id,
            ROOT_SPAN,
            SpanKind::Exec {
                stage,
                participants: participants as u32,
                morsels: n_morsels as u32,
            },
            start,
            t.now_ns(),
        );
    }
    let batches = collected?;
    if let Some((t, _, _)) = span {
        let merged_states = workers.iter().flatten().filter(|c| c.morsels > 0).count();
        t.metrics().inc("exec.worker_merge", merged_states as u64);
    }
    merge_traced(ctx, || {
        let mut acc = GroupedAggState::new(table, group_by, aggs)?;
        for (w, batch) in &batches {
            let worker = workers[*w as usize].as_ref().expect("batch has a worker");
            acc.absorb_batch(&worker.state, batch);
        }
        acc.finish()
    })
}

/// Run the morsel-order merge step `f`, wrapped in a [`SpanKind::Merge`]
/// span when the context carries a trace.
fn merge_traced<T>(ctx: &QueryCtx, f: impl FnOnce() -> Result<T>) -> Result<T> {
    match ctx.trace {
        Some(t) => {
            let start = t.now_ns();
            let out = f();
            t.record(ROOT_SPAN, SpanKind::Merge, start, t.now_ns());
            out
        }
        None => f(),
    }
}

/// A fixed-size vector of write-once result slots, one per morsel.
struct SlotVec<T>(Vec<UnsafeCell<Option<T>>>);

// Safety: distinct slots are written by distinct tasks (the pool runs
// each morsel index exactly once) and only read after the pool's
// completion barrier, which happens-before the reads.
unsafe impl<T: Send> Sync for SlotVec<T> {}

impl<T> SlotVec<T> {
    fn new(n: usize) -> Self {
        SlotVec((0..n).map(|_| UnsafeCell::new(None)).collect())
    }

    /// # Safety
    /// Each index must be written at most once, with no concurrent
    /// reader; see the `Sync` impl notes.
    unsafe fn set(&self, i: usize, value: T) {
        unsafe { *self.0[i].get() = Some(value) };
    }

    fn into_inner(self) -> impl Iterator<Item = Option<T>> {
        self.0.into_iter().map(UnsafeCell::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore_storage::{gen, AggFunc, CmpOp, SortOrder, StorageError, Value};

    fn table() -> Table {
        gen::sales_table(&gen::SalesConfig {
            rows: 3 * MORSEL_ROWS + 1234,
            ..gen::SalesConfig::default()
        })
    }

    fn assert_tables_bitwise(a: &Table, b: &Table) {
        assert_eq!(a.num_rows(), b.num_rows());
        assert_eq!(a.schema(), b.schema());
        for field in a.schema().fields() {
            let ca = a
                .column(field.name())
                .unwrap_or_else(|e| panic!("left table lost column {:?}: {e}", field.name()));
            let cb = b
                .column(field.name())
                .unwrap_or_else(|e| panic!("right table lost column {:?}: {e}", field.name()));
            for row in 0..a.num_rows() {
                match (ca.value(row).unwrap(), cb.value(row).unwrap()) {
                    (Value::Float(x), Value::Float(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits(), "{}[{row}]", field.name());
                    }
                    (x, y) => assert_eq!(x, y, "{}[{row}]", field.name()),
                }
            }
        }
    }

    #[test]
    fn morsel_geometry() {
        assert_eq!(morsel_count(0), 1);
        assert_eq!(morsel_count(1), 1);
        assert_eq!(morsel_count(MORSEL_ROWS), 1);
        assert_eq!(morsel_count(MORSEL_ROWS + 1), 2);
        assert_eq!(morsel_range(0, 10), 0..10);
        assert_eq!(
            morsel_range(1, MORSEL_ROWS + 5),
            MORSEL_ROWS..MORSEL_ROWS + 5
        );
    }

    #[test]
    fn adaptive_morsel_sizing() {
        // Fixed granularity up to MAX_MORSELS units…
        assert_eq!(morsel_rows_for(0), MORSEL_ROWS);
        assert_eq!(morsel_rows_for(MORSEL_ROWS * MAX_MORSELS), MORSEL_ROWS);
        assert_eq!(morsel_count(MORSEL_ROWS * MAX_MORSELS), MAX_MORSELS);
        // …then morsels coarsen instead of multiplying.
        assert_eq!(
            morsel_rows_for(MORSEL_ROWS * MAX_MORSELS + 1),
            2 * MORSEL_ROWS
        );
        for n in [
            MORSEL_ROWS * MAX_MORSELS + 1,
            3 * MORSEL_ROWS * MAX_MORSELS + 17,
            10 * MORSEL_ROWS * MAX_MORSELS,
            100 * MORSEL_ROWS * MAX_MORSELS + 99,
        ] {
            let count = morsel_count(n);
            assert!(count <= MAX_MORSELS, "{n} rows → {count} morsels");
            assert_eq!(morsel_rows_for(n) % MORSEL_ROWS, 0, "{n}");
            // Windows tile the table exactly.
            let mut covered = 0;
            for m in 0..count {
                let r = morsel_range(m, n);
                assert_eq!(r.start, covered, "{n} morsel {m}");
                assert!(r.end > r.start, "{n} morsel {m} empty");
                covered = r.end;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn selection_matches_full_evaluate() {
        let t = table();
        let p = Predicate::range("price", 100.0, 600.0);
        let expected = p.evaluate(&t).unwrap();
        for policy in [ExecPolicy::Serial, ExecPolicy::Parallel { workers: 4 }] {
            assert_eq!(
                evaluate_selection(&t, &p, &QueryCtx::new(policy)).unwrap(),
                expected
            );
        }
    }

    #[test]
    fn scan_query_matches_query_run() {
        let t = table();
        let q = Query::new()
            .filter(Predicate::cmp("qty", CmpOp::Ge, 5.0))
            .select(&["region", "price"])
            .order("price", SortOrder::Desc)
            .take(500);
        let reference = q.run(&t).unwrap();
        for policy in [ExecPolicy::Serial, ExecPolicy::Parallel { workers: 4 }] {
            assert_tables_bitwise(
                &run_query(&t, &q, &QueryCtx::new(policy)).unwrap(),
                &reference,
            );
        }
    }

    #[test]
    fn grouped_aggregate_policies_agree_bitwise() {
        let t = table();
        let q = Query::new()
            .filter(Predicate::range("price", 50.0, 800.0))
            .group("region")
            .agg(AggFunc::Sum, "price")
            .agg(AggFunc::Avg, "qty")
            .order("sum(price)", SortOrder::Desc);
        let serial = run_query(&t, &q, &QueryCtx::none()).unwrap();
        let parallel =
            run_query(&t, &q, &QueryCtx::new(ExecPolicy::Parallel { workers: 4 })).unwrap();
        assert_tables_bitwise(&serial, &parallel);
        // Same groups and counts as the single-accumulator reference.
        let reference = q.run(&t).unwrap();
        assert_eq!(serial.num_rows(), reference.num_rows());
    }

    #[test]
    fn selection_replay_is_bit_identical_to_run_query() {
        let t = table();
        let shapes = [
            Query::new().filter(Predicate::range("price", 100.0, 600.0)),
            Query::new()
                .filter(Predicate::cmp("qty", CmpOp::Ge, 5.0))
                .select(&["region", "price"])
                .order("price", SortOrder::Desc)
                .take(321),
            Query::new()
                .filter(Predicate::range("price", 50.0, 800.0))
                .group("region")
                .agg(AggFunc::Sum, "price")
                .agg(AggFunc::Var, "discount")
                .order("sum(price)", SortOrder::Desc),
            Query::new()
                .filter(Predicate::cmp("price", CmpOp::Lt, -1.0))
                .agg(AggFunc::Avg, "price"),
        ];
        for policy in [ExecPolicy::Serial, ExecPolicy::Parallel { workers: 4 }] {
            let ctx = QueryCtx::new(policy);
            for q in &shapes {
                let sel = evaluate_selection(&t, &q.predicate, &ctx).unwrap();
                let direct = run_query(&t, q, &ctx).unwrap();
                let replayed = run_query_on_selection(&t, q, &sel, &ctx).unwrap();
                assert_tables_bitwise(&direct, &replayed);
            }
        }
    }

    #[test]
    fn selection_replay_policies_agree_on_arbitrary_subsets() {
        // Not just predicate-produced selections: any ascending subset
        // must agree across policies (the cache maps subset-local ids
        // back to global ids before replaying).
        let t = table();
        let every_third: Vec<u32> = (0..t.num_rows() as u32).step_by(3).collect();
        let q = Query::new()
            .group("region")
            .agg(AggFunc::Avg, "price")
            .agg(AggFunc::Std, "discount");
        let serial = run_query_on_selection(&t, &q, &every_third, &QueryCtx::none()).unwrap();
        let parallel = run_query_on_selection(
            &t,
            &q,
            &every_third,
            &QueryCtx::new(ExecPolicy::Parallel { workers: 4 }),
        )
        .unwrap();
        assert_tables_bitwise(&serial, &parallel);
        // Empty selection still yields the canonical aggregate shape.
        let empty = run_query_on_selection(&t, &q, &[], &QueryCtx::none()).unwrap();
        assert_eq!(empty.num_rows(), 0);
    }

    #[test]
    fn errors_identical_across_policies() {
        let t = table();
        let q = Query::new().filter(Predicate::cmp("no_such", CmpOp::Eq, 1.0));
        let serial = run_query(&t, &q, &QueryCtx::none()).unwrap_err();
        let parallel =
            run_query(&t, &q, &QueryCtx::new(ExecPolicy::Parallel { workers: 4 })).unwrap_err();
        assert_eq!(serial.to_string(), parallel.to_string());
        assert!(matches!(serial, StorageError::UnknownColumn(_)));
    }

    #[test]
    fn cancel_token_stops_between_morsels() {
        let t = table();
        let q = Query::new().agg(AggFunc::Sum, "price");
        let ctx = QueryCtx::none().with_cancel(Some(explore_fault::CancelToken::after_checks(1)));
        assert_eq!(run_query(&t, &q, &ctx), Err(StorageError::Cancelled));
    }
}
