//! Cooperative cancellation tokens and query deadlines.
//!
//! A [`CancelToken`] is checked by the executor once per morsel (and by
//! the cracker between reorganization steps). Checks are cheap — one
//! counter bump plus one or two relaxed loads; the deadline clock is
//! only consulted when a deadline is set. Because every check lands on
//! a unit-of-work boundary, a triggered token stops the query after at
//! most one in-flight morsel's worth of extra work, and the engine's
//! partial state is always the state *between* complete units — valid
//! by construction.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use explore_storage::{Result, StorageError};

#[derive(Debug)]
struct Inner {
    /// Set by [`CancelToken::cancel`] or by an exhausted check budget.
    cancelled: AtomicBool,
    /// Wall-clock deadline, if any.
    deadline: Option<Instant>,
    /// Cancel deterministically after this many checks, if set. Used by
    /// tests to cancel at an exact morsel boundary.
    check_budget: Option<u64>,
    /// Total checks performed so far.
    checks: AtomicU64,
}

/// A cloneable cancellation token; clones share state.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    fn build(deadline: Option<Instant>, check_budget: Option<u64>) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline,
                check_budget,
                checks: AtomicU64::new(0),
            }),
        }
    }

    /// A token that only triggers via [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken::build(None, None)
    }

    /// A token that expires `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        CancelToken::build(Instant::now().checked_add(timeout), None)
    }

    /// A token that cancels deterministically on check number `n + 1` —
    /// i.e. it survives exactly `n` checks. `after_checks(0)` cancels
    /// on the very first boundary.
    pub fn after_checks(n: u64) -> CancelToken {
        CancelToken::build(None, Some(n))
    }

    /// Request cancellation; every subsequent check fails.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has the token been cancelled (manually or by budget)? Deadline
    /// expiry is only detected at check time.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// How many checks have been performed against this token.
    pub fn checks(&self) -> u64 {
        self.inner.checks.load(Ordering::Relaxed)
    }

    /// One cooperative check, called at unit-of-work boundaries.
    /// Returns `StorageError::Cancelled` when cancelled (manually or by
    /// an exhausted check budget) and `StorageError::DeadlineExceeded`
    /// when the deadline has passed.
    pub fn check(&self) -> Result<()> {
        let n = self.inner.checks.fetch_add(1, Ordering::Relaxed) + 1;
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Err(StorageError::Cancelled);
        }
        if let Some(budget) = self.inner.check_budget {
            if n > budget {
                self.inner.cancelled.store(true, Ordering::Relaxed);
                return Err(StorageError::Cancelled);
            }
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.inner.cancelled.store(true, Ordering::Relaxed);
                return Err(StorageError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

/// A per-query time budget, convertible into a fresh [`CancelToken`] at
/// query start. The engine stores one of these as a policy knob and
/// mints a token per query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryDeadline(pub Duration);

impl QueryDeadline {
    /// A deadline of `millis` milliseconds.
    pub fn from_millis(millis: u64) -> QueryDeadline {
        QueryDeadline(Duration::from_millis(millis))
    }

    /// Mint a token whose clock starts now.
    pub fn token(&self) -> CancelToken {
        CancelToken::with_deadline(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_passes_checks() {
        let t = CancelToken::new();
        for _ in 0..10 {
            assert!(t.check().is_ok());
        }
        assert_eq!(t.checks(), 10);
        assert!(!t.is_cancelled());
    }

    #[test]
    fn manual_cancel_is_sticky_and_shared() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.check(), Err(StorageError::Cancelled));
        assert_eq!(t.check(), Err(StorageError::Cancelled));
    }

    #[test]
    fn check_budget_cancels_at_exact_boundary() {
        let t = CancelToken::after_checks(3);
        assert!(t.check().is_ok());
        assert!(t.check().is_ok());
        assert!(t.check().is_ok());
        assert_eq!(t.check(), Err(StorageError::Cancelled));
        assert_eq!(t.check(), Err(StorageError::Cancelled), "sticky");
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let t = CancelToken::with_deadline(Duration::from_nanos(0));
        assert_eq!(t.check(), Err(StorageError::DeadlineExceeded));
        // Sticky: later checks report Cancelled (the query is dead
        // either way; the first error is the one callers see).
        assert!(t.check().is_err());
    }

    #[test]
    fn generous_deadline_passes() {
        let t = QueryDeadline(Duration::from_secs(3600)).token();
        assert!(t.check().is_ok());
        assert_eq!(
            QueryDeadline::from_millis(5),
            QueryDeadline(Duration::from_millis(5))
        );
    }
}
