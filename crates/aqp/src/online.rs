//! Online aggregation (Hellerstein, Haas, Wang — SIGMOD'97; the CONTROL
//! project \[24, 25\]).
//!
//! Instead of blocking until a full scan completes, the aggregate is
//! computed over a *random permutation* of the rows, and a running
//! estimate with a shrinking confidence interval is exposed after every
//! batch. The user watches the interval collapse and stops as soon as
//! the answer is "interesting or clearly not" — the founding idea of
//! approximate interfaces for exploration.

use explore_fault::CancelToken;
use explore_storage::rng::SplitMix64;
use explore_storage::{Accumulator, AggFunc, Predicate, Result, StorageError, Table};

use crate::ci::{count_interval, mean_interval, sum_interval, ConfidenceInterval};

/// One progress snapshot of a running online aggregation.
#[derive(Debug, Clone, Copy)]
pub struct Snapshot {
    /// Rows processed so far (before filtering).
    pub processed: u64,
    /// Fraction of the table processed.
    pub fraction: f64,
    /// Running estimate with its confidence interval.
    pub interval: ConfidenceInterval,
}

/// An in-progress online aggregation over one table.
#[derive(Debug)]
pub struct OnlineAggregation {
    /// Random visiting order of row ids.
    order: Vec<u32>,
    cursor: usize,
    func: AggFunc,
    confidence: f64,
    acc: Accumulator,
    /// Accumulator of the *masked* variable (value when the row matches,
    /// 0 otherwise) over all seen rows — the i.i.d. variable whose CLT
    /// interval is valid for filtered SUMs.
    masked_acc: Accumulator,
    /// Rows seen (including filtered-out ones) — the denominator for
    /// selectivity and COUNT estimates.
    seen: u64,
    total_rows: u64,
    /// Pre-evaluated filter mask (evaluating per-batch would rescan).
    mask: Vec<bool>,
    /// Column values to aggregate, by row id.
    values: Vec<f64>,
    /// Cooperative cancellation token, checked once per batch. Owned
    /// (not borrowed) because the aggregation is a long-lived session
    /// that outlives any single engine call.
    cancel: Option<CancelToken>,
}

impl OnlineAggregation {
    /// Start an online aggregation of `func(column)` over rows matching
    /// `predicate`. `COUNT` counts matching rows; other functions
    /// require a numeric column.
    pub fn start(
        table: &Table,
        predicate: &Predicate,
        func: AggFunc,
        column: &str,
        confidence: f64,
        seed: u64,
    ) -> Result<Self> {
        let col = table.column(column)?;
        if func != AggFunc::Count && !col.data_type().is_numeric() {
            return Err(StorageError::TypeMismatch {
                column: column.to_owned(),
                expected: "numeric",
                found: col.data_type().name(),
            });
        }
        let n = table.num_rows();
        let mut order: Vec<u32> = (0..n as u32).collect();
        SplitMix64::new(seed).shuffle(&mut order);
        let mask = predicate.evaluate_mask(table)?;
        let values = if func == AggFunc::Count {
            vec![1.0; n]
        } else {
            (0..n).map(|i| col.numeric_at(i).unwrap_or(0.0)).collect()
        };
        Ok(OnlineAggregation {
            order,
            cursor: 0,
            func,
            confidence,
            acc: Accumulator::new(),
            masked_acc: Accumulator::new(),
            seen: 0,
            total_rows: n as u64,
            mask,
            values,
            cancel: None,
        })
    }

    /// Attach a cancellation token checked before every batch, so a
    /// deadline or external cancel stops the aggregation within one
    /// batch of work. The already-accumulated estimate stays valid and
    /// [`snapshot`](Self::snapshot) keeps serving it.
    pub fn with_cancel(mut self, cancel: Option<CancelToken>) -> Self {
        self.cancel = cancel;
        self
    }

    /// Process up to `batch` more rows; returns the new snapshot, or
    /// `Ok(None)` when the table is exhausted (the last snapshot before
    /// exhaustion is exact). An attached cancel token is checked before
    /// the batch runs; a triggered token surfaces as
    /// `Cancelled`/`DeadlineExceeded` without touching more rows.
    pub fn step(&mut self, batch: usize) -> Result<Option<Snapshot>> {
        if self.cursor >= self.order.len() {
            return Ok(None);
        }
        if let Some(c) = &self.cancel {
            c.check()?;
        }
        let end = (self.cursor + batch).min(self.order.len());
        for &row in &self.order[self.cursor..end] {
            self.seen += 1;
            if self.mask[row as usize] {
                self.acc.update(self.values[row as usize]);
                self.masked_acc.update(self.values[row as usize]);
            } else {
                self.masked_acc.update(0.0);
            }
        }
        self.cursor = end;
        Ok(Some(self.snapshot()))
    }

    /// The current snapshot without processing more rows.
    pub fn snapshot(&self) -> Snapshot {
        let n = self.acc.count();
        let s2 = self.acc.sample_variance();
        let interval = match self.func {
            AggFunc::Count => count_interval(n, self.seen, self.total_rows, self.confidence),
            AggFunc::Avg => mean_interval(
                self.acc.mean(),
                s2,
                n,
                // The population of *matching* rows is unknown mid-flight;
                // estimate it from the running selectivity.
                self.estimated_matching(),
                self.confidence,
            ),
            AggFunc::Sum => {
                // SUM over matching rows = mean over *all* rows of
                // (value × 1[match]) scaled by the table size; the masked
                // accumulator tracks exactly that i.i.d. variable.
                sum_interval(
                    self.masked_acc.mean(),
                    self.masked_acc.sample_variance(),
                    self.seen,
                    self.total_rows,
                    self.confidence,
                )
            }
            AggFunc::Min | AggFunc::Max | AggFunc::Var | AggFunc::Std => ConfidenceInterval {
                // Extremes have no CLT interval; report the running value
                // with unknown error (the CONTROL papers do the same).
                estimate: self.acc.finish(self.func),
                half_width: f64::INFINITY,
                confidence: self.confidence,
            },
        };
        Snapshot {
            processed: self.seen,
            fraction: self.seen as f64 / self.total_rows.max(1) as f64,
            interval,
        }
    }

    /// Run until the relative CI half-width drops to `target` (or the
    /// table is exhausted), recording a snapshot per batch. Returns the
    /// trace — the data behind experiment E5's "CI width vs tuples" plot.
    /// A triggered cancel token stops within one batch; snapshots taken
    /// before the stop are lost to the caller, but the running estimate
    /// remains queryable via [`snapshot`](Self::snapshot).
    pub fn run_until(&mut self, target_relative_error: f64, batch: usize) -> Result<Vec<Snapshot>> {
        let mut trace = Vec::new();
        while let Some(snap) = self.step(batch)? {
            let done = snap.interval.relative_error() <= target_relative_error;
            trace.push(snap);
            if done {
                break;
            }
        }
        Ok(trace)
    }

    /// Estimated number of rows matching the predicate, extrapolated
    /// from the running selectivity.
    fn estimated_matching(&self) -> u64 {
        if self.seen == 0 {
            return self.total_rows;
        }
        let sel = self.acc.count() as f64 / self.seen as f64;
        ((self.total_rows as f64 * sel).round() as u64).max(self.acc.count())
    }

    /// True when every row has been processed (estimate is exact).
    pub fn is_exhausted(&self) -> bool {
        self.cursor >= self.order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore_storage::gen::{sales_table, SalesConfig};

    fn table() -> Table {
        sales_table(&SalesConfig {
            rows: 50_000,
            ..SalesConfig::default()
        })
    }

    fn truth_avg(t: &Table) -> f64 {
        let p = t.column("price").unwrap().as_f64().unwrap();
        p.iter().sum::<f64>() / p.len() as f64
    }

    #[test]
    fn avg_estimate_converges_to_truth() {
        let t = table();
        let truth = truth_avg(&t);
        let mut oa =
            OnlineAggregation::start(&t, &Predicate::True, AggFunc::Avg, "price", 0.95, 1).unwrap();
        let trace = oa.run_until(0.001, 1000).unwrap();
        assert!(!trace.is_empty());
        // CI width shrinks monotonically-ish; compare first vs last.
        let first = trace.first().unwrap().interval.half_width;
        let last = trace.last().unwrap().interval.half_width;
        assert!(last < first / 3.0, "first {first} last {last}");
        // Final estimate is close to truth.
        let est = trace.last().unwrap().interval.estimate;
        assert!(
            (est - truth).abs() / truth < 0.02,
            "est {est} truth {truth}"
        );
    }

    #[test]
    fn early_stop_needs_far_fewer_rows_than_scan() {
        let t = table();
        let mut oa =
            OnlineAggregation::start(&t, &Predicate::True, AggFunc::Avg, "price", 0.95, 2).unwrap();
        let trace = oa.run_until(0.01, 500).unwrap(); // ±1%
        let processed = trace.last().unwrap().processed;
        assert!(processed < 25_000, "needed {processed} of 50k rows for ±1%");
        assert!(!oa.is_exhausted());
    }

    #[test]
    fn exhaustion_gives_exact_answer() {
        let t = sales_table(&SalesConfig {
            rows: 1000,
            ..SalesConfig::default()
        });
        let truth = truth_avg(&t);
        let mut oa =
            OnlineAggregation::start(&t, &Predicate::True, AggFunc::Avg, "price", 0.95, 3).unwrap();
        let mut last = None;
        while let Some(s) = oa.step(100).unwrap() {
            last = Some(s);
        }
        let s = last.unwrap();
        assert!(oa.is_exhausted());
        assert!((s.interval.estimate - truth).abs() < 1e-9);
        assert_eq!(s.interval.half_width, 0.0, "FPC collapses at 100%");
        assert!((s.fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn count_with_filter_brackets_truth() {
        let t = table();
        let pred = Predicate::eq("region", "region0");
        let truth = pred.evaluate(&t).unwrap().len() as f64;
        let mut oa = OnlineAggregation::start(&t, &pred, AggFunc::Count, "qty", 0.99, 4).unwrap();
        oa.step(5000).unwrap();
        let s = oa.snapshot();
        assert!(
            s.interval.contains(truth),
            "interval {:?} vs truth {truth}",
            s.interval
        );
    }

    #[test]
    fn sum_interval_brackets_truth() {
        let t = table();
        let pred = Predicate::eq("region", "region1");
        let sel = pred.evaluate(&t).unwrap();
        let prices = t.column("price").unwrap().as_f64().unwrap();
        let truth: f64 = sel.iter().map(|&i| prices[i as usize]).sum();
        let mut hits = 0;
        let trials = 30;
        for seed in 0..trials {
            let mut oa =
                OnlineAggregation::start(&t, &pred, AggFunc::Sum, "price", 0.95, seed).unwrap();
            oa.step(5000).unwrap();
            if oa.snapshot().interval.contains(truth) {
                hits += 1;
            }
        }
        assert!(hits >= trials * 8 / 10, "coverage {hits}/{trials}");
    }

    #[test]
    fn min_max_have_unknown_error() {
        let t = table();
        let mut oa =
            OnlineAggregation::start(&t, &Predicate::True, AggFunc::Max, "price", 0.95, 5).unwrap();
        oa.step(100).unwrap();
        assert!(oa.snapshot().interval.half_width.is_infinite());
    }

    #[test]
    fn string_aggregation_is_rejected() {
        let t = table();
        assert!(
            OnlineAggregation::start(&t, &Predicate::True, AggFunc::Sum, "region", 0.95, 6)
                .is_err()
        );
    }
}

#[cfg(test)]
mod cancel_tests {
    use super::*;
    use explore_storage::gen::{sales_table, SalesConfig};

    #[test]
    fn triggered_token_stops_within_one_batch() {
        let t = sales_table(&SalesConfig {
            rows: 10_000,
            ..SalesConfig::default()
        });
        let token = CancelToken::after_checks(2);
        let mut oa = OnlineAggregation::start(&t, &Predicate::True, AggFunc::Avg, "price", 0.95, 1)
            .unwrap()
            .with_cancel(Some(token));
        assert!(oa.step(100).unwrap().is_some());
        assert!(oa.step(100).unwrap().is_some());
        assert!(matches!(oa.step(100), Err(StorageError::Cancelled)));
        // The running estimate survives the stop.
        assert_eq!(oa.snapshot().processed, 200);
    }
}
