//! Workload-determinism suite: the interactive session driver is a
//! *reproducible experiment*, not just a load generator.
//!
//! Three properties are asserted, all downstream of the engine's
//! bit-identical differential guarantees:
//!
//! 1. **Seed determinism** — the same [`WorkloadConfig`] yields the same
//!    [`DeterministicReport`] (counts + result checksum) on every run,
//!    regardless of thread scheduling.
//! 2. **Policy independence** — the checksum is identical across every
//!    `ExecPolicy × CachePolicy × ShardPolicy` combination: concurrency
//!    and reuse machinery must never change answers.
//! 3. **Graceful chaos** — seeded fault schedules over the exec, cache,
//!    crack, and shard fail points leave the deterministic report
//!    untouched (degraded paths are bit-identical and the runner counts
//!    rather than propagates errors), and the same runner re-serves
//!    truth after `disarm_all`.
//!
//! Iteration counts default to the CI smoke budget and scale up via the
//! `WORKLOAD_ITERS` env var for soak runs (mirroring `CHAOS_ITERS`).

use std::time::Duration;

use exploration::cache::CachePolicy;
use exploration::exec::ExecPolicy;
use exploration::shard::{ShardConfig, ShardPolicy};
use exploration::storage::rng::SplitMix64;
use exploration::workload::{DriveMode, WorkloadConfig, WorkloadReport, WorkloadRunner};
use exploration::Schedule;

/// Small-but-concurrent config: several sessions on several threads, so
/// scheduling nondeterminism has every chance to leak if it can.
fn base_config(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        sessions: 4,
        interactions: 12,
        seed,
        rows: 3_000,
        threads: 4,
        exec: ExecPolicy::Serial,
        cache: CachePolicy::on(),
        shard: ShardPolicy::Off,
        think: Duration::ZERO,
        deadline: None,
        budget: Duration::from_millis(50),
        mode: DriveMode::Direct,
    }
}

fn run(config: WorkloadConfig) -> WorkloadReport {
    WorkloadRunner::new(config)
        .expect("build runner")
        .run()
        .expect("run workload")
}

/// Iteration budget, `WORKLOAD_ITERS`-scalable for soak runs.
fn workload_iters() -> usize {
    std::env::var("WORKLOAD_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
}

/// Fail points the workload's interactions reach (query, cracked_range,
/// discover_cube, cache traffic, shard fan-out).
const POINTS: &[&str] = &[
    "exec.spawn",
    "exec.morsel",
    "cache.admit",
    "cache.lookup",
    "cache.evict",
    "crack.reorg",
    "shard.dispatch",
    "shard.merge",
];

#[test]
fn same_seed_same_report_across_runs_and_thread_counts() {
    for iter in 0..workload_iters() {
        let seed = 0x5EED_0000 + iter as u64;
        let truth = run(base_config(seed)).deterministic();
        assert_eq!(truth.errors, 0, "seed {seed:#x}: clean run must not error");
        assert_eq!(truth.interactions, 48);

        // Same config again: identical projection.
        assert_eq!(
            run(base_config(seed)).deterministic(),
            truth,
            "seed {seed:#x}"
        );

        // Same seed, different concurrency: scheduling must not leak.
        let single = WorkloadConfig {
            threads: 1,
            ..base_config(seed)
        };
        assert_eq!(
            run(single).deterministic(),
            truth,
            "seed {seed:#x}: 1 thread vs 4"
        );
    }

    // And different seeds genuinely explore different trajectories.
    assert_ne!(
        run(base_config(1)).deterministic().checksum,
        run(base_config(2)).deterministic().checksum
    );
}

#[test]
fn checksum_is_identical_across_exec_cache_shard_policies() {
    let truth = run(base_config(0xCAFE)).deterministic();
    let variants = [
        (
            "parallel",
            ExecPolicy::Parallel { workers: 4 },
            CachePolicy::on(),
            ShardPolicy::Off,
        ),
        (
            "uncached",
            ExecPolicy::Serial,
            CachePolicy::Off,
            ShardPolicy::Off,
        ),
        (
            "sharded",
            ExecPolicy::Serial,
            CachePolicy::on(),
            ShardPolicy::On(ShardConfig {
                count: 3,
                min_rows_per_shard: 1,
            }),
        ),
        (
            "parallel_sharded_uncached",
            ExecPolicy::Parallel { workers: 2 },
            CachePolicy::Off,
            ShardPolicy::On(ShardConfig {
                count: 4,
                min_rows_per_shard: 1,
            }),
        ),
    ];
    for (name, exec, cache, shard) in variants {
        let got = run(WorkloadConfig {
            exec,
            cache,
            shard,
            ..base_config(0xCAFE)
        })
        .deterministic();
        assert_eq!(got, truth, "policy variant {name} changed the results");
    }
}

/// A random fault schedule derived deterministically from the rng
/// (mirrors the chaos-differential suite).
fn random_schedule(rng: &mut SplitMix64) -> Schedule {
    match rng.range_i64(0, 4) {
        0 => Schedule::Always,
        1 => Schedule::Nth(rng.range_i64(1, 5) as u64),
        2 => Schedule::FirstN(rng.range_i64(1, 4) as u64),
        _ => Schedule::Seeded {
            seed: rng.next_u64(),
            one_in: rng.range_i64(1, 5) as u64,
        },
    }
}

#[test]
fn seeded_chaos_preserves_the_report_and_truth_returns_after_disarm() {
    let truth = run(base_config(0xC405)).deterministic();
    for iter in 0..workload_iters() {
        let mut rng = SplitMix64::new(0xC405_0000 + iter as u64);
        // Half the iterations run sharded so shard.dispatch/merge are
        // actually reachable; half exercise the single-table paths.
        let shard = if rng.range_i64(0, 2) == 0 {
            ShardPolicy::On(ShardConfig {
                count: rng.range_i64(2, 4) as usize,
                min_rows_per_shard: 1,
            })
        } else {
            ShardPolicy::Off
        };
        let exec = if rng.range_i64(0, 2) == 0 {
            ExecPolicy::Serial
        } else {
            ExecPolicy::Parallel {
                workers: rng.range_i64(1, 5) as usize,
            }
        };
        let runner = WorkloadRunner::new(WorkloadConfig {
            exec,
            shard,
            ..base_config(0xC405)
        })
        .expect("build runner");

        let faults = runner.fail_points();
        for _ in 0..rng.range_i64(1, 4) {
            let point = POINTS[rng.range_i64(0, POINTS.len() as i64) as usize];
            faults.arm(point, random_schedule(&mut rng));
        }

        // Under faults (no deadline, no cancel): every degraded path is
        // bit-identical, so the whole deterministic report — including
        // the result checksum — must survive the chaos unchanged.
        let chaotic = runner.run().expect("chaotic run completes");
        assert_eq!(
            chaotic.deterministic(),
            truth,
            "iter {iter}: faults changed answers or dropped interactions"
        );

        // Disarmed, the same runner re-serves truth.
        faults.disarm_all();
        let clean = runner.run().expect("post-chaos run completes");
        assert_eq!(clean.deterministic(), truth, "iter {iter}: post-disarm");
    }
}

/// Cross-version determinism anchor: these checksums were captured on
/// the engine *before* the shared-read refactor (global `&mut self`
/// query path behind one big lock). The lock decomposition — per-table
/// `RwLock`s, `Arc` snapshots, session-scoped overlays — must be purely
/// a scheduling change, so the same seeds must reproduce the same
/// checksums bit-for-bit forever. A mismatch here means the refactor
/// (or a later change) altered what a query *computes*, not just when
/// it runs.
#[test]
fn checksums_match_pre_refactor_pinned_values() {
    let pinned: &[(u64, u64)] = &[
        (0x5EED_0000, 8118399758598064744),
        (0x5EED_0001, 10173993084681322017),
        (0xCAFE, 11122414987131748463),
        (0xC405, 13810340799194838314),
        (0x1, 17244623889914159750),
        (0x2, 6269316746198252329),
    ];
    for &(seed, checksum) in pinned {
        let got = run(base_config(seed)).deterministic();
        assert_eq!(got.errors, 0, "seed {seed:#x}");
        assert_eq!(got.interactions, 48, "seed {seed:#x}");
        assert_eq!(
            got.checksum, checksum,
            "seed {seed:#x}: checksum diverged from the pre-refactor engine"
        );
    }
    // Sharding is invisible to results: the sharded run of a pinned
    // seed reproduces the unsharded pinned checksum.
    let sharded = run(WorkloadConfig {
        shard: ShardPolicy::On(ShardConfig {
            count: 3,
            min_rows_per_shard: 1,
        }),
        ..base_config(0xCAFE)
    })
    .deterministic();
    assert_eq!(sharded.checksum, 11122414987131748463);
    // And the out-of-the-box config is anchored too.
    let default = run(WorkloadConfig::default()).deterministic();
    assert_eq!(default.interactions, 96);
    assert_eq!(default.checksum, 15804763216757087682);
}

#[test]
fn deadline_cuts_are_counted_violations_never_panics() {
    let report = run(WorkloadConfig {
        deadline: Some(Duration::ZERO),
        exec: ExecPolicy::Parallel { workers: 2 },
        ..base_config(0xDEAD)
    });
    // Every engine-backed interaction is cut by the zero deadline; pan
    // runs lock-free off the grid and survives. Nothing panics, every
    // attempt is accounted.
    assert_eq!(report.interactions, 48);
    assert!(report.errors > 0, "zero deadline must cut queries");
    assert!(
        report.violations >= report.errors,
        "deadline cuts count as SLO violations"
    );
    // A measured field sanity check: violation rate is a percentage.
    let rate = report.violation_rate_pct();
    assert!((0.0..=100.0).contains(&rate));
}
