//! Diversification algorithms: top-k baseline, MMR greedy, and Swap
//! (Vieira et al., "On query result diversification", ICDE'11 \[65\]).

use explore_exec::QueryCtx;
use explore_storage::Result;

use crate::item::{objective, Item};

/// Work metric: pairwise distance evaluations (the dominant cost of all
/// diversification algorithms, and what DivIDE's caching saves).
#[derive(Debug, Default, Clone, Copy)]
pub struct DivStats {
    pub distance_evals: u64,
}

/// Pure relevance ranking: the no-diversity baseline.
pub fn top_k_relevance(items: &[Item], k: usize) -> Vec<u32> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        items[b]
            .relevance
            .total_cmp(&items[a].relevance)
            .then(items[a].id.cmp(&items[b].id))
    });
    order.truncate(k);
    order.into_iter().map(|i| items[i].id).collect()
}

/// Maximal Marginal Relevance greedy selection: repeatedly add the item
/// maximizing `λ·relevance + (1-λ)·min-distance-to-selected`.
/// Optionally seeded with already-chosen ids (DivIDE cache reuse).
/// The context's cancellation tokens are checked once per greedy round
/// (each round scans all remaining candidates).
pub fn mmr(
    items: &[Item],
    k: usize,
    lambda: f64,
    seed_ids: &[u32],
    stats: &mut DivStats,
    ctx: &QueryCtx,
) -> Result<Vec<u32>> {
    let k = k.min(items.len());
    let mut selected: Vec<usize> = Vec::with_capacity(k);
    let mut remaining: Vec<usize> = (0..items.len()).collect();
    // Apply seeds first (ignoring unknown ids).
    for &sid in seed_ids {
        if selected.len() >= k {
            break;
        }
        if let Some(pos) = remaining.iter().position(|&i| items[i].id == sid) {
            selected.push(remaining.swap_remove(pos));
        }
    }
    // Start from the most relevant item when unseeded.
    if selected.is_empty() && k > 0 {
        let best = remaining
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| items[a].relevance.total_cmp(&items[b].relevance))
            .map(|(pos, _)| pos);
        if let Some(pos) = best {
            selected.push(remaining.swap_remove(pos));
        }
    }
    while selected.len() < k && !remaining.is_empty() {
        ctx.check_cancel()?;
        let mut best_pos = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (pos, &cand) in remaining.iter().enumerate() {
            let mut min_d = f64::INFINITY;
            for &s in &selected {
                min_d = min_d.min(items[cand].distance(&items[s]));
                stats.distance_evals += 1;
            }
            let score = lambda * items[cand].relevance + (1.0 - lambda) * min_d;
            if score > best_score {
                best_score = score;
                best_pos = pos;
            }
        }
        selected.push(remaining.swap_remove(best_pos));
    }
    Ok(selected.into_iter().map(|i| items[i].id).collect())
}

/// The Swap algorithm: start from top-k relevance, then greedily swap in
/// outside items whenever the bi-criteria [`objective`] improves.
pub fn swap(
    items: &[Item],
    k: usize,
    lambda: f64,
    max_rounds: usize,
    stats: &mut DivStats,
    ctx: &QueryCtx,
) -> Result<Vec<u32>> {
    let k = k.min(items.len());
    if k == 0 {
        return Ok(Vec::new());
    }
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| items[b].relevance.total_cmp(&items[a].relevance));
    let mut selected: Vec<usize> = order[..k].to_vec();
    let mut outside: Vec<usize> = order[k..].to_vec();
    let eval = |sel: &[usize], stats: &mut DivStats| -> f64 {
        let refs: Vec<&Item> = sel.iter().map(|&i| &items[i]).collect();
        stats.distance_evals += (sel.len() * sel.len().saturating_sub(1) / 2) as u64;
        objective(&refs, lambda)
    };
    let mut current = eval(&selected, stats);
    for _ in 0..max_rounds {
        ctx.check_cancel()?;
        let mut improved = false;
        #[allow(clippy::needless_range_loop)]
        'outer: for oi in 0..outside.len() {
            for si in 0..selected.len() {
                std::mem::swap(&mut selected[si], &mut outside[oi]);
                let candidate = eval(&selected, stats);
                if candidate > current + 1e-12 {
                    current = candidate;
                    improved = true;
                    break 'outer;
                }
                std::mem::swap(&mut selected[si], &mut outside[oi]);
            }
        }
        if !improved {
            break;
        }
    }
    Ok(selected.into_iter().map(|i| items[i].id).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore_storage::rng::SplitMix64;

    /// Clustered items: high-relevance items all sit in one tight
    /// cluster; other clusters hold lower-relevance items.
    fn clustered_items() -> Vec<Item> {
        let mut rng = SplitMix64::new(1);
        let mut items = Vec::new();
        for c in 0..5 {
            let center = (c as f64) * 10.0;
            let rel_base = if c == 0 { 0.9 } else { 0.5 - 0.05 * c as f64 };
            for i in 0..20 {
                items.push(Item::new(
                    (c * 20 + i) as u32,
                    rel_base + 0.01 * rng.unit_f64(),
                    vec![center + rng.gaussian() * 0.3, rng.gaussian() * 0.3],
                ));
            }
        }
        items
    }

    fn by_ids<'a>(items: &'a [Item], ids: &[u32]) -> Vec<&'a Item> {
        ids.iter()
            .map(|&id| items.iter().find(|i| i.id == id).unwrap())
            .collect()
    }

    #[test]
    fn top_k_is_pure_relevance() {
        let items = clustered_items();
        let ids = top_k_relevance(&items, 10);
        assert_eq!(ids.len(), 10);
        // All from the high-relevance cluster 0 (ids < 20).
        assert!(ids.iter().all(|&id| id < 20));
    }

    #[test]
    fn mmr_trades_relevance_for_spread() {
        let items = clustered_items();
        let mut stats = DivStats::default();
        let div_ids = mmr(&items, 10, 0.3, &[], &mut stats, &QueryCtx::none()).unwrap();
        let top_ids = top_k_relevance(&items, 10);
        let lambda = 0.3;
        let div_obj = objective(&by_ids(&items, &div_ids), lambda);
        let top_obj = objective(&by_ids(&items, &top_ids), lambda);
        assert!(div_obj > top_obj, "MMR {div_obj} vs top-k {top_obj}");
        // MMR should cover multiple clusters.
        let clusters: std::collections::HashSet<u32> = div_ids.iter().map(|id| id / 20).collect();
        assert!(clusters.len() >= 3, "covered {clusters:?}");
        assert!(stats.distance_evals > 0);
    }

    #[test]
    fn lambda_one_equals_topk_set() {
        let items = clustered_items();
        let mut stats = DivStats::default();
        let mut a = mmr(&items, 10, 1.0, &[], &mut stats, &QueryCtx::none()).unwrap();
        let mut b = top_k_relevance(&items, 10);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn swap_improves_over_topk() {
        let items = clustered_items();
        let mut stats = DivStats::default();
        let lambda = 0.3;
        let sw = swap(&items, 10, lambda, 50, &mut stats, &QueryCtx::none()).unwrap();
        assert_eq!(sw.len(), 10);
        let sw_obj = objective(&by_ids(&items, &sw), lambda);
        let top_obj = objective(&by_ids(&items, &top_k_relevance(&items, 10)), lambda);
        assert!(sw_obj >= top_obj, "swap {sw_obj} vs top {top_obj}");
    }

    #[test]
    fn seeded_mmr_respects_and_reuses_seeds() {
        let items = clustered_items();
        let mut stats = DivStats::default();
        let seeds = vec![0u32, 25, 45];
        let ids = mmr(&items, 10, 0.5, &seeds, &mut stats, &QueryCtx::none()).unwrap();
        for s in &seeds {
            assert!(ids.contains(s));
        }
        // Unknown seed ids are ignored.
        let ids = mmr(&items, 5, 0.5, &[9999], &mut stats, &QueryCtx::none()).unwrap();
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn k_larger_than_population() {
        let items = clustered_items();
        let mut stats = DivStats::default();
        assert_eq!(
            mmr(&items, 1000, 0.5, &[], &mut stats, &QueryCtx::none())
                .unwrap()
                .len(),
            items.len()
        );
        assert_eq!(
            swap(&items, 1000, 0.5, 5, &mut stats, &QueryCtx::none())
                .unwrap()
                .len(),
            items.len()
        );
        assert!(mmr(&items, 0, 0.5, &[], &mut stats, &QueryCtx::none())
            .unwrap()
            .is_empty());
        assert!(swap(&[], 10, 0.5, 5, &mut stats, &QueryCtx::none())
            .unwrap()
            .is_empty());
    }
}
