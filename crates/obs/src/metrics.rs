//! Named counters and log-scale latency histograms, aggregated across
//! threads.
//!
//! The registry is a map from name to an `Arc`'d atomic instrument.
//! Lookups take a read lock only on first use per call site — callers
//! that care about the hot path resolve the `Arc` once and bump the
//! atomic directly. Histograms use power-of-two buckets (one per bit
//! position of the nanosecond value), so `observe` is two atomic adds
//! and a `leading_zeros`, and quantiles are exact to within a factor of
//! two — plenty for p50/p95/p99 trend lines, with no allocation and no
//! locking on the observe path.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// Number of power-of-two buckets; covers the full `u64` range.
const BUCKETS: usize = 64;

/// A lock-free log-scale histogram of nanosecond observations.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    /// `buckets[b]` counts values `v` with `bucket_of(v) == b`, i.e.
    /// `v == 0` in bucket 0 and `2^(b-1) <= v < 2^b` in bucket `b`.
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Which bucket a value falls into: 0 for 0, else `floor(log2(v)) + 1`.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Representative (geometric-middle) value for a bucket.
fn bucket_mid(b: usize) -> u64 {
    if b == 0 {
        return 0;
    }
    let low = 1u64 << (b - 1);
    let high = if b >= 64 { u64::MAX } else { (1u64 << b) - 1 };
    low + (high - low) / 2
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (0.0–1.0) as the geometric middle of the bucket
    /// holding it; 0 when empty. Accurate to within 2× by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for b in 0..BUCKETS {
            seen += self.buckets[b].load(Ordering::Relaxed);
            if seen >= target {
                return bucket_mid(b);
            }
        }
        bucket_mid(BUCKETS - 1)
    }

    /// Exact arithmetic mean of all observations (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Point-in-time summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            mean_ns: self.mean(),
            p50_ns: self.quantile(0.50),
            p95_ns: self.quantile(0.95),
            p99_ns: self.quantile(0.99),
        }
    }
}

/// Exact nearest-rank `q`-quantile (0.0–1.0) of an ascending-sorted
/// slice of nanosecond observations; 0 when empty.
///
/// The [`Histogram`]'s power-of-two buckets are the right shape for an
/// always-on metrics surface, but their quantiles snap to bucket
/// midpoints — a value drifting across a bucket boundary *doubles*.
/// Consumers that gate on a percentile (the workload driver's SLO
/// records) keep the raw samples and use this instead, so regressions
/// move the number continuously.
pub fn percentile_sorted(sorted_ns: &[u64], q: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    debug_assert!(sorted_ns.windows(2).all(|w| w[0] <= w[1]));
    let rank = (q.clamp(0.0, 1.0) * sorted_ns.len() as f64).ceil() as usize;
    sorted_ns[rank.clamp(1, sorted_ns.len()) - 1]
}

/// Frozen summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub mean_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
}

/// Frozen summary of the whole registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram's summary, if any observation landed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counters:")?;
        for (name, v) in &self.counters {
            writeln!(f, "  {name:<40} {v}")?;
        }
        writeln!(f, "histograms (ns):")?;
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "  {name:<40} n={} mean={} p50={} p95={} p99={}",
                h.count, h.mean_ns, h.p50_ns, h.p95_ns, h.p99_ns
            )?;
        }
        Ok(())
    }
}

/// Registry of named counters and histograms shared across threads.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get-or-create a counter; hold the `Arc` to bump it lock-free.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(self.counters.write().entry(name.to_owned()).or_default())
    }

    /// Bump a counter by `by`.
    pub fn inc(&self, name: &str, by: u64) {
        self.counter(name).fetch_add(by, Ordering::Relaxed);
    }

    /// Get-or-create a histogram; hold the `Arc` to observe lock-free.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(self.histograms.write().entry(name.to_owned()).or_default())
    }

    /// Record one nanosecond observation into a named histogram.
    pub fn observe_ns(&self, name: &str, ns: u64) {
        self.histogram(name).observe(ns);
    }

    /// Freeze every instrument into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_mid(0), 0);
        assert_eq!(bucket_mid(1), 1);
        assert_eq!(bucket_mid(3), 5, "[4,7] → 5");
    }

    #[test]
    fn quantiles_are_within_2x() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.mean(), 500);
        let p50 = h.quantile(0.5);
        assert!((250..=1000).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((500..=1023).contains(&p99), "p99 {p99}");
        assert!(h.quantile(1.0) >= h.quantile(0.5));
    }

    #[test]
    fn percentile_sorted_is_exact_nearest_rank() {
        assert_eq!(percentile_sorted(&[], 0.95), 0);
        assert_eq!(percentile_sorted(&[7], 0.0), 7);
        assert_eq!(percentile_sorted(&[7], 1.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_sorted(&v, 0.50), 50);
        assert_eq!(percentile_sorted(&v, 0.95), 95);
        assert_eq!(percentile_sorted(&v, 0.99), 99);
        assert_eq!(percentile_sorted(&v, 1.0), 100);
        // Out-of-range quantiles clamp instead of indexing out of bounds.
        assert_eq!(percentile_sorted(&v, -1.0), 1);
        assert_eq!(percentile_sorted(&v, 2.0), 100);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn registry_aggregates_across_threads() {
        let m = Arc::new(MetricsRegistry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    let c = m.counter("queries");
                    for i in 0..100u64 {
                        c.fetch_add(1, Ordering::Relaxed);
                        m.observe_ns("latency", i * 1000);
                    }
                });
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.counter("queries"), 400);
        assert_eq!(snap.counter("never_bumped"), 0);
        let h = snap.histogram("latency").expect("observed");
        assert_eq!(h.count, 400);
        assert!(h.p95_ns >= h.p50_ns);
        let rendered = snap.to_string();
        assert!(rendered.contains("queries"));
        assert!(rendered.contains("latency"));
    }
}
