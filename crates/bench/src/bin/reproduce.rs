//! Regenerate the experiments of EXPERIMENTS.md.
//!
//! ```bash
//! cargo run --release -p explore-bench --bin reproduce -- --all
//! cargo run --release -p explore-bench --bin reproduce -- -e e1 -e e7
//! cargo run --release -p explore-bench --bin reproduce -- --list
//! ```

use explore_bench::registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reg = registry();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: reproduce [--all | --list | -e <id>...]");
        eprintln!("experiment ids:");
        for (id, title, _) in &reg {
            eprintln!("  {id:<4} {title}");
        }
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        for (id, title, _) in &reg {
            println!("{id:<4} {title}");
        }
        return;
    }
    let run_all = args.iter().any(|a| a == "--all");
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "-e" {
            match it.next() {
                Some(id) => wanted.push(id.to_lowercase()),
                None => {
                    eprintln!("-e requires an experiment id");
                    std::process::exit(2);
                }
            }
        }
    }
    let mut ran = 0;
    for (id, title, runner) in &reg {
        if run_all || wanted.iter().any(|w| w == id) {
            println!("================================================================");
            println!("{id}: {title}");
            println!("================================================================");
            runner();
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no experiments matched {wanted:?}; use --list");
        std::process::exit(2);
    }
}
