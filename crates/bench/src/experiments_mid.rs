//! Middleware experiments: approximation (E5, E6, E12), prefetching
//! (E9), diversification (E10) and cube exploration (E13).

use explore_core::aqp::{Bound, BoundedExecutor, OnlineAggregation};
use explore_core::cube::{CubeSession, DataCube, DiscoveryView};
use explore_core::diversify::{mmr, objective, top_k_relevance, DivStats, DiversityCache, Item};
use explore_core::exec::QueryCtx;
use explore_core::prefetch::{
    find_windows_naive, find_windows_prefix, GridIndex, PanSession, Viewport,
};
use explore_core::sampling::SampleCatalog;
use explore_core::storage::gen::{sales_table, sky_table, SalesConfig};
use explore_core::storage::rng::{SplitMix64, Zipf};
use explore_core::storage::{AggFunc, Predicate};
use explore_core::synopses::{CountMinSketch, Histogram, HyperLogLog, WaveletSynopsis};

use crate::{timed, us};

/// E5 — online aggregation: the running estimate and its ±CI as tuples
/// stream by, plus the early-stopping point for a ±1% answer. Expected
/// shape: half-width shrinks like 1/√n and collapses at 100% via the
/// finite-population correction.
pub fn e5() {
    let rows = 2_000_000;
    let t = sales_table(&SalesConfig {
        rows,
        ..SalesConfig::default()
    });
    let truth = {
        let p = t.column("price").expect("col").as_f64().expect("f64");
        p.iter().sum::<f64>() / p.len() as f64
    };
    let mut oa = OnlineAggregation::start(&t, &Predicate::True, AggFunc::Avg, "price", 0.95, 50)
        .expect("start");
    println!("E5: online AVG(price) over {rows} rows (truth {truth:.3})\n");
    println!(
        "{:>10} | {:>12} | {:>12} | {:>10}",
        "tuples", "estimate", "±half-width", "rel. err"
    );
    let mut shown = 0;
    while let Some(snap) = oa.step(20_000).expect("step") {
        shown += 1;
        if shown <= 5 || shown % 20 == 0 || oa.is_exhausted() {
            println!(
                "{:>10} | {:>12.3} | {:>12.4} | {:>9.3}%",
                snap.processed,
                snap.interval.estimate,
                snap.interval.half_width,
                snap.interval.relative_error() * 100.0
            );
        }
        if shown == 5 && snap.interval.relative_error() < 0.0001 {
            break;
        }
    }
    let mut oa = OnlineAggregation::start(&t, &Predicate::True, AggFunc::Avg, "price", 0.95, 51)
        .expect("start");
    let trace = oa.run_until(0.01, 5_000).expect("run");
    println!(
        "\nearly stop at ±1%@95%: {} of {rows} tuples ({:.2}%)",
        trace.last().expect("non-empty").processed,
        trace.last().expect("non-empty").fraction * 100.0
    );
    println!("shape check: half-width ∝ 1/√n; ±1% needs a small fraction of the table.\n");
}

/// E6 — BlinkDB-style bounds: measured relative error and latency per
/// sample fraction, then the bound-driven picks. Expected shape: error
/// falls like 1/√(fraction); the error-bound query picks the smallest
/// adequate sample; the row budget picks the largest affordable one.
pub fn e6() {
    let rows = 1_000_000;
    let t = sales_table(&SalesConfig {
        rows,
        ..SalesConfig::default()
    });
    let fractions = [0.0005, 0.001, 0.005, 0.01, 0.05, 0.1];
    let catalog = SampleCatalog::build(&t, &fractions, &[("region", 500)], 60, &QueryCtx::none())
        .expect("catalog");
    let ex = BoundedExecutor::new(&t, &catalog);
    let truth = {
        let p = t.column("price").expect("col").as_f64().expect("f64");
        p.iter().sum::<f64>() / p.len() as f64
    };
    println!("E6: AVG(price) over {rows} rows, sample ladder sweep (truth {truth:.3})\n");
    println!(
        "{:>10} | {:>10} | {:>12} | {:>12} | {:>12}",
        "fraction", "rows", "estimate", "actual err", "latency"
    );
    for &f in &fractions {
        let (ans, t_us) = timed(|| {
            ex.aggregate(
                &Predicate::True,
                AggFunc::Avg,
                "price",
                Bound::RowBudget {
                    rows: (rows as f64 * f) as usize + 1,
                },
                &QueryCtx::none(),
            )
            .expect("aggregate")
        });
        println!(
            "{:>10} | {:>10} | {:>12.3} | {:>11.3}% | {:>12}",
            f,
            ans.rows_scanned,
            ans.interval.estimate,
            (ans.interval.estimate - truth).abs() / truth * 100.0,
            us(t_us)
        );
    }
    for target in [0.05, 0.01, 0.002] {
        let ans = ex
            .aggregate(
                &Predicate::True,
                AggFunc::Avg,
                "price",
                Bound::RelativeError {
                    target,
                    confidence: 0.95,
                },
                &QueryCtx::none(),
            )
            .expect("aggregate");
        println!(
            "\nerror bound ±{:.1}% → picked fraction {} ({} rows, achieved ±{:.3}%)",
            target * 100.0,
            ans.fraction_used,
            ans.rows_scanned,
            ans.interval.relative_error() * 100.0
        );
    }
    println!(
        "\nshape check: actual error shrinks ~1/√fraction; tighter bounds escalate the ladder.\n"
    );
}

/// E9 — semantic windows + prefetching: (a) naive vs prefix-sum window
/// search cost; (b) pan-session hit rate with and without trajectory
/// prefetching. Expected shape: shared evaluation is one pass; prefetch
/// turns most foreground fetches into cache hits.
pub fn e9() {
    let sky = sky_table(1_000_000, 8, 1000.0, 90);
    let grid = GridIndex::build(&sky, "x", "y", "mag", 64, 64).expect("grid");
    println!("E9: 1M-point sky, 64×64 grid\n");
    let ((naive_hits, naive_cost), t_naive) = timed(|| find_windows_naive(&grid, 4, 4, 6000));
    let ((prefix_hits, prefix_cost), t_prefix) = timed(|| find_windows_prefix(&grid, 4, 4, 6000));
    assert_eq!(naive_hits.len(), prefix_hits.len());
    println!(
        "window search (4×4, ≥6000 objects): {} hits | naive {} ({} pts) | prefix {} ({} pts)",
        naive_hits.len(),
        us(t_naive),
        naive_cost,
        us(t_prefix),
        prefix_cost
    );

    for prefetch in [false, true] {
        let mut session = PanSession::new(&grid, prefetch);
        // A drift-then-turn trajectory, 40 steps.
        for i in 0..40i64 {
            let (cx, cy) = if i < 20 {
                (i, 10 + i / 4)
            } else {
                (20 + (i - 20) / 2, 15 + (i - 20))
            };
            session.view(Viewport { cx, cy, w: 5, h: 5 }).expect("view");
        }
        let s = session.stats();
        println!(
            "pan session (prefetch={prefetch}): hit rate {:>5.1}% | foreground {} pts | background {} pts",
            s.hit_rate() * 100.0,
            s.foreground_work,
            s.background_work
        );
    }
    println!("\nshape check: prefix search touches each point once; prefetching moves fetch work off the critical path.\n");
}

/// E10 — diversification: the relevance/diversity trade-off across λ,
/// the MMR-vs-Swap-vs-top-k objective comparison, and DivIDE-style
/// cache reuse. Expected shape: diversity rises as λ falls; cache reuse
/// cuts distance evaluations on overlapping queries.
pub fn e10() {
    let mut rng = SplitMix64::new(100);
    let items: Vec<Item> = (0..2000)
        .map(|i| {
            Item::new(
                i,
                rng.unit_f64(),
                vec![rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)],
            )
        })
        .collect();
    let refs = |ids: &[u32]| -> Vec<&Item> {
        ids.iter()
            .map(|&id| items.iter().find(|i| i.id == id).expect("id"))
            .collect()
    };
    println!("E10: 2000 items, k=20\n");
    println!(
        "{:>6} | {:>10} | {:>10} | {:>12} | {:>12}",
        "λ", "avg rel", "avg dist", "objective", "latency"
    );
    for &lambda in &[1.0, 0.7, 0.5, 0.3, 0.0] {
        let mut stats = DivStats::default();
        let (ids, t_us) =
            timed(|| mmr(&items, 20, lambda, &[], &mut stats, &QueryCtx::none()).expect("mmr"));
        let sel = refs(&ids);
        let rel: f64 = sel.iter().map(|i| i.relevance).sum::<f64>() / sel.len() as f64;
        let mut dist = 0.0;
        let mut pairs = 0;
        for i in 0..sel.len() {
            for j in (i + 1)..sel.len() {
                dist += sel[i].distance(sel[j]);
                pairs += 1;
            }
        }
        println!(
            "{:>6} | {:>10.3} | {:>10.2} | {:>12.3} | {:>12}",
            lambda,
            rel,
            dist / pairs as f64,
            objective(&sel, lambda),
            us(t_us)
        );
    }
    let top = top_k_relevance(&items, 20);
    println!(
        "\ntop-k baseline objective at λ=0.3: {:.3}",
        objective(&refs(&top), 0.3)
    );

    // DivIDE cache reuse over a drifting session of overlapping queries.
    for reuse in [false, true] {
        let mut cache = DiversityCache::new();
        for step in 0..10usize {
            let lo = step * 100;
            let window: Vec<Item> = items[lo..lo + 1000].to_vec();
            cache
                .diversify(&window, 20, 0.5, reuse, &QueryCtx::none())
                .expect("diversify");
        }
        println!(
            "session of 10 overlapping queries (reuse={reuse}): {} distance evals, {} reused",
            cache.stats().distance_evals,
            cache.reused_queries
        );
    }
    println!("\nshape check: λ sweeps trade relevance for spread; reuse cuts the quadratic distance work.\n");
}

/// E12 — synopsis accuracy vs space on zipfian data. Expected shape:
/// per-family error falls with space; equi-depth beats equi-width under
/// skew; CM-sketch never underestimates.
pub fn e12() {
    let n = 500_000usize;
    let mut rng = SplitMix64::new(120);
    let zipf = Zipf::new(10_000, 1.1);
    let keys: Vec<usize> = (0..n).map(|_| zipf.sample(&mut rng)).collect();
    let data: Vec<f64> = keys.iter().map(|&k| k as f64).collect();
    let probes: Vec<(f64, f64)> = (0..50)
        .map(|i| (i as f64 * 100.0, i as f64 * 100.0 + 400.0))
        .collect();

    println!("E12: {n} zipfian values (10k distinct, s=1.1)\n");
    println!(
        "{:>14} | {:>10} | {:>14}",
        "synopsis", "space", "mean rel. err"
    );
    for buckets in [16usize, 64, 256] {
        let ew = Histogram::equi_width(&data, buckets);
        let ed = Histogram::equi_depth(&data, buckets);
        println!(
            "{:>14} | {:>10} | {:>13.3}%",
            "equi-width",
            buckets,
            ew.range_error(&data, &probes) * 100.0
        );
        println!(
            "{:>14} | {:>10} | {:>13.3}%",
            "equi-depth",
            buckets,
            ed.range_error(&data, &probes) * 100.0
        );
    }
    for coeffs in [32usize, 128, 512] {
        // Wavelet over the key-frequency vector.
        let mut freq = vec![0.0; 10_000];
        for &k in &keys {
            freq[k] += 1.0;
        }
        let w = WaveletSynopsis::build(&freq, coeffs);
        let err: f64 = probes
            .iter()
            .map(|&(lo, hi)| {
                let truth: f64 = freq[lo as usize..(hi as usize).min(10_000)].iter().sum();
                (w.range_sum(lo as usize, hi as usize) - truth).abs() / truth.max(1.0)
            })
            .sum::<f64>()
            / probes.len() as f64;
        println!(
            "{:>14} | {:>10} | {:>13.3}%",
            "haar wavelet",
            coeffs,
            err * 100.0
        );
    }
    for (w, d) in [(64usize, 4usize), (256, 4), (1024, 4)] {
        let mut cms = CountMinSketch::new(w, d);
        for &k in &keys {
            cms.insert(k as u64);
        }
        let mut freq = std::collections::HashMap::new();
        for &k in &keys {
            *freq.entry(k).or_insert(0u64) += 1;
        }
        let err: f64 = (0..100)
            .map(|k| {
                let truth = freq.get(&k).copied().unwrap_or(0) as f64;
                (cms.estimate(k as u64) as f64 - truth) / truth.max(1.0)
            })
            .sum::<f64>()
            / 100.0;
        println!(
            "{:>14} | {:>10} | {:>13.3}%",
            "count-min",
            w * d,
            err * 100.0
        );
    }
    for p in [8u32, 12, 14] {
        let mut hll = HyperLogLog::new(p);
        for &k in &keys {
            hll.insert(k as u64);
        }
        let distinct = {
            let mut ks = keys.clone();
            ks.sort_unstable();
            ks.dedup();
            ks.len() as f64
        };
        println!(
            "{:>14} | {:>10} | {:>13.3}%",
            "hyperloglog",
            1usize << p,
            (hll.estimate() - distinct).abs() / distinct * 100.0
        );
    }
    println!("\nshape check: error decreases with space within each family; equi-depth dominates equi-width under skew.\n");
}

/// E13 — cube exploration: (a) discovery-driven navigation finds the
/// injected anomaly immediately; (b) DICE speculation turns lattice
/// moves into cache hits. Expected shape from \[54, 35\].
pub fn e13() {
    let t = sales_table(&SalesConfig {
        rows: 200_000,
        regions: 10,
        products: 12,
        ..SalesConfig::default()
    });
    let (view, t_disc) =
        timed(|| DiscoveryView::build(&t, "region", "product", "price").expect("view"));
    println!("E13: 200k-row cube, dims region×product×channel\n");
    println!(
        "discovery-driven scoring in {}; top exceptions:",
        us(t_disc)
    );
    for c in view.exceptions(0.0).iter().take(3) {
        println!("   ({}, {}): surprise {:+.1}", c.dim_a, c.dim_b, c.surprise);
    }
    let path: Vec<Vec<&str>> = vec![
        vec![],
        vec!["region"],
        vec!["region", "product"],
        vec!["product"],
        vec!["channel", "product"],
        vec!["product"],
    ];
    for speculate in [false, true] {
        let cube = DataCube::new(
            t.clone(),
            &["region", "product", "channel"],
            "price",
            AggFunc::Sum,
        )
        .expect("cube");
        let mut session = CubeSession::new(cube, speculate);
        let (_, t_total) = timed(|| {
            for step in &path {
                session.navigate(step).expect("navigate");
            }
        });
        let s = session.stats();
        println!(
            "session (speculate={speculate}): {} hits / {} misses, {} speculative cuboids, total {}",
            s.hits, s.misses, s.speculative_work, us(t_total)
        );
    }
    println!("\nshape check: speculation converts every lattice-neighbor move into a hit (at background cost).\n");
}

/// E18 — speculative execution of neighbor queries: hit rate and
/// foreground latency of an exploration session (pan/zoom sequences of
/// range aggregates) with and without background speculation. Expected
/// shape: neighbor moves become cache hits; total computed work rises
/// (speculation is not free), but it happens off the critical path.
pub fn e18() {
    use explore_core::prefetch::{RangeRequest, SpeculativeExecutor};
    let t = sales_table(&SalesConfig {
        rows: 500_000,
        ..SalesConfig::default()
    });
    // A plausible session over qty ∈ [1, 9]: pan right, zoom out, pan.
    let session: Vec<(i64, i64)> = vec![
        (1, 3),
        (3, 5), // pan right
        (5, 7), // pan right
        (4, 8), // zoom out
        (2, 4), // jump
        (4, 6), // pan right
        (4, 6), // revisit
        (5, 7), // revisit of step 3
    ];
    println!(
        "E18: 500k rows, 8-step pan/zoom session of SUM(price) range queries
"
    );
    println!(
        "{:>12} | {:>10} | {:>14} | {:>14} | {:>12}",
        "speculation", "hit rate", "foreground", "background", "cached"
    );
    for budget in [0usize, 2, 4] {
        let ex = SpeculativeExecutor::new(t.clone(), budget);
        let mut foreground = 0.0;
        for &(lo, hi) in &session {
            let req = RangeRequest {
                column: "qty".into(),
                low: lo,
                high: hi,
                func: AggFunc::Sum,
                measure: "price".into(),
            };
            let (_, dt) = timed(|| ex.execute(&req).expect("execute"));
            foreground += dt;
        }
        let s = ex.stats();
        println!(
            "{:>12} | {:>9.0}% | {:>14} | {:>14} | {:>12}",
            format!("budget {budget}"),
            s.hit_rate() * 100.0,
            us(foreground),
            format!("{} runs", s.speculative_runs),
            ex.cached()
        );
    }
    println!("
shape check: higher budgets turn pans/zooms into hits; foreground time includes the speculation executed synchronously here — a real deployment runs it during think time.
");
}

#[cfg(test)]
mod tests {
    #[test]
    fn e10_runs() {
        super::e10();
    }

    #[test]
    fn e13_runs() {
        super::e13();
    }
}
