//! A small declarative query layer: filter → group/aggregate → order → limit.
//!
//! This is the engine every higher layer drives: the AQP middleware runs the
//! same [`Query`] against samples, SeeDB runs batches of them with shared
//! scans, and the exploration front-ends translate user interactions into
//! them. It intentionally covers single-table select/aggregate queries —
//! the query shape of every experiment in the surveyed papers.

use std::collections::HashMap;

use crate::agg::{Accumulator, AggFunc};
use crate::column::Column;
use crate::error::{Result, StorageError};
use crate::predicate::Predicate;
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, Value};

/// Rows per morsel: the unit of work the parallel executor hands to its
/// workers, and the partial-aggregation granularity both execution
/// policies share. Serial and parallel execution split a table at the
/// same multiples of `MORSEL_ROWS`, which is what makes their outputs
/// bit-identical (see `explore-exec`).
pub const MORSEL_ROWS: usize = 1 << 16;

/// One aggregate expression: `func(column)`. For `Count` the column may
/// be any column of the table (count ignores its values).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aggregate {
    pub func: AggFunc,
    pub column: String,
}

impl Aggregate {
    /// Build an aggregate expression.
    pub fn new(func: AggFunc, column: impl Into<String>) -> Self {
        Aggregate {
            func,
            column: column.into(),
        }
    }

    /// Result column name, e.g. `avg(price)`.
    pub fn result_name(&self) -> String {
        format!("{}({})", self.func, self.column)
    }
}

/// Sort direction for `ORDER BY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    Asc,
    Desc,
}

/// A declarative single-table query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Filter; `Predicate::True` selects everything.
    pub predicate: Predicate,
    /// Columns to return when no aggregates are present; empty = all.
    pub projection: Vec<String>,
    /// Group-by columns (requires at least one aggregate).
    pub group_by: Vec<String>,
    /// Aggregates to compute.
    pub aggregates: Vec<Aggregate>,
    /// Optional ordering on a result column.
    pub order_by: Option<(String, SortOrder)>,
    /// Optional row limit, applied after ordering.
    pub limit: Option<usize>,
}

impl Default for Query {
    fn default() -> Self {
        Query::new()
    }
}

impl Query {
    /// A query that returns the whole table.
    pub fn new() -> Self {
        Query {
            predicate: Predicate::True,
            projection: Vec::new(),
            group_by: Vec::new(),
            aggregates: Vec::new(),
            order_by: None,
            limit: None,
        }
    }

    /// Set the filter predicate.
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Set the projection list.
    pub fn select(mut self, columns: &[&str]) -> Self {
        self.projection = columns.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Add a group-by column.
    pub fn group(mut self, column: &str) -> Self {
        self.group_by.push(column.to_owned());
        self
    }

    /// Add an aggregate.
    pub fn agg(mut self, func: AggFunc, column: &str) -> Self {
        self.aggregates.push(Aggregate::new(func, column));
        self
    }

    /// Order the result by a column.
    pub fn order(mut self, column: &str, order: SortOrder) -> Self {
        self.order_by = Some((column.to_owned(), order));
        self
    }

    /// Limit the result size.
    pub fn take(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// A compact SQL-ish description of the query, for `explain`
    /// profiles and trace headers. Not parseable, not canonical — the
    /// cache fingerprint is the identity; this is for humans.
    pub fn describe(&self) -> String {
        let mut s = String::from("select ");
        let mut outputs: Vec<String> = self.group_by.clone();
        outputs.extend(self.aggregates.iter().map(Aggregate::result_name));
        if outputs.is_empty() {
            outputs.extend(self.projection.iter().cloned());
        }
        if outputs.is_empty() {
            s.push('*');
        } else {
            s.push_str(&outputs.join(", "));
        }
        if !matches!(self.predicate, Predicate::True) {
            s.push_str(&format!(" where {}", self.predicate));
        }
        if !self.group_by.is_empty() {
            s.push_str(&format!(" group by {}", self.group_by.join(", ")));
        }
        if let Some((col, order)) = &self.order_by {
            let dir = match order {
                SortOrder::Asc => "asc",
                SortOrder::Desc => "desc",
            };
            s.push_str(&format!(" order by {col} {dir}"));
        }
        if let Some(limit) = self.limit {
            s.push_str(&format!(" limit {limit}"));
        }
        s
    }

    /// All base-table columns this query touches (predicate + projection +
    /// grouping + aggregates). Drives adaptive loading and layout choice.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.predicate.columns();
        for name in self
            .projection
            .iter()
            .chain(self.group_by.iter())
            .map(String::as_str)
            .chain(self.aggregates.iter().map(|a| a.column.as_str()))
        {
            if !out.contains(&name) {
                out.push(name);
            }
        }
        out
    }

    /// Execute against a table.
    pub fn run(&self, table: &Table) -> Result<Table> {
        let sel = self.predicate.evaluate(table)?;
        self.run_on_selection(table, &sel)
    }

    /// Execute the post-filter part of the query on a precomputed
    /// selection vector. The adaptive-indexing layer uses this to combine
    /// cracker-produced selections with the shared aggregation machinery.
    pub fn run_on_selection(&self, table: &Table, sel: &[u32]) -> Result<Table> {
        let result = if self.aggregates.is_empty() {
            if self.projection.is_empty() {
                table.gather(sel)
            } else {
                let names: Vec<&str> = self.projection.iter().map(String::as_str).collect();
                table.project(&names)?.gather(sel)
            }
        } else {
            aggregate(table, sel, &self.group_by, &self.aggregates)?
        };
        self.apply_order_limit(result)
    }

    /// Apply the query's ORDER BY and LIMIT clauses to an already
    /// filtered/aggregated result. Shared by the serial path above and
    /// the morsel-driven executor, which sorts only after merging.
    pub fn apply_order_limit(&self, mut result: Table) -> Result<Table> {
        if let Some((col, order)) = &self.order_by {
            result = sort_table(&result, col, *order)?;
        }
        if let Some(limit) = self.limit {
            if result.num_rows() > limit {
                let sel: Vec<u32> = (0..limit as u32).collect();
                result = result.gather(&sel);
            }
        }
        Ok(result)
    }
}

/// A hashable group key: strings are stored as-is, ints directly, floats
/// by their bit pattern (exact-match grouping, like SQL).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyPart {
    Int(i64),
    Bits(u64),
    Str(String),
}

impl KeyPart {
    fn to_value(&self) -> Value {
        match self {
            KeyPart::Int(v) => Value::Int(*v),
            KeyPart::Bits(b) => Value::Float(f64::from_bits(*b)),
            KeyPart::Str(s) => Value::Str(s.clone()),
        }
    }
}

fn key_part(col: &Column, row: usize) -> KeyPart {
    match col {
        Column::Int64(v) => KeyPart::Int(v[row]),
        Column::Float64(v) => KeyPart::Bits(v[row].to_bits()),
        Column::Utf8(v) => KeyPart::Str(v[row].clone()),
    }
}

/// SplitMix64 finalizer: a fast, well-mixed 64-bit hash step.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over the bytes of a string cell.
#[inline]
fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
    }
    h
}

#[inline]
fn hash_combine(h: u64, cell: u64) -> u64 {
    mix64(h ^ cell.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Hash the group key of `row` directly from the columns — no `KeyPart`
/// allocation. Must agree with [`hash_key`] on the interned form.
#[inline]
fn hash_row(cols: &[&Column], row: usize) -> u64 {
    let mut h = 0u64;
    for col in cols {
        let cell = match col {
            Column::Int64(v) => v[row] as u64,
            Column::Float64(v) => v[row].to_bits(),
            Column::Utf8(v) => hash_str(&v[row]),
        };
        h = hash_combine(h, cell);
    }
    h
}

/// Hash an interned key; agrees with [`hash_row`] by construction.
#[inline]
fn hash_key(key: &[KeyPart]) -> u64 {
    let mut h = 0u64;
    for part in key {
        let cell = match part {
            KeyPart::Int(v) => *v as u64,
            KeyPart::Bits(b) => *b,
            KeyPart::Str(s) => hash_str(s),
        };
        h = hash_combine(h, cell);
    }
    h
}

/// Cell-by-cell equality between an interned key and a table row,
/// without materializing the row's key.
#[inline]
fn key_matches_row(key: &[KeyPart], cols: &[&Column], row: usize) -> bool {
    key.iter().zip(cols).all(|(part, col)| match (part, col) {
        (KeyPart::Int(k), Column::Int64(v)) => *k == v[row],
        (KeyPart::Bits(k), Column::Float64(v)) => *k == v[row].to_bits(),
        (KeyPart::Str(k), Column::Utf8(v)) => *k == v[row],
        _ => false,
    })
}

/// A group-key interner: maps group keys to dense slot ids, assigned in
/// first-appearance order (which is what fixes group output order).
/// Rows are hashed straight off the column storage, so the per-row hot
/// path allocates a `Vec<KeyPart>` only the first time a group appears.
/// The full-hash bucket map makes slot assignment independent of the
/// `HashMap`'s seed: bucket contents are ordered by insertion, and
/// collisions fall back to exact key comparison.
#[derive(Debug, Default)]
struct GroupIndex {
    buckets: HashMap<u64, Vec<u32>>,
    keys: Vec<Vec<KeyPart>>,
}

impl GroupIndex {
    /// Slot of the group key at `row`, interning it on first sight.
    /// Returns `(slot, is_new)`.
    #[inline]
    fn slot_of_row(&mut self, cols: &[&Column], row: usize) -> (usize, bool) {
        let h = hash_row(cols, row);
        let bucket = self.buckets.entry(h).or_default();
        for &slot in bucket.iter() {
            if key_matches_row(&self.keys[slot as usize], cols, row) {
                return (slot as usize, false);
            }
        }
        let slot = self.keys.len();
        self.keys
            .push(cols.iter().map(|c| key_part(c, row)).collect());
        bucket.push(slot as u32);
        (slot, true)
    }

    /// Slot of an already-materialized key (the merge path).
    fn slot_of_key(&mut self, key: &[KeyPart]) -> (usize, bool) {
        let h = hash_key(key);
        let bucket = self.buckets.entry(h).or_default();
        for &slot in bucket.iter() {
            if self.keys[slot as usize].as_slice() == key {
                return (slot as usize, false);
            }
        }
        let slot = self.keys.len();
        self.keys.push(key.to_vec());
        bucket.push(slot as u32);
        (slot, true)
    }
}

/// Pre-resolved aggregate input: what value feeds the accumulator for a
/// given row. Hoists the per-row column-type dispatch of the old
/// `numeric_at` path out of the loop.
#[derive(Debug, Clone, Copy)]
enum AggSrc<'a> {
    /// COUNT ignores the column and always contributes 1.
    Count,
    Int(&'a [i64]),
    Float(&'a [f64]),
    /// Non-numeric input (only reachable for COUNT-validated shapes);
    /// preserves the historical `unwrap_or(0.0)` value.
    Zero,
}

impl<'a> AggSrc<'a> {
    fn of(func: AggFunc, col: &'a Column) -> AggSrc<'a> {
        if func == AggFunc::Count {
            return AggSrc::Count;
        }
        match col {
            Column::Int64(v) => AggSrc::Int(v),
            Column::Float64(v) => AggSrc::Float(v),
            Column::Utf8(_) => AggSrc::Zero,
        }
    }

    #[inline]
    fn at(self, row: usize) -> f64 {
        match self {
            AggSrc::Count => 1.0,
            AggSrc::Int(v) => v[row] as f64,
            AggSrc::Float(v) => v[row],
            AggSrc::Zero => 0.0,
        }
    }
}

/// Resolve and validate the columns a grouped aggregation touches.
fn validated_agg_cols<'a>(
    table: &'a Table,
    group_by: &[String],
    aggs: &[Aggregate],
) -> Result<(Vec<&'a Column>, Vec<&'a Column>)> {
    let group_cols: Vec<&Column> = group_by
        .iter()
        .map(|n| table.column(n))
        .collect::<Result<_>>()?;
    let agg_cols: Vec<&Column> = aggs
        .iter()
        .map(|a| {
            let c = table.column(&a.column)?;
            if a.func != AggFunc::Count && !c.data_type().is_numeric() {
                return Err(StorageError::TypeMismatch {
                    column: a.column.clone(),
                    expected: "numeric",
                    found: c.data_type().name(),
                });
            }
            Ok(c)
        })
        .collect::<Result<_>>()?;
    Ok((group_cols, agg_cols))
}

/// Mergeable partial state of a grouped aggregation — the unit the
/// morsel-driven executor computes per morsel and merges in morsel
/// order. The serial path is the degenerate case: one state fed the
/// whole selection vector.
///
/// Group output order is first-appearance order over the update/merge
/// sequence, so merging per-morsel states in morsel order reproduces
/// the serial row-order exactly.
#[derive(Debug)]
pub struct GroupedAggState<'a> {
    table: &'a Table,
    group_by: &'a [String],
    aggs: &'a [Aggregate],
    group_cols: Vec<&'a Column>,
    agg_srcs: Vec<AggSrc<'a>>,
    index: GroupIndex,
    accs: Vec<Accumulator>,
}

impl<'a> GroupedAggState<'a> {
    /// Validate the referenced columns and build an empty state.
    pub fn new(table: &'a Table, group_by: &'a [String], aggs: &'a [Aggregate]) -> Result<Self> {
        let (group_cols, agg_cols) = validated_agg_cols(table, group_by, aggs)?;
        let agg_srcs = aggs
            .iter()
            .zip(&agg_cols)
            .map(|(a, c)| AggSrc::of(a.func, c))
            .collect();
        Ok(GroupedAggState {
            table,
            group_by,
            aggs,
            group_cols,
            agg_srcs,
            index: GroupIndex::default(),
            accs: Vec::new(),
        })
    }

    /// Fold the rows of a selection vector in.
    pub fn update(&mut self, sel: &[u32]) {
        let n_aggs = self.aggs.len();
        for &row in sel {
            let row = row as usize;
            let (slot, is_new) = self.index.slot_of_row(&self.group_cols, row);
            if is_new {
                self.accs
                    .resize(self.accs.len() + n_aggs, Accumulator::new());
            }
            for (i, src) in self.agg_srcs.iter().enumerate() {
                self.accs[slot * n_aggs + i].update(src.at(row));
            }
        }
    }

    /// Merge another partial (over the same table and query) into this
    /// one. Groups first seen in `other` are appended in `other`'s order.
    pub fn merge(&mut self, other: GroupedAggState<'a>) {
        let n_aggs = self.aggs.len();
        for (other_slot, key) in other.index.keys.iter().enumerate() {
            let (slot, is_new) = self.index.slot_of_key(key);
            if is_new {
                self.accs
                    .resize(self.accs.len() + n_aggs, Accumulator::new());
            }
            for i in 0..n_aggs {
                let partial = other.accs[other_slot * n_aggs + i];
                self.accs[slot * n_aggs + i].merge(&partial);
            }
        }
    }

    /// Merge one morsel's partial batch, resolving the batch's
    /// worker-local slot ids through the worker state that produced it.
    /// Groups first seen in this batch append in the batch's first-touch
    /// order and every accumulator merges exactly once, so absorbing
    /// batches in morsel order performs the exact `Accumulator::merge`
    /// sequence of the historical per-morsel merge chain — bit-identical
    /// results under every steal schedule.
    pub fn absorb_batch(&mut self, worker: &WorkerAggState<'a>, batch: &MorselAggBatch) {
        let n_aggs = self.aggs.len();
        for (local, &wslot) in batch.slots.iter().enumerate() {
            let key = &worker.index.keys[wslot as usize];
            let (slot, is_new) = self.index.slot_of_key(key);
            if is_new {
                self.accs
                    .resize(self.accs.len() + n_aggs, Accumulator::new());
            }
            for i in 0..n_aggs {
                self.accs[slot * n_aggs + i].merge(&batch.accs[local * n_aggs + i]);
            }
        }
    }

    /// Assemble the result table: group columns then aggregate columns.
    /// Global aggregation with no groups always yields exactly one row.
    pub fn finish(mut self) -> Result<Table> {
        let n_aggs = self.aggs.len();
        if self.group_by.is_empty() && self.index.keys.is_empty() {
            self.index.keys.push(Vec::new());
            self.accs.resize(n_aggs, Accumulator::new());
        }

        let mut fields = Vec::new();
        for name in self.group_by {
            fields.push(Field::new(
                name.clone(),
                self.table.schema().data_type(name)?,
            ));
        }
        for a in self.aggs {
            fields.push(Field::new(a.result_name(), DataType::Float64));
        }
        let schema = Schema::new(fields)?;

        let mut columns: Vec<Column> = self
            .group_by
            .iter()
            .map(|n| Column::empty(self.table.schema().data_type(n).expect("validated")))
            .collect();
        for key in &self.index.keys {
            for (col, part) in columns.iter_mut().zip(key) {
                col.push(part.to_value())?;
            }
        }
        for (i, a) in self.aggs.iter().enumerate() {
            let vals: Vec<f64> = (0..self.index.keys.len())
                .map(|slot| self.accs[slot * n_aggs + i].finish(a.func))
                .collect();
            columns.push(Column::Float64(vals));
        }
        Table::new(schema, columns)
    }
}

/// Per-worker aggregation state for the morsel-driven executor: a
/// group-key interner that lives for all the morsels a worker runs,
/// plus epoch-stamped scratch for building per-morsel partial batches
/// without clearing anything between morsels.
///
/// Splitting "which groups exist" (worker-lifetime, amortized across
/// stolen morsels) from "this morsel's partial accumulators" (returned
/// per morsel as a [`MorselAggBatch`]) is what lets workers keep state
/// without giving up determinism: a batch depends only on the morsel's
/// rows — never on which worker computed it or what it saw before — so
/// batches absorbed in morsel order produce bit-identical results under
/// every steal schedule.
#[derive(Debug)]
pub struct WorkerAggState<'a> {
    group_cols: Vec<&'a Column>,
    agg_srcs: Vec<AggSrc<'a>>,
    index: GroupIndex,
    /// Per worker-slot epoch stamp: equals `epoch` iff the slot already
    /// has a batch-local accumulator row in the current morsel.
    slot_stamp: Vec<u32>,
    /// Batch-local row of the slot, valid when the stamp matches.
    slot_local: Vec<u32>,
    epoch: u32,
}

/// One morsel's partial aggregation: worker-slot ids in first-touch
/// order plus one accumulator row (`aggs.len()` accumulators) per
/// touched group. Resolved back to group keys by
/// [`GroupedAggState::absorb_batch`] via the worker state's interner.
#[derive(Debug)]
pub struct MorselAggBatch {
    slots: Vec<u32>,
    accs: Vec<Accumulator>,
}

impl<'a> WorkerAggState<'a> {
    /// Validate the referenced columns and build an empty worker state.
    /// Validation matches [`GroupedAggState::new`] exactly.
    pub fn new(table: &'a Table, group_by: &'a [String], aggs: &'a [Aggregate]) -> Result<Self> {
        let (group_cols, agg_cols) = validated_agg_cols(table, group_by, aggs)?;
        let agg_srcs = aggs
            .iter()
            .zip(&agg_cols)
            .map(|(a, c)| AggSrc::of(a.func, c))
            .collect();
        Ok(WorkerAggState {
            group_cols,
            agg_srcs,
            index: GroupIndex::default(),
            slot_stamp: Vec::new(),
            slot_local: Vec::new(),
            epoch: 0,
        })
    }

    /// Aggregate one morsel's selection into a fresh partial batch.
    /// Group interning persists across calls; accumulators do not.
    pub fn update_morsel(&mut self, sel: &[u32]) -> MorselAggBatch {
        self.epoch += 1;
        let n_aggs = self.agg_srcs.len();
        let mut slots: Vec<u32> = Vec::new();
        let mut accs: Vec<Accumulator> = Vec::new();
        for &row in sel {
            let row = row as usize;
            let (wslot, is_new) = self.index.slot_of_row(&self.group_cols, row);
            if is_new {
                self.slot_stamp.push(0);
                self.slot_local.push(0);
            }
            let local = if self.slot_stamp[wslot] == self.epoch {
                self.slot_local[wslot] as usize
            } else {
                let local = slots.len();
                self.slot_stamp[wslot] = self.epoch;
                self.slot_local[wslot] = local as u32;
                slots.push(wslot as u32);
                accs.resize(accs.len() + n_aggs, Accumulator::new());
                local
            };
            for (i, src) in self.agg_srcs.iter().enumerate() {
                accs[local * n_aggs + i].update(src.at(row));
            }
        }
        MorselAggBatch { slots, accs }
    }
}

/// Grouped aggregation over a selection vector.
fn aggregate(table: &Table, sel: &[u32], group_by: &[String], aggs: &[Aggregate]) -> Result<Table> {
    let mut state = GroupedAggState::new(table, group_by, aggs)?;
    state.update(sel);
    state.finish()
}

/// Stable sort of a table by one column.
pub fn sort_table(table: &Table, column: &str, order: SortOrder) -> Result<Table> {
    let col = table.column(column)?;
    let mut sel: Vec<u32> = (0..table.num_rows() as u32).collect();
    match col {
        Column::Int64(v) => sel.sort_by_key(|&i| v[i as usize]),
        Column::Float64(v) => {
            sel.sort_by(|&a, &b| v[a as usize].total_cmp(&v[b as usize]));
        }
        Column::Utf8(v) => sel.sort_by(|&a, &b| v[a as usize].cmp(&v[b as usize])),
    }
    if order == SortOrder::Desc {
        sel.reverse();
    }
    Ok(table.gather(&sel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;

    fn sales() -> Table {
        Table::new(
            Schema::of(&[
                ("region", DataType::Utf8),
                ("product", DataType::Utf8),
                ("amount", DataType::Float64),
                ("qty", DataType::Int64),
            ]),
            vec![
                Column::from(vec!["east", "west", "east", "west", "east"]),
                Column::from(vec!["a", "a", "b", "b", "a"]),
                Column::from(vec![10.0, 20.0, 30.0, 40.0, 50.0]),
                Column::from(vec![1i64, 2, 3, 4, 5]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn plain_filter_and_projection() {
        let t = sales();
        let r = Query::new()
            .filter(Predicate::eq("region", "east"))
            .select(&["product", "amount"])
            .run(&t)
            .unwrap();
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.schema().names(), vec!["product", "amount"]);
    }

    #[test]
    fn global_aggregate_without_groups() {
        let t = sales();
        let r = Query::new()
            .agg(AggFunc::Sum, "amount")
            .agg(AggFunc::Count, "amount")
            .run(&t)
            .unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.column("sum(amount)").unwrap().as_f64().unwrap()[0], 150.0);
        assert_eq!(r.column("count(amount)").unwrap().as_f64().unwrap()[0], 5.0);
    }

    #[test]
    fn global_aggregate_on_empty_selection_yields_one_row() {
        let t = sales();
        let r = Query::new()
            .filter(Predicate::eq("region", "north"))
            .agg(AggFunc::Count, "qty")
            .run(&t)
            .unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.column("count(qty)").unwrap().as_f64().unwrap()[0], 0.0);
    }

    #[test]
    fn group_by_single_column() {
        let t = sales();
        let r = Query::new()
            .group("region")
            .agg(AggFunc::Sum, "amount")
            .order("region", SortOrder::Asc)
            .run(&t)
            .unwrap();
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.column("region").unwrap().as_utf8().unwrap()[0], "east");
        assert_eq!(
            r.column("sum(amount)").unwrap().as_f64().unwrap(),
            &[90.0, 60.0]
        );
    }

    #[test]
    fn group_by_multiple_columns() {
        let t = sales();
        let r = Query::new()
            .group("region")
            .group("product")
            .agg(AggFunc::Count, "qty")
            .run(&t)
            .unwrap();
        assert_eq!(r.num_rows(), 4);
    }

    #[test]
    fn filter_then_group() {
        let t = sales();
        let r = Query::new()
            .filter(Predicate::cmp("qty", CmpOp::Ge, 4i64))
            .group("region")
            .agg(AggFunc::Avg, "amount")
            .order("avg(amount)", SortOrder::Desc)
            .run(&t)
            .unwrap();
        // qty>=4: (west,b,40), (east,a,50)
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.column("region").unwrap().as_utf8().unwrap()[0], "east");
        assert_eq!(
            r.column("avg(amount)").unwrap().as_f64().unwrap(),
            &[50.0, 40.0]
        );
    }

    #[test]
    fn order_and_limit() {
        let t = sales();
        let r = Query::new()
            .order("amount", SortOrder::Desc)
            .take(2)
            .run(&t)
            .unwrap();
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.column("amount").unwrap().as_f64().unwrap(), &[50.0, 40.0]);
    }

    #[test]
    fn sort_by_string_and_int() {
        let t = sales();
        let r = sort_table(&t, "product", SortOrder::Asc).unwrap();
        assert_eq!(r.column("product").unwrap().as_utf8().unwrap()[0], "a");
        let r = sort_table(&t, "qty", SortOrder::Desc).unwrap();
        assert_eq!(r.column("qty").unwrap().as_i64().unwrap()[0], 5);
    }

    #[test]
    fn referenced_columns_deduplicate() {
        let q = Query::new()
            .filter(Predicate::range("amount", 0.0, 1.0))
            .group("region")
            .agg(AggFunc::Sum, "amount")
            .select(&["region"]);
        let cols = q.referenced_columns();
        assert_eq!(cols, vec!["amount", "region"]);
    }

    #[test]
    fn aggregate_on_string_column_fails_unless_count() {
        let t = sales();
        assert!(Query::new().agg(AggFunc::Sum, "region").run(&t).is_err());
        let r = Query::new().agg(AggFunc::Count, "region").run(&t).unwrap();
        assert_eq!(r.column("count(region)").unwrap().as_f64().unwrap()[0], 5.0);
    }

    #[test]
    fn float_group_keys_group_exact_values() {
        let t = Table::new(
            Schema::of(&[("k", DataType::Float64), ("v", DataType::Int64)]),
            vec![
                Column::from(vec![1.5f64, 1.5, 2.5]),
                Column::from(vec![1i64, 2, 3]),
            ],
        )
        .unwrap();
        let r = Query::new()
            .group("k")
            .agg(AggFunc::Sum, "v")
            .order("k", SortOrder::Asc)
            .run(&t)
            .unwrap();
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.column("sum(v)").unwrap().as_f64().unwrap(), &[3.0, 3.0]);
    }

    /// Worker batches absorbed in morsel order must be bit-identical to
    /// the single-state reference — regardless of which worker state
    /// computed which morsel (here: one worker for all, and a deliberately
    /// skewed two-worker split).
    #[test]
    fn worker_batches_absorb_to_reference_state() {
        let t = sales();
        let group_by = vec!["region".to_string()];
        let aggs = vec![
            Aggregate::new(AggFunc::Sum, "amount"),
            Aggregate::new(AggFunc::Avg, "qty"),
            Aggregate::new(AggFunc::Count, "product"),
        ];
        let morsels: Vec<Vec<u32>> = vec![vec![0, 1], vec![2, 3], vec![4], vec![]];

        let mut reference = GroupedAggState::new(&t, &group_by, &aggs).unwrap();
        for sel in &morsels {
            reference.update(sel);
        }
        let expected = reference.finish().unwrap();

        for assignment in [vec![0, 0, 0, 0], vec![0, 1, 1, 0], vec![1, 0, 1, 0]] {
            let mut workers = [
                WorkerAggState::new(&t, &group_by, &aggs).unwrap(),
                WorkerAggState::new(&t, &group_by, &aggs).unwrap(),
            ];
            let batches: Vec<(usize, MorselAggBatch)> = morsels
                .iter()
                .zip(&assignment)
                .map(|(sel, &w)| (w, workers[w].update_morsel(sel)))
                .collect();
            let mut acc = GroupedAggState::new(&t, &group_by, &aggs).unwrap();
            for (w, batch) in &batches {
                acc.absorb_batch(&workers[*w], batch);
            }
            let got = acc.finish().unwrap();
            assert_eq!(got.num_rows(), expected.num_rows());
            for field in expected.schema().fields() {
                let a = expected.column(field.name()).unwrap();
                let b = got.column(field.name()).unwrap();
                for row in 0..expected.num_rows() {
                    let (x, y) = (a.value(row).unwrap(), b.value(row).unwrap());
                    match (x, y) {
                        (Value::Float(x), Value::Float(y)) => {
                            assert_eq!(x.to_bits(), y.to_bits());
                        }
                        (x, y) => assert_eq!(x, y),
                    }
                }
            }
        }
    }
}
