//! Structured spans and finished query traces.
//!
//! A [`Span`] is a `Copy` record — fixed-size, no heap — so the hot
//! path can write it into a preallocated lock-free buffer without
//! allocating, and the buffer can hand uninitialized slots around as
//! `MaybeUninit<Span>` safely. Everything variable-length (the query
//! text, the table name) lives once on the [`QueryTrace`], not on each
//! span.

/// Index of a span within its trace. [`ROOT_SPAN`] is the implicit
/// whole-query root every trace has.
pub type SpanId = u32;

/// The id of the implicit root span (the query itself).
pub const ROOT_SPAN: SpanId = 0;

/// How a cache lookup resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Exact fingerprint hit — the stored result is returned as-is.
    Hit,
    /// Served by re-filtering a cached superset.
    Subsumption,
    /// Fell through to base-table execution.
    Miss,
}

/// What a span measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpanKind {
    /// The whole query (always the root, id [`ROOT_SPAN`]).
    Query,
    /// A result-cache lookup and how it resolved.
    CacheLookup(CacheOutcome),
    /// One morsel fan-out through the exec pool. `stage` names what ran
    /// per morsel ("scan", "aggregate", "filter", …); `participants` is
    /// how many threads actually worked the job (1 = inline/serial).
    Exec {
        stage: &'static str,
        participants: u32,
        morsels: u32,
    },
    /// One morsel's work inside an [`SpanKind::Exec`] fan-out.
    Morsel { index: u32 },
    /// One pool participant's whole contribution to an
    /// [`SpanKind::Exec`] fan-out: from its first morsel to its last,
    /// with how many morsels it ran. Makes steal imbalance visible.
    Worker { index: u32, morsels: u32 },
    /// Merging per-morsel partials in morsel order.
    Merge,
    /// An adaptive-index step; equal piece counts mean the query
    /// answered from existing boundaries without reorganizing.
    Crack {
        pieces_before: u32,
        pieces_after: u32,
    },
    /// Admission of a computed result into the cache.
    Admit { accepted: bool },
    /// Serving a query through the NoDB adaptive loader.
    RawLoad,
    /// A bounded approximate aggregate: which fraction (in percent ×
    /// 100, i.e. basis points) answered it and whether it fell back to
    /// exact execution.
    Aqp {
        fraction_bp: u32,
        rows_scanned: u32,
        exact: bool,
    },
    /// A labelled catch-all for middleware stages.
    Stage(&'static str),
    /// A fault-injection degradation path engaged at the named site
    /// (e.g. "exec.serial_fallback"); zero-duration marker span.
    Fault { site: &'static str },
}

impl SpanKind {
    /// Short label for rendering and metrics names.
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::CacheLookup(CacheOutcome::Hit) => "cache.hit",
            SpanKind::CacheLookup(CacheOutcome::Subsumption) => "cache.subsumption",
            SpanKind::CacheLookup(CacheOutcome::Miss) => "cache.miss",
            SpanKind::Exec { .. } => "exec",
            SpanKind::Morsel { .. } => "morsel",
            SpanKind::Worker { .. } => "worker",
            SpanKind::Merge => "merge",
            SpanKind::Crack { .. } => "crack",
            SpanKind::Admit { .. } => "admit",
            SpanKind::RawLoad => "raw_load",
            SpanKind::Aqp { .. } => "aqp",
            SpanKind::Stage(s) => s,
            SpanKind::Fault { .. } => "fault",
        }
    }
}

/// One timed region of a query, offsets relative to the trace start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Identity within the trace.
    pub id: SpanId,
    /// Enclosing span ([`ROOT_SPAN`] for top-level stages).
    pub parent: SpanId,
    pub kind: SpanKind,
    /// Nanoseconds from trace start.
    pub start_ns: u64,
    /// Wall time the span covered.
    pub dur_ns: u64,
}

impl Span {
    /// End offset (`start_ns + dur_ns`).
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// A finished, immutable trace of one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// Monotone per-tracer sequence number.
    pub seq: u64,
    /// Table the query ran against.
    pub table: String,
    /// Human-readable query description.
    pub query: String,
    /// Whole-query wall time.
    pub total_ns: u64,
    /// All spans, sorted by `(start_ns, id)`, root first. The root span
    /// (id [`ROOT_SPAN`], kind [`SpanKind::Query`]) is always present.
    pub spans: Vec<Span>,
    /// Spans not recorded because the per-trace budget was exhausted.
    pub dropped_spans: u32,
}

impl QueryTrace {
    /// The span with the given id, if recorded.
    pub fn span(&self, id: SpanId) -> Option<&Span> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Direct children of `parent`, in start order.
    pub fn children(&self, parent: SpanId) -> Vec<&Span> {
        self.spans
            .iter()
            .filter(|s| s.parent == parent && s.id != parent)
            .collect()
    }

    /// All spans of a given coarse label (e.g. "morsel", "exec").
    pub fn spans_labelled(&self, label: &str) -> Vec<&Span> {
        self.spans
            .iter()
            .filter(|s| s.kind.label() == label)
            .collect()
    }

    /// Structural sanity: exactly one root, every parent resolves to a
    /// recorded span with a smaller id, and every child's window nests
    /// inside its parent's. Dropped spans can orphan nothing — parents
    /// are allocated before their children record.
    pub fn is_well_formed(&self) -> bool {
        let roots = self
            .spans
            .iter()
            .filter(|s| s.id == ROOT_SPAN)
            .collect::<Vec<_>>();
        if roots.len() != 1 || !matches!(roots[0].kind, SpanKind::Query) {
            return false;
        }
        self.spans.iter().all(|s| {
            if s.id == ROOT_SPAN {
                return s.parent == ROOT_SPAN;
            }
            match self.span(s.parent) {
                None => false,
                Some(p) => p.id < s.id && p.start_ns <= s.start_ns && s.end_ns() <= p.end_ns(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(spans: Vec<Span>) -> QueryTrace {
        QueryTrace {
            seq: 1,
            table: "t".into(),
            query: "q".into(),
            total_ns: 100,
            spans,
            dropped_spans: 0,
        }
    }

    fn root() -> Span {
        Span {
            id: ROOT_SPAN,
            parent: ROOT_SPAN,
            kind: SpanKind::Query,
            start_ns: 0,
            dur_ns: 100,
        }
    }

    #[test]
    fn well_formedness_checks_nesting() {
        let ok = trace(vec![
            root(),
            Span {
                id: 1,
                parent: ROOT_SPAN,
                kind: SpanKind::Merge,
                start_ns: 10,
                dur_ns: 20,
            },
        ]);
        assert!(ok.is_well_formed());
        assert_eq!(ok.children(ROOT_SPAN).len(), 1);

        let escapes_parent = trace(vec![
            root(),
            Span {
                id: 1,
                parent: ROOT_SPAN,
                kind: SpanKind::Merge,
                start_ns: 90,
                dur_ns: 20,
            },
        ]);
        assert!(!escapes_parent.is_well_formed());

        let orphan = trace(vec![
            root(),
            Span {
                id: 2,
                parent: 1,
                kind: SpanKind::Merge,
                start_ns: 5,
                dur_ns: 1,
            },
        ]);
        assert!(!orphan.is_well_formed());

        let no_root = trace(vec![Span {
            id: 1,
            parent: ROOT_SPAN,
            kind: SpanKind::Merge,
            start_ns: 0,
            dur_ns: 1,
        }]);
        assert!(!no_root.is_well_formed());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            SpanKind::CacheLookup(CacheOutcome::Hit).label(),
            "cache.hit"
        );
        assert_eq!(SpanKind::Morsel { index: 3 }.label(), "morsel");
        assert_eq!(SpanKind::Stage("seedb").label(), "seedb");
    }
}
