//! Sideways cracking / self-organizing tuple reconstruction
//! (Idreos, Kersten, Manegold — SIGMOD'09).
//!
//! Cracking one column physically reorders it, so fetching *other*
//! attributes of qualifying tuples would require random access through the
//! id permutation — exactly the tuple-reconstruction cost that hurts
//! late-materialization column stores. Sideways cracking maintains
//! *cracker maps*: for a (head, tail) attribute pair, the tail's values
//! are stored alongside the head and are swapped in lockstep with every
//! crack, so after any query the qualifying tuples' tail values are a
//! contiguous slice — projection becomes a memcpy.

use std::collections::BTreeMap;
use std::ops::Bound::{Excluded, Unbounded};

/// A cracker map for one (head: i64, tail: f64) attribute pair.
#[derive(Debug, Clone)]
pub struct CrackerMap {
    head: Vec<i64>,
    tail: Vec<f64>,
    ids: Vec<u32>,
    index: BTreeMap<i64, usize>,
}

impl CrackerMap {
    /// Build a map over aligned head/tail columns.
    ///
    /// # Panics
    /// Panics when the columns differ in length.
    pub fn new(head: Vec<i64>, tail: Vec<f64>) -> Self {
        assert_eq!(head.len(), tail.len(), "head/tail must align");
        let ids = (0..head.len() as u32).collect();
        CrackerMap {
            head,
            tail,
            ids,
            index: BTreeMap::new(),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.head.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.head.is_empty()
    }

    /// Answer `low <= head < high` and return the *contiguous* tail
    /// slice of qualifying tuples — the paper's headline property.
    pub fn query_tail(&mut self, low: i64, high: i64) -> &[f64] {
        let (s, e) = self.query(low, high);
        &self.tail[s..e]
    }

    /// Row ids of qualifying tuples.
    pub fn query_ids(&mut self, low: i64, high: i64) -> &[u32] {
        let (s, e) = self.query(low, high);
        &self.ids[s..e]
    }

    /// Aggregate the tail over the qualifying range without materializing
    /// anything: the selection + projection + aggregation pipeline of a
    /// column store collapses into one slice sum.
    pub fn query_tail_sum(&mut self, low: i64, high: i64) -> f64 {
        let (s, e) = self.query(low, high);
        self.tail[s..e].iter().sum()
    }

    /// Position range for `[low, high)`, cracking head and tail together.
    pub fn query(&mut self, low: i64, high: i64) -> (usize, usize) {
        if low >= high || self.head.is_empty() {
            return (0, 0);
        }
        let p_lo = self.bound_position(low);
        let p_hi = self.bound_position(high);
        (p_lo, p_hi)
    }

    fn bound_position(&mut self, bound: i64) -> usize {
        if let Some(&p) = self.index.get(&bound) {
            return p;
        }
        let start = self
            .index
            .range(..=bound)
            .next_back()
            .map_or(0, |(_, &p)| p);
        let end = self
            .index
            .range((Excluded(bound), Unbounded))
            .next()
            .map_or(self.head.len(), |(_, &p)| p);
        let mut lo = start;
        let mut hi = end;
        while lo < hi {
            if self.head[lo] < bound {
                lo += 1;
            } else {
                hi -= 1;
                self.head.swap(lo, hi);
                self.tail.swap(lo, hi);
                self.ids.swap(lo, hi);
            }
        }
        self.index.insert(bound, lo);
        lo
    }

    /// Test-only invariant check: head/tail/ids move together and the
    /// boundary property holds.
    pub fn check_invariants(&self, base_head: &[i64], base_tail: &[f64]) -> bool {
        for (pos, &id) in self.ids.iter().enumerate() {
            if self.head[pos] != base_head[id as usize] || self.tail[pos] != base_tail[id as usize]
            {
                return false;
            }
        }
        for (&v, &p) in &self.index {
            if self.head[..p].iter().any(|&x| x >= v) || self.head[p..].iter().any(|&x| x < v) {
                return false;
            }
        }
        true
    }
}

/// A set of cracker maps sharing one head attribute — the "map set" of
/// the sideways-cracking paper, supporting multi-attribute projections
/// with each tail self-organizing independently under the same head.
#[derive(Debug, Default)]
pub struct MapSet {
    maps: Vec<(String, CrackerMap)>,
}

impl MapSet {
    /// Create an empty map set.
    pub fn new() -> Self {
        MapSet::default()
    }

    /// Register a (head, tail) map under the tail attribute's name.
    pub fn add_map(&mut self, tail_name: impl Into<String>, head: Vec<i64>, tail: Vec<f64>) {
        self.maps
            .push((tail_name.into(), CrackerMap::new(head, tail)));
    }

    /// Names of registered tails.
    pub fn tails(&self) -> Vec<&str> {
        self.maps.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Sum one tail attribute over a head range.
    pub fn sum(&mut self, tail_name: &str, low: i64, high: i64) -> Option<f64> {
        self.maps
            .iter_mut()
            .find(|(n, _)| n == tail_name)
            .map(|(_, m)| m.query_tail_sum(low, high))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore_storage::gen::{uniform_f64, uniform_i64};
    use explore_storage::rng::SplitMix64;

    #[test]
    fn tail_slice_matches_scan() {
        let head = uniform_i64(5000, 0, 1000, 1);
        let tail = uniform_f64(5000, 0.0, 1.0, 2);
        let mut m = CrackerMap::new(head.clone(), tail.clone());
        let mut rng = SplitMix64::new(3);
        for _ in 0..100 {
            let a = rng.range_i64(0, 1000);
            let b = rng.range_i64(0, 1000);
            let (lo, hi) = (a.min(b), a.max(b) + 1);
            let mut got: Vec<f64> = m.query_tail(lo, hi).to_vec();
            let mut want: Vec<f64> = head
                .iter()
                .zip(&tail)
                .filter(|(&h, _)| h >= lo && h < hi)
                .map(|(_, &t)| t)
                .collect();
            got.sort_by(f64::total_cmp);
            want.sort_by(f64::total_cmp);
            assert_eq!(got, want, "range {lo}..{hi}");
        }
        assert!(m.check_invariants(&head, &tail));
    }

    #[test]
    fn tail_sum_matches_scan() {
        let head = uniform_i64(2000, 0, 100, 4);
        let tail = uniform_f64(2000, 0.0, 10.0, 5);
        let mut m = CrackerMap::new(head.clone(), tail.clone());
        let want: f64 = head
            .iter()
            .zip(&tail)
            .filter(|(&h, _)| (20..60).contains(&h))
            .map(|(_, &t)| t)
            .sum();
        assert!((m.query_tail_sum(20, 60) - want).abs() < 1e-9);
    }

    #[test]
    fn map_set_multiple_tails() {
        let head = uniform_i64(1000, 0, 50, 6);
        let t1 = uniform_f64(1000, 0.0, 1.0, 7);
        let t2 = uniform_f64(1000, 0.0, 1.0, 8);
        let mut set = MapSet::new();
        set.add_map("price", head.clone(), t1.clone());
        set.add_map("qty", head.clone(), t2.clone());
        assert_eq!(set.tails(), vec!["price", "qty"]);
        let want: f64 = head
            .iter()
            .zip(&t2)
            .filter(|(&h, _)| (10..30).contains(&h))
            .map(|(_, &t)| t)
            .sum();
        assert!((set.sum("qty", 10, 30).unwrap() - want).abs() < 1e-9);
        assert!(set.sum("missing", 0, 1).is_none());
    }

    #[test]
    fn empty_and_degenerate() {
        let mut m = CrackerMap::new(vec![], vec![]);
        assert!(m.is_empty());
        assert_eq!(m.query(0, 10), (0, 0));
        let mut m = CrackerMap::new(vec![1, 2], vec![0.5, 1.5]);
        assert_eq!(m.query(5, 2), (0, 0));
        assert_eq!(m.query_tail(1, 3).len(), 2);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_columns_panic() {
        let _ = CrackerMap::new(vec![1], vec![]);
    }
}
