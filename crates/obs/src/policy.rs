//! The observability knob: `Off` by default, and *zero-cost* when off.
//!
//! Mirrors the shape of `ExecPolicy` and `CachePolicy`: a plain enum the
//! engine carries, with an attached config when enabled. Every
//! instrumentation site guards on one relaxed atomic load (see
//! [`crate::Tracer::start`]), so an `Off` engine executes the exact same
//! instruction stream as a build without the obs crate wired in.

/// Tuning knobs for an enabled tracer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// How many finished [`crate::QueryTrace`]s the ring retains.
    pub ring_capacity: usize,
    /// Per-trace span budget. Spans past the budget are counted
    /// (`QueryTrace::dropped_spans`) rather than recorded, so a
    /// pathological query cannot balloon trace memory.
    pub max_spans_per_trace: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            ring_capacity: 64,
            max_spans_per_trace: 4096,
        }
    }
}

/// Whether the engine records traces and metrics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ObsPolicy {
    /// No tracing, no metrics: behavior and performance identical to an
    /// uninstrumented engine (the default).
    #[default]
    Off,
    /// Record per-query traces into a bounded ring and aggregate
    /// counters/histograms in the metrics registry.
    On(ObsConfig),
}

impl ObsPolicy {
    /// Enabled with default configuration.
    pub fn on() -> Self {
        ObsPolicy::On(ObsConfig::default())
    }

    /// Is observability enabled?
    pub fn is_on(&self) -> bool {
        matches!(self, ObsPolicy::On(_))
    }

    /// The configuration when enabled.
    pub fn config(&self) -> Option<&ObsConfig> {
        match self {
            ObsPolicy::Off => None,
            ObsPolicy::On(c) => Some(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_off() {
        assert!(!ObsPolicy::default().is_on());
        assert!(ObsPolicy::default().config().is_none());
        let on = ObsPolicy::on();
        assert!(on.is_on());
        assert_eq!(on.config().unwrap().ring_capacity, 64);
    }
}
