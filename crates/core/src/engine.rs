//! The `ExploreDb` facade: one engine wiring every layer of the
//! tutorial's stack together.
//!
//! A downstream user registers tables (in memory or as raw CSV), and the
//! engine provides, per table:
//!
//! * exact queries (through the storage executor, or through the NoDB
//!   loader for raw tables);
//! * adaptive range indexes that crack themselves along the workload;
//! * a sample catalog with error/time-bounded approximate aggregation;
//! * online aggregation with live confidence intervals;
//! * SeeDB view recommendation, faceted recommendations and
//!   explore-by-example sessions.
//!
//! # Concurrency model
//!
//! The engine is shared, not serialized: every query entry point takes
//! `&self`, so any number of threads (the serving layer's workers in
//! particular) run queries concurrently over one `ExploreDb`. The
//! catalog maps table names to [`Arc`]-shared per-table state; a query
//! clones the `Arc`s it needs under a brief catalog read lock and runs
//! lock-free thereafter against an immutable `Table` snapshot.
//! Mutations take the owning table's write lock (and, for sharded
//! tables, the owning shards' write locks), bump epochs exactly as the
//! serialized engine did, and never block queries on *other* tables.
//!
//! Lock ordering is strictly catalog → table data → sharded-mirror slot
//! → shards (ascending) → cracker map, which makes deadlock impossible
//! by construction (DESIGN.md §14). Epochs are read **before** data
//! snapshots, so a racing mutation can only make a cache admission die
//! young, never go stale. Per-session knobs (cancel token, deadline,
//! policy overlays) live in a thread-local overlay stack installed by
//! [`ExploreDb::with_session`] — there are no engine-global session
//! fields left to race on.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use explore_aqp::{
    Bound, BoundedAnswer, BoundedExecutor, OnlineAggregation, SynopsisAnswer, SynopsisStore,
};
use explore_cache::{CachePolicy, CacheStats, ResultCache};
use explore_cracking::ConcurrentCracker;
use explore_cube::{CubeSession, DataCube, DiscoveryView};
use explore_exec::{ExecPolicy, QueryCtx};
use explore_fault::{CancelToken, FailPoints, Observer, QueryDeadline};
use explore_loading::{AdaptiveLoader, ErrorPolicy, RawCsv};
use explore_obs::{
    render_trace, ActiveTrace, MetricsSnapshot, ObsPolicy, QueryTrace, SpanKind, Tracer, ROOT_SPAN,
};
use explore_prefetch::SpeculativeExecutor;
use explore_sampling::SampleCatalog;
use explore_shard::{run_sharded_query, scoped_name, ShardPolicy, ShardStats, ShardedTable};
use explore_storage::{AggFunc, DataType, Predicate, Query, Result, StorageError, Table, Value};
use explore_viz::seedb::{candidate_views, recommend_shared, ScoredView, SeedbStats};
use parking_lot::{Mutex, RwLock};

use crate::session::SessionCtx;

thread_local! {
    /// The per-thread stack of installed session overlays, keyed by
    /// engine address. [`ExploreDb::with_session`] pushes on entry and
    /// pops (panic-safely) on exit; `current_session` searches top-down
    /// for this engine's most recent overlay. Thread-local rather than
    /// engine-global so concurrent sessions on different worker threads
    /// never see each other's knobs.
    static SESSION_OVERLAYS: RefCell<Vec<(usize, SessionCtx)>> = const { RefCell::new(Vec::new()) };
}

/// Everything the engine knows about one registered in-memory table,
/// shared via `Arc` so queries can keep using a state the catalog has
/// since replaced.
#[derive(Debug)]
struct TableState {
    /// The canonical table. Readers clone the `Arc` under a brief read
    /// lock and run against that immutable snapshot; mutations hold the
    /// write lock across the sharded-mirror write so the two copies
    /// never diverge observably.
    data: RwLock<Arc<Table>>,
    /// Adaptive range indexes, keyed by column. Crackers reorganize
    /// under their own internal locks; this map only guards presence.
    crackers: Mutex<HashMap<String, Arc<ConcurrentCracker>>>,
    /// The sharded mirror, present while the shard policy is on.
    sharded: RwLock<Option<Arc<ShardedTable>>>,
    /// Bumped under the data write lock after every data change.
    /// `ensure_cracker` re-checks it before installing a freshly built
    /// cracker, so an index built from a snapshot that a mutation has
    /// since replaced is served once and never installed.
    generation: AtomicU64,
}

impl TableState {
    fn new(table: Arc<Table>) -> Self {
        TableState {
            data: RwLock::new(table),
            crackers: Mutex::new(HashMap::new()),
            sharded: RwLock::new(None),
            generation: AtomicU64::new(0),
        }
    }

    /// The current immutable data snapshot.
    fn snapshot(&self) -> Arc<Table> {
        Arc::clone(&self.data.read())
    }

    /// The current sharded mirror, if any.
    fn mirror(&self) -> Option<Arc<ShardedTable>> {
        self.sharded.read().as_ref().map(Arc::clone)
    }
}

/// The unified exploration engine.
///
/// All query entry points take `&self` and the engine is `Sync`: share
/// one instance across threads (the serving layer does) and run reads
/// concurrently. Mutation entry points also take `&self` — they lock
/// only the table they touch.
#[derive(Debug)]
pub struct ExploreDb {
    /// Registered in-memory tables. The lock guards the *map*; each
    /// table's state is `Arc`-shared and internally locked, so catalog
    /// critical sections are a clone or an insert, never a query.
    catalog: RwLock<HashMap<String, Arc<TableState>>>,
    /// Raw (not-yet-loaded) tables served by the adaptive loader. Each
    /// loader mutates itself on every query (incremental load state), so
    /// raw-table queries serialize per table — on the loader's own
    /// mutex, not an engine-wide one.
    raw: RwLock<HashMap<String, Arc<Mutex<AdaptiveLoader>>>>,
    /// Sample catalogs for approximate execution.
    samples: RwLock<HashMap<String, Arc<SampleCatalog>>>,
    /// AQUA-style synopsis stores for zero-touch estimation.
    synopses: RwLock<HashMap<String, Arc<SynopsisStore>>>,
    /// How exact scans and aggregates execute; defaults to
    /// morsel-parallel over all available cores. Both settings produce
    /// bit-identical results (see `explore_exec`).
    exec_policy: RwLock<ExecPolicy>,
    /// The shared semantic result cache. Always allocated — it carries
    /// the per-table epoch counters even while the policy is `Off`, so
    /// flipping caching on later never resurrects pre-mutation entries.
    result_cache: Arc<ResultCache>,
    /// Whether [`ExploreDb::query`] routes through the cache. `Off` (the
    /// default) is bit-identical to a cache-less engine.
    cache_policy: RwLock<CachePolicy>,
    /// Whether registered tables are mirrored into row-range shards with
    /// per-shard cracking, caching, and epochs. `Off` (the default) is
    /// the unchanged single-table engine. The mirrors themselves live in
    /// each table's state; the canonical table stays authoritative, and
    /// mutations dual-write under the canonical write lock.
    shard_policy: RwLock<ShardPolicy>,
    /// The engine's tracer + metrics owner. Always allocated; recording
    /// is gated by `obs_policy` and costs one relaxed load while off.
    obs: Arc<Tracer>,
    /// Whether queries record traces and metrics. `Off` (the default)
    /// leaves every execution path byte-identical to an uninstrumented
    /// engine.
    obs_policy: RwLock<ObsPolicy>,
    /// Engine-wide deterministic fail-point registry. Disarmed (the
    /// default and only production state) every injection site costs one
    /// relaxed atomic load; tests arm named points to force the engine
    /// down its degradation paths. Shared with the result cache, every
    /// raw-table loader, and each exec call.
    faults: Arc<FailPoints>,
    /// How raw-table loaders treat malformed CSV rows; applied to
    /// current and future attachments.
    load_error_policy: RwLock<ErrorPolicy>,
}

impl Default for ExploreDb {
    fn default() -> Self {
        let faults = Arc::new(FailPoints::default());
        let result_cache = Arc::<ResultCache>::default();
        result_cache.set_faults(Some(Arc::clone(&faults)));
        ExploreDb {
            catalog: RwLock::new(HashMap::new()),
            raw: RwLock::new(HashMap::new()),
            samples: RwLock::new(HashMap::new()),
            synopses: RwLock::new(HashMap::new()),
            exec_policy: RwLock::new(ExecPolicy::default()),
            result_cache,
            cache_policy: RwLock::new(CachePolicy::default()),
            shard_policy: RwLock::new(ShardPolicy::default()),
            obs: Arc::default(),
            obs_policy: RwLock::new(ObsPolicy::default()),
            faults,
            load_error_policy: RwLock::new(ErrorPolicy::default()),
        }
    }
}

impl ExploreDb {
    /// A fresh engine.
    pub fn new() -> Self {
        ExploreDb::default()
    }

    /// A fresh engine with an explicit execution policy.
    pub fn with_exec_policy(policy: ExecPolicy) -> Self {
        let db = ExploreDb::default();
        db.set_exec_policy(policy);
        db
    }

    /// Change the execution policy for subsequent queries.
    pub fn set_exec_policy(&self, policy: ExecPolicy) {
        *self.exec_policy.write() = policy;
    }

    /// The current execution policy.
    pub fn exec_policy(&self) -> ExecPolicy {
        *self.exec_policy.read()
    }

    /// A fresh engine with result caching enabled.
    pub fn with_cache_policy(policy: CachePolicy) -> Self {
        let db = ExploreDb::default();
        db.set_cache_policy(policy);
        db
    }

    /// Turn result caching on or off (and retune it). Turning it off
    /// stops serving and admitting, but keeps epochs and entries — a
    /// later `On` resumes with a warm cache, minus whatever mutations
    /// invalidated meanwhile.
    pub fn set_cache_policy(&self, policy: CachePolicy) {
        if let Some(config) = policy.config() {
            self.result_cache.set_config(config.clone());
        }
        *self.cache_policy.write() = policy;
    }

    /// The current cache policy.
    pub fn cache_policy(&self) -> CachePolicy {
        self.cache_policy.read().clone()
    }

    /// A fresh engine with table sharding enabled.
    pub fn with_shard_policy(policy: ShardPolicy) -> Self {
        let db = ExploreDb::default();
        db.set_shard_policy(policy);
        db
    }

    /// Turn table sharding on or off (and retune it). `On` mirrors every
    /// registered in-memory table into contiguous row-range shards, each
    /// with its own cracker state and cache-epoch scope; queries fan out
    /// per shard and merge bit-identically to the unsharded engine (see
    /// `explore_shard`). `Off` drops the mirrors — the canonical tables
    /// in the catalog were authoritative all along.
    pub fn set_shard_policy(&self, policy: ShardPolicy) {
        *self.shard_policy.write() = policy;
        let states: Vec<(String, Arc<TableState>)> = self
            .catalog
            .read()
            .iter()
            .map(|(n, s)| (n.clone(), Arc::clone(s)))
            .collect();
        for (name, st) in states {
            self.rebuild_shards(&st, &name);
        }
    }

    /// The current shard policy.
    pub fn shard_policy(&self) -> ShardPolicy {
        self.shard_policy.read().clone()
    }

    /// Per-shard layout, epoch, and index statistics for a table, or
    /// `None` when the table has no sharded mirror (policy off, raw
    /// table, or unknown name).
    pub fn shard_stats(&self, table: &str) -> Option<Vec<ShardStats>> {
        let st = self.catalog.read().get(table).cloned()?;
        let mirror = st.mirror()?;
        Some(mirror.stats(|i| self.result_cache.epoch(&scoped_name(table, i))))
    }

    /// (Re)build `table`'s sharded mirror from the canonical snapshot,
    /// installing it (or `None`, policy off) in the table's mirror slot.
    /// Bumps every shard-scope epoch the change touches — the union of
    /// the old and new shard ranges — so cache entries under scoped
    /// names from any earlier sharding era, including one the policy was
    /// toggled across, never survive into the new mirror.
    fn rebuild_shards(&self, st: &TableState, name: &str) {
        let policy = self.shard_policy();
        let old_count = st.mirror().map_or(0, |m| m.shard_count());
        let mirror = match &policy {
            ShardPolicy::On(config) => {
                let data = st.snapshot();
                Some(Arc::new(ShardedTable::build(name, &data, config)))
            }
            _ => None,
        };
        let new_count = mirror.as_ref().map_or(0, |m| m.shard_count());
        *st.sharded.write() = mirror;
        for s in 0..old_count.max(new_count) {
            self.result_cache.bump_epoch(&scoped_name(name, s));
        }
    }

    /// A fresh engine with observability enabled.
    pub fn with_obs_policy(policy: ObsPolicy) -> Self {
        let db = ExploreDb::default();
        db.set_obs_policy(policy);
        db
    }

    /// Turn query tracing and metrics on or off. `On` makes every
    /// [`ExploreDb::query`] record a span tree into the recent-trace
    /// ring and mirror engine counters into the metrics registry; `Off`
    /// (the default) stops recording but keeps what was collected.
    /// Either way results are bit-identical — observability never
    /// changes what executes.
    pub fn set_obs_policy(&self, policy: ObsPolicy) {
        self.obs.set_policy(&policy);
        self.result_cache
            .set_metrics(policy.is_on().then(|| self.obs.metrics()));
        // Mirror fault trips and degradation/cancellation events into
        // the metrics registry as `fault.*` / `cancel.*` counters.
        self.faults.set_observer(policy.is_on().then(|| {
            let metrics = self.obs.metrics();
            Arc::new(move |name: &str| metrics.inc(name, 1)) as Observer
        }));
        *self.obs_policy.write() = policy;
    }

    /// The current observability policy.
    pub fn obs_policy(&self) -> ObsPolicy {
        self.obs_policy.read().clone()
    }

    /// Handle to the engine's tracer, for wiring into external
    /// consumers or dumping traces out-of-band.
    pub fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.obs)
    }

    /// Point-in-time snapshot of every engine counter and latency
    /// histogram collected while observability was on.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs.metrics().snapshot()
    }

    /// The most recent finished query traces, oldest first (bounded by
    /// the policy's ring capacity).
    pub fn recent_traces(&self) -> Vec<QueryTrace> {
        self.obs.recent_traces()
    }

    /// Profile one query regardless of the observability policy and
    /// render its span tree as a human-readable report. The query
    /// executes for real (through the same cache/exec routing as
    /// [`ExploreDb::query`]), so the profile reflects live state —
    /// explaining a cached query shows the hit, not the original scan.
    pub fn explain(&self, table: &str, query: &Query) -> Result<String> {
        let trace = self.obs.force_start(table, query.describe());
        let ctx = self.query_ctx().with_trace(Some(&trace));
        let result = self.run_routed(table, query, &ctx);
        let finished = trace.finish();
        self.note_cancel(&result);
        result.map(|_| render_trace(&finished))
    }

    /// Handle to the engine's fail-point registry. Tests arm named
    /// points (`exec.spawn`, `exec.morsel`, `cache.admit`,
    /// `cache.lookup`, `cache.evict`, `load.parse`, `load.map`,
    /// `crack.reorg`, `shard.dispatch`, `shard.merge`, the engine's own
    /// `engine.catalog_read` / `engine.table_write`, and the serving
    /// layer's `serve.admit` / `serve.yield`) to drive the engine down
    /// its degradation paths; the registry also counts `fault.*` /
    /// `cancel.*` events.
    pub fn fail_points(&self) -> Arc<FailPoints> {
        Arc::clone(&self.faults)
    }

    /// How raw-table loaders treat malformed CSV rows: `Abort` (the
    /// default) surfaces the first parse error, `SkipRow` tombstones the
    /// offending row and keeps serving. Applies to already-attached and
    /// future raw tables.
    pub fn set_load_error_policy(&self, policy: ErrorPolicy) {
        *self.load_error_policy.write() = policy;
        let loaders: Vec<Arc<Mutex<AdaptiveLoader>>> =
            self.raw.read().values().map(Arc::clone).collect();
        for loader in loaders {
            loader.lock().set_error_policy(policy);
        }
    }

    /// Rows skipped so far by a raw table's loader under
    /// [`ErrorPolicy::SkipRow`] (`None` for in-memory tables).
    pub fn rows_skipped(&self, table: &str) -> Option<u64> {
        self.raw.read().get(table).map(|l| l.lock().rows_skipped())
    }

    /// Snapshot of the shared cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.result_cache.stats()
    }

    /// Handle to the shared result cache, for wiring into middleware
    /// sessions ([`SpeculativeExecutor::with_shared_cache`],
    /// `PanSession::with_shared_cache`, `BoundedExecutor::with_cache`).
    pub fn cache(&self) -> Arc<ResultCache> {
        Arc::clone(&self.result_cache)
    }

    /// Current mutation epoch of a table (0 until first mutated).
    pub fn table_epoch(&self, table: &str) -> u64 {
        self.result_cache.epoch(table)
    }

    /// Record that `table`'s data changed through a channel the engine
    /// did not see: bumps the cache epoch (so no pre-mutation result is
    /// ever served again) — every shard-scope epoch included — drops the
    /// table's adaptive indexes, which mirror the old data, and rebuilds
    /// the sharded mirror from the canonical copy. The mutation APIs
    /// below route mutations precisely instead (bumping only the owning
    /// shard's epoch); callers that mutate through other channels get
    /// this conservative whole-table invalidation.
    pub fn note_mutation(&self, table: &str) {
        self.result_cache.bump_epoch(table);
        let st = self.catalog.read().get(table).cloned();
        if let Some(st) = st {
            {
                // Hold the data lock across the generation bump so a
                // concurrent `ensure_cracker` can never install an
                // index built from the superseded snapshot.
                let _guard = st.data.write();
                st.generation.fetch_add(1, Ordering::SeqCst);
            }
            st.crackers.lock().clear();
            self.rebuild_shards(&st, table);
        }
    }

    /// Whole-table invalidation: base epoch, every current shard-scope
    /// epoch, and the table's adaptive indexes.
    fn invalidate_table(&self, table: &str) {
        self.result_cache.bump_epoch(table);
        if let Some(st) = self.catalog.read().get(table).cloned() {
            let count = st.mirror().map_or(0, |m| m.shard_count());
            for s in 0..count {
                self.result_cache.bump_epoch(&scoped_name(table, s));
            }
            st.crackers.lock().clear();
        }
    }

    /// Record a mutation the sharded mirror already absorbed in place:
    /// bump the base epoch (whole-table results die) and only the
    /// mutated shards' scope epochs — the other shards' cached results
    /// are still exact, and keeping them live is the payoff of sharding.
    fn note_shard_epochs(&self, table: &str, mutated: &[usize]) {
        self.result_cache.bump_epoch(table);
        for &s in mutated {
            self.result_cache.bump_epoch(&scoped_name(table, s));
        }
    }

    /// Resolve a table's shared state, or the typed unknown-table error.
    /// This is the query and mutation paths' single catalog touchpoint,
    /// and the `engine.catalog_read` fail point fires here — before the
    /// `Arc` clone, so an injected failure never hands out state.
    fn table_state(&self, table: &str) -> Result<Arc<TableState>> {
        if self.faults.fire("engine.catalog_read") {
            return Err(StorageError::Internal(
                "injected catalog-read failure (engine.catalog_read)".into(),
            ));
        }
        self.catalog
            .read()
            .get(table)
            .cloned()
            .ok_or_else(|| StorageError::UnknownTable(table.to_owned()))
    }

    /// The `engine.table_write` fail point, fired at the top of every
    /// mutation entry point — before any state changes, so an injected
    /// failure is always a clean no-op.
    fn fire_table_write(&self) -> Result<()> {
        if self.faults.fire("engine.table_write") {
            return Err(StorageError::Internal(
                "injected table-write failure (engine.table_write)".into(),
            ));
        }
        Ok(())
    }

    /// Register an in-memory table (a `Table` or an `Arc<Table>`).
    /// Re-registering an existing name is a mutation: the old name's
    /// cache entries are invalidated and its adaptive indexes dropped.
    pub fn register(&self, name: impl Into<String>, table: impl Into<Arc<Table>>) {
        let name = name.into();
        let table = table.into();
        let existing = self.catalog.read().get(&name).cloned();
        match existing {
            Some(st) => {
                {
                    // Data first, bump second: a reader that saw the old
                    // epoch gets either old data (fine) or new data
                    // admitted under the old epoch (dies at the bump) —
                    // never new-epoch/old-data.
                    let mut data = st.data.write();
                    *data = table;
                    st.generation.fetch_add(1, Ordering::SeqCst);
                }
                st.crackers.lock().clear();
                self.rebuild_shards(&st, &name);
                self.result_cache.bump_epoch(&name);
            }
            None => {
                let st = Arc::new(TableState::new(table));
                self.rebuild_shards(&st, &name);
                self.catalog.write().insert(name, st);
            }
        }
    }

    /// Append one row of dynamic values to an in-memory table.
    pub fn push_row(&self, table: &str, values: Vec<Value>) -> Result<()> {
        self.fire_table_write()?;
        let st = self.table_state(table)?;
        let mutated = {
            let mut data = st.data.write();
            // The canonical write validates; the mirror's schema is
            // identical, so the dual-write below routes to the owning
            // (last) shard and cannot fail after this point.
            Arc::make_mut(&mut *data).push_row(values.clone())?;
            st.generation.fetch_add(1, Ordering::SeqCst);
            match st.mirror() {
                Some(m) => Some(m.push_row(values)?),
                None => None,
            }
        };
        st.crackers.lock().clear();
        match mutated {
            Some(shard) => self.note_shard_epochs(table, &[shard]),
            None => {
                self.result_cache.bump_epoch(table);
            }
        }
        Ok(())
    }

    /// Append all rows of `rows` (identical schema) to an in-memory
    /// table.
    pub fn append_rows(&self, table: &str, rows: &Table) -> Result<()> {
        self.fire_table_write()?;
        let st = self.table_state(table)?;
        let mutated = {
            let mut data = st.data.write();
            Arc::make_mut(&mut *data).append(rows)?;
            st.generation.fetch_add(1, Ordering::SeqCst);
            match st.mirror() {
                Some(m) => Some(m.append_rows(rows)?),
                None => None,
            }
        };
        st.crackers.lock().clear();
        match mutated {
            Some(shard) => self.note_shard_epochs(table, &[shard]),
            None => {
                self.result_cache.bump_epoch(table);
            }
        }
        Ok(())
    }

    /// Set `column = value` on every row matching `predicate`; returns
    /// how many rows changed. Type incompatibilities are rejected before
    /// any write, so a failed update never leaves the table half-mutated.
    pub fn update_where(
        &self,
        table: &str,
        predicate: &Predicate,
        column: &str,
        value: Value,
    ) -> Result<usize> {
        self.fire_table_write()?;
        let st = self.table_state(table)?;
        let (changed, mutated) = {
            let mut data = st.data.write();
            let sel = predicate.evaluate(&data)?;
            let expected = data.column(column)?.data_type();
            let compatible = matches!(
                (expected, &value),
                (DataType::Int64, Value::Int(_))
                    | (DataType::Float64, Value::Float(_) | Value::Int(_))
                    | (DataType::Utf8, Value::Str(_))
            );
            if !compatible {
                return Err(StorageError::TypeMismatch {
                    column: column.to_owned(),
                    expected: expected.name(),
                    found: value.data_type().map_or("Null", DataType::name),
                });
            }
            if sel.is_empty() {
                return Ok(0);
            }
            let t = Arc::make_mut(&mut *data);
            for &row in &sel {
                t.set_cell(column, row as usize, value.clone())?;
            }
            st.generation.fetch_add(1, Ordering::SeqCst);
            let mutated = match st.mirror() {
                Some(m) => Some(m.update_where(&sel, column, &value)?),
                None => None,
            };
            (sel.len(), mutated)
        };
        st.crackers.lock().clear();
        match mutated {
            Some(shards) => self.note_shard_epochs(table, &shards),
            None => {
                self.result_cache.bump_epoch(table);
            }
        }
        Ok(changed)
    }

    /// Attach a raw CSV file; queries against it run through the NoDB
    /// adaptive loader until the workload has loaded it.
    pub fn attach_raw(&self, name: impl Into<String>, raw: RawCsv) {
        let mut loader = AdaptiveLoader::new(raw);
        loader.set_faults(Some(Arc::clone(&self.faults)));
        loader.set_error_policy(*self.load_error_policy.read());
        self.raw
            .write()
            .insert(name.into(), Arc::new(Mutex::new(loader)));
    }

    /// Registered table names (in-memory, then raw).
    pub fn tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self.catalog.read().keys().cloned().collect();
        names.extend(self.raw.read().keys().cloned());
        names.sort();
        names
    }

    /// The current snapshot of an in-memory table. The snapshot is
    /// immutable: later mutations replace the table's `Arc`, they never
    /// write through one you already hold.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        Ok(self.table_state(name)?.snapshot())
    }

    /// Run an exact query, routing to the right storage path. With
    /// caching on, in-memory tables are served through the semantic
    /// result cache (exact and subsumption reuse); raw tables always go
    /// through the adaptive loader, whose incremental load state is
    /// itself the cache. Takes `&self`: concurrent callers on different
    /// threads run genuinely in parallel.
    pub fn query(&self, table: &str, query: &Query) -> Result<Table> {
        let trace = self.start_trace(table, || query.describe());
        let ctx = self.query_ctx().with_trace(trace.as_ref());
        let result = self.run_routed(table, query, &ctx);
        if let Some(trace) = trace {
            trace.finish();
        }
        self.note_cancel(&result);
        result
    }

    /// A fresh per-session policy overlay: owns its cancel token,
    /// inherits every engine default. Customize with the `SessionCtx`
    /// builders, then scope engine calls to it via
    /// [`ExploreDb::with_session`].
    pub fn session(&self) -> SessionCtx {
        SessionCtx::new()
    }

    /// Run `f` with `session`'s overlay installed: every `query_ctx()`
    /// minted inside (on this thread) resolves the session's exec/cache/
    /// obs policies, deadline budget, cancel token, and yield hook
    /// *over* the engine defaults (DESIGN.md §10/§13). The overlay is
    /// thread-local and keyed to this engine, so sessions on other
    /// worker threads — and other engines on this thread — are
    /// unaffected, and nesting is safe. The overlay pops on exit, panic
    /// included.
    pub fn with_session<R>(&self, session: &SessionCtx, f: impl FnOnce(&ExploreDb) -> R) -> R {
        struct Pop;
        impl Drop for Pop {
            fn drop(&mut self) {
                SESSION_OVERLAYS.with(|s| {
                    s.borrow_mut().pop();
                });
            }
        }
        let key = self as *const ExploreDb as usize;
        SESSION_OVERLAYS.with(|s| s.borrow_mut().push((key, session.clone())));
        let _pop = Pop;
        f(self)
    }

    /// This thread's innermost overlay installed for *this* engine, if
    /// any.
    fn current_session(&self) -> Option<SessionCtx> {
        let key = self as *const ExploreDb as usize;
        SESSION_OVERLAYS.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(k, _)| *k == key)
                .map(|(_, ctx)| ctx.clone())
        })
    }

    /// The execution context for one engine call: the engine's exec
    /// policy and fail points, plus — when a session overlay is
    /// installed ([`ExploreDb::with_session`]) — the session's exec
    /// policy, cancel token, deadline budget (minted fresh so its clock
    /// starts at this call), and cooperative yield hook. Cancellation
    /// and deadlines are session-scoped only: an engine with no overlay
    /// installed runs to completion.
    fn query_ctx(&self) -> QueryCtx<'static> {
        let s = self.current_session();
        let s = s.as_ref();
        let exec = s.and_then(|s| s.exec).unwrap_or_else(|| self.exec_policy());
        let cancel = s.and_then(|s| s.cancel.clone());
        let deadline = s.and_then(|s| s.deadline).map(QueryDeadline);
        QueryCtx::new(exec)
            .with_faults(Some(Arc::clone(&self.faults)))
            .with_cancel(cancel)
            .with_deadline(deadline.as_ref().map(QueryDeadline::token))
            .with_yield_hook(s.and_then(|s| s.yield_hook.clone()))
    }

    /// One token for long-lived middleware sessions that outlive a
    /// single engine call: the session cancel token when set, else a
    /// token minted from the session deadline (its clock starts now).
    fn session_token(&self) -> Option<CancelToken> {
        let s = self.current_session();
        let s = s.as_ref();
        s.and_then(|s| s.cancel.clone()).or_else(|| {
            s.and_then(|s| s.deadline)
                .map(QueryDeadline)
                .as_ref()
                .map(QueryDeadline::token)
        })
    }

    /// Is the result cache in play for this call? The session overlay's
    /// cache policy wins over the engine knob.
    fn cache_on(&self) -> bool {
        self.current_session()
            .and_then(|s| s.cache)
            .map_or_else(|| self.cache_policy.read().is_on(), |p| p.is_on())
    }

    /// Is observability in play for this call? Gates metrics attachment
    /// on middleware executors; the session overlay wins.
    fn obs_on(&self) -> bool {
        self.current_session()
            .and_then(|s| s.obs)
            .map_or_else(|| self.obs_policy.read().is_on(), |p| p.is_on())
    }

    /// Start (or skip) a trace for one engine call, honoring the session
    /// overlay: `Some(On)` forces a trace even while the engine policy
    /// is off, `Some(Off)` suppresses one, `None` defers to the engine's
    /// obs policy via the tracer's own gate.
    fn start_trace(&self, table: &str, desc: impl FnOnce() -> String) -> Option<ActiveTrace> {
        match self.current_session().and_then(|s| s.obs) {
            Some(p) if p.is_on() => Some(self.obs.force_start(table, desc())),
            Some(_) => None,
            None => self.obs.start(table, desc),
        }
    }

    /// Count cancellation outcomes as `cancel.*` events (mirrored into
    /// obs metrics when observability is on).
    fn note_cancel<T>(&self, result: &Result<T>) {
        match result {
            Err(StorageError::Cancelled) => self.faults.note("cancel.cancelled"),
            Err(StorageError::DeadlineExceeded) => self.faults.note("cancel.deadline_exceeded"),
            _ => {}
        }
    }

    /// The routing core of [`ExploreDb::query`], shared with
    /// [`ExploreDb::explain`]: raw tables go through the adaptive
    /// loader (recorded as one raw-load span), in-memory tables through
    /// the cache or the plain executor. In-memory reads clone the
    /// table's `Arc` snapshot and run lock-free; the cache-admission
    /// epoch is read *before* the snapshot (see
    /// `explore_cache::cached_query_at_epoch` for why that order is the
    /// sound one).
    fn run_routed(&self, table: &str, query: &Query, ctx: &QueryCtx) -> Result<Table> {
        // An already-cancelled or expired token fails before routing —
        // even a warm cache hit must not mask the typed error.
        ctx.check_cancel()?;
        let loader = self.raw.read().get(table).map(Arc::clone);
        if let Some(loader) = loader {
            let mut loader = loader.lock();
            return match ctx.trace {
                Some(t) => t.scope(ROOT_SPAN, SpanKind::RawLoad, || loader.query(query, ctx)),
                None => loader.query(query, ctx),
            };
        }
        let st = self.table_state(table)?;
        if let Some(m) = st.mirror() {
            let cache = self.cache_on().then_some(&*self.result_cache);
            return run_sharded_query(&m, cache, query, ctx);
        }
        if self.cache_on() {
            let epoch = self.result_cache.epoch(table);
            let base = st.snapshot();
            explore_cache::cached_query_at_epoch(
                &self.result_cache,
                &base,
                table,
                query,
                ctx,
                epoch,
            )
        } else {
            let base = st.snapshot();
            explore_exec::run_query(&base, query, ctx)
        }
    }

    /// Progress of invisible loading for a raw table (columns loaded,
    /// total columns), or `None` for in-memory tables.
    pub fn loading_progress(&self, table: &str) -> Option<(usize, usize)> {
        self.raw.read().get(table).map(|l| {
            let l = l.lock();
            (l.columns_loaded(), l.schema().len())
        })
    }

    /// Range query through the adaptive index: first call cracks (cost ≈
    /// scan), later calls converge to index speed. The column must be
    /// Int64. Honors the session cancel token and deadline: the token is
    /// checked between crack (partition) steps, so a cancelled call may
    /// have cracked the low bound but not the high one — the index is
    /// well-formed either way, and the partial work is kept (it benefits
    /// later queries rather than being rolled back). Takes `&self`:
    /// concurrent callers share the index, which reorganizes under its
    /// own lock (lookups that hit an existing piece don't block each
    /// other).
    pub fn cracked_range(
        &self,
        table: &str,
        column: &str,
        low: i64,
        high: i64,
    ) -> Result<Vec<u32>> {
        let ctx = self.query_ctx();
        ctx.check_cancel()?;
        let token = self.session_token();
        let st = self.table_state(table)?;
        let mirror = st.mirror();
        let cracker = match &mirror {
            // Sharded tables crack per shard; validate the column here so
            // the error shape matches `ensure_cracker` exactly.
            Some(_) => {
                let t = st.snapshot();
                let col = t.column(column)?;
                col.as_i64().ok_or_else(|| StorageError::TypeMismatch {
                    column: column.to_owned(),
                    expected: "Int64",
                    found: col.data_type().name(),
                })?;
                None
            }
            None => Some(self.ensure_cracker(&st, column)?),
        };
        if self.faults.fire("crack.reorg") {
            // Injected reorganization failure: answer by scanning the
            // (never-reorganized) base column instead. Cracking writes
            // are discretionary, so skipping one changes convergence
            // rate, never answers.
            self.faults.note("fault.crack.scan_fallback");
            let t = st.snapshot();
            let col = t.column(column)?;
            let values = col.as_i64().ok_or_else(|| StorageError::TypeMismatch {
                column: column.to_owned(),
                expected: "Int64",
                found: col.data_type().name(),
            })?;
            return Ok(values
                .iter()
                .enumerate()
                .filter(|(_, &v)| v >= low && v < high)
                .map(|(i, _)| i as u32)
                .collect());
        }
        if let Some(m) = mirror {
            return self.cracked_range_sharded(table, column, low, high, token, &m);
        }
        let cracker = cracker.expect("cracker ensured on the unsharded path");
        let trace = self
            .obs
            .start(table, || format!("cracked_range({column}, {low}, {high})"));
        let pieces_before = cracker.num_pieces();
        let start = trace.as_ref().map(|t| t.now_ns());
        let ids = cracker.query_ids(low, high, token.as_ref());
        let pieces_after = cracker.num_pieces();
        if let Some((t, start)) = trace.as_ref().zip(start) {
            t.record(
                ROOT_SPAN,
                SpanKind::Crack {
                    pieces_before: pieces_before as u32,
                    pieces_after: pieces_after as u32,
                },
                start,
                t.now_ns(),
            );
            if pieces_after != pieces_before {
                t.metrics().inc("crack.reorganizations", 1);
            }
        }
        // Cracking reorganizes the index copy, not the base table, so
        // cached results stay byte-correct — but the ISSUE's protocol
        // treats a reorganization as an epoch event, which keeps the
        // cache conservative if cracking ever becomes in-place. Even an
        // aborted (cancelled) call may have registered a boundary.
        if pieces_after != pieces_before {
            self.result_cache.bump_epoch(table);
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        self.note_cancel(&ids);
        ids
    }

    /// The sharded variant of [`ExploreDb::cracked_range`]: each shard
    /// cracks its own copy of the column independently, shards whose
    /// piece count grew bump their scope epochs (plus the base epoch),
    /// and matching global row ids come back concatenated in shard
    /// order — cracked (physical) order within each shard, like the
    /// unsharded path.
    fn cracked_range_sharded(
        &self,
        table: &str,
        column: &str,
        low: i64,
        high: i64,
        token: Option<CancelToken>,
        st: &ShardedTable,
    ) -> Result<Vec<u32>> {
        let trace = self
            .obs
            .start(table, || format!("cracked_range({column}, {low}, {high})"));
        let pieces_before = st.index_pieces(column).unwrap_or(0);
        let start = trace.as_ref().map(|t| t.now_ns());
        let result = st.cracked_range(column, low, high, token.as_ref());
        let pieces_after = st.index_pieces(column).unwrap_or(0);
        if let Some((t, s)) = trace.as_ref().zip(start) {
            t.record(
                ROOT_SPAN,
                SpanKind::Crack {
                    pieces_before: pieces_before as u32,
                    pieces_after: pieces_after as u32,
                },
                s,
                t.now_ns(),
            );
            if pieces_after != pieces_before {
                t.metrics().inc("crack.reorganizations", 1);
            }
        }
        match &result {
            // Reorganization is an epoch event (see the unsharded path),
            // but a per-shard one: only the shards that grew pieces bump.
            Ok((_, reorganized)) if !reorganized.is_empty() => {
                for &s in reorganized {
                    self.result_cache.bump_epoch(&scoped_name(table, s));
                }
                self.result_cache.bump_epoch(table);
            }
            // An aborted (cancelled) call may have reorganized some
            // shards before stopping and cannot say which; invalidate
            // conservatively.
            Err(_) if pieces_after != pieces_before => self.invalidate_table(table),
            _ => {}
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        self.note_cancel(&result);
        result.map(|(ids, _)| ids)
    }

    /// The table's cracker for `column`, building it on first use. A
    /// build races mutations benignly: the generation counter is read
    /// before the data snapshot, and a cracker whose generation went
    /// stale by install time serves this one call but is never
    /// installed — the next call rebuilds from current data.
    fn ensure_cracker(&self, st: &TableState, column: &str) -> Result<Arc<ConcurrentCracker>> {
        if let Some(c) = st.crackers.lock().get(column) {
            return Ok(Arc::clone(c));
        }
        let built_at = st.generation.load(Ordering::SeqCst);
        let t = st.snapshot();
        let col = t.column(column)?;
        let values = col
            .as_i64()
            .ok_or_else(|| StorageError::TypeMismatch {
                column: column.to_owned(),
                expected: "Int64",
                found: col.data_type().name(),
            })?
            .to_vec();
        let cracker = Arc::new(ConcurrentCracker::new(values));
        let mut map = st.crackers.lock();
        if st.generation.load(Ordering::SeqCst) == built_at {
            let entry = map
                .entry(column.to_owned())
                .or_insert_with(|| Arc::clone(&cracker));
            return Ok(Arc::clone(entry));
        }
        Ok(cracker)
    }

    /// Pieces the adaptive index on (table, column) currently has —
    /// observability for convergence. For a sharded table, the sum of
    /// per-shard piece counts.
    pub fn index_pieces(&self, table: &str, column: &str) -> Option<usize> {
        let st = self.catalog.read().get(table).cloned()?;
        let cracker = st.crackers.lock().get(column).map(Arc::clone);
        if let Some(c) = cracker {
            return Some(c.num_pieces());
        }
        st.mirror().and_then(|m| m.index_pieces(column))
    }

    /// Build (or rebuild) the sample catalog enabling approximate
    /// queries on a table. Honors the session cancel token and deadline
    /// (checked between samples) and records a `sample.build` span and
    /// counter when observability is on.
    pub fn build_samples(
        &self,
        table: &str,
        fractions: &[f64],
        stratify_on: &[(&str, usize)],
        seed: u64,
    ) -> Result<()> {
        let trace = self.start_trace(table, || {
            format!(
                "build_samples({} samples)",
                fractions.len() + stratify_on.len()
            )
        });
        let ctx = self.query_ctx().with_trace(trace.as_ref());
        let start = ctx.trace.map(|t| t.now_ns());
        let result = self.table_state(table).and_then(|st| {
            let t = st.snapshot();
            SampleCatalog::build(&t, fractions, stratify_on, seed, &ctx)
        });
        if let Some((t, s)) = ctx.trace.zip(start) {
            t.record(ROOT_SPAN, SpanKind::Stage("sample.build"), s, t.now_ns());
            t.metrics().inc("sample.builds", 1);
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        self.note_cancel(&result);
        let catalog = result?;
        self.samples
            .write()
            .insert(table.to_owned(), Arc::new(catalog));
        Ok(())
    }

    /// BlinkDB-style bounded approximate aggregate. Requires
    /// [`build_samples`](Self::build_samples) first.
    pub fn approx_aggregate(
        &self,
        table: &str,
        predicate: &Predicate,
        func: AggFunc,
        column: &str,
        bound: Bound,
    ) -> Result<BoundedAnswer> {
        let st = self.table_state(table)?;
        let samples = self.samples.read().get(table).cloned().ok_or_else(|| {
            StorageError::InvalidQuery(format!(
                "no sample catalog for {table}; call build_samples first"
            ))
        })?;
        // Epoch before snapshot, like every cache-admitting path.
        let epoch = self.result_cache.epoch(table);
        let t = st.snapshot();
        let mut ex = BoundedExecutor::new(&t, &samples);
        if self.cache_on() {
            ex = ex.with_cache(Arc::clone(&self.result_cache), table, epoch);
        }
        if self.obs_on() {
            ex = ex.with_metrics(self.obs.metrics());
        }
        let trace = self.start_trace(table, || {
            format!("approx {func}({column}) where {predicate}")
        });
        let ctx = self.query_ctx().with_trace(trace.as_ref());
        let start = trace.as_ref().map(|t| t.now_ns());
        let ans = ex.aggregate(predicate, func, column, bound, &ctx);
        if let Some((t, start)) = trace.as_ref().zip(start) {
            if let Ok(ans) = &ans {
                t.record(
                    ROOT_SPAN,
                    SpanKind::Aqp {
                        fraction_bp: (ans.fraction_used * 10_000.0).round() as u32,
                        rows_scanned: ans.rows_scanned.min(u32::MAX as usize) as u32,
                        exact: ans.exact,
                    },
                    start,
                    t.now_ns(),
                );
            }
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        self.note_cancel(&ans);
        ans
    }

    /// A speculative range-aggregate executor over a snapshot of
    /// `table`, prefetching up to `budget` neighboring requests per
    /// call. With caching on it shares the engine's result cache, so
    /// speculatively computed aggregates are visible to
    /// [`ExploreDb::query`] and vice versa.
    pub fn speculator(&self, table: &str, budget: usize) -> Result<SpeculativeExecutor> {
        let st = self.table_state(table)?;
        // Epoch before snapshot: a mutation racing this attach leaves
        // the executor admitting under a dead epoch — refused entries,
        // never stale ones.
        let epoch = self.result_cache.epoch(table);
        let t = st.snapshot();
        let mut ex = SpeculativeExecutor::new(t, budget).with_cancel(self.session_token());
        if self.cache_on() {
            ex = ex.with_shared_cache(Arc::clone(&self.result_cache), table, epoch);
        }
        if self.obs_on() {
            ex = ex.with_metrics(self.obs.metrics());
        }
        Ok(ex)
    }

    /// Start an online aggregation whose confidence interval the caller
    /// can watch shrink. The session inherits the engine's cancel token
    /// (or a deadline token whose clock starts now), so `step`/`run_until`
    /// stop within one batch of a trigger; an `aqp.online` span and
    /// counter are recorded when observability is on.
    pub fn online_aggregate(
        &self,
        table: &str,
        predicate: &Predicate,
        func: AggFunc,
        column: &str,
        confidence: f64,
        seed: u64,
    ) -> Result<OnlineAggregation> {
        let trace = self.start_trace(table, || {
            format!("online {func}({column}) where {predicate}")
        });
        let start = trace.as_ref().map(|t| t.now_ns());
        let oa = self
            .table_state(table)
            .and_then(|st| {
                let t = st.snapshot();
                OnlineAggregation::start(&t, predicate, func, column, confidence, seed)
            })
            .map(|oa| oa.with_cancel(self.session_token()));
        if let Some((t, s)) = trace.as_ref().zip(start) {
            t.record(ROOT_SPAN, SpanKind::Stage("aqp.online"), s, t.now_ns());
            t.metrics().inc("aqp.online_sessions", 1);
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        oa
    }

    /// SeeDB: recommend the `k` most deviating views of `target` rows
    /// vs the rest of the table, using the shared-scan strategy. The
    /// shared scan checks the session cancel token and deadline every
    /// few thousand rows; a cancelled call leaves the engine serving
    /// exact truth as if it never ran.
    pub fn recommend_views(
        &self,
        table: &str,
        target: &Predicate,
        k: usize,
    ) -> Result<Vec<ScoredView>> {
        let t = self.table(table)?;
        let trace = self.start_trace(table, || format!("recommend_views(k={k})"));
        let ctx = self.query_ctx().with_trace(trace.as_ref());
        let views = candidate_views(&t, &[AggFunc::Count, AggFunc::Sum, AggFunc::Avg]);
        let mut stats = SeedbStats::default();
        let start = ctx.trace.map(|t| t.now_ns());
        let result = recommend_shared(&t, target, &views, k, &mut stats, &ctx);
        if let Some((t, s)) = ctx.trace.zip(start) {
            t.record(ROOT_SPAN, SpanKind::Stage("viz.recommend"), s, t.now_ns());
            t.metrics().inc("viz.recommendations", 1);
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        self.note_cancel(&result);
        result
    }

    /// Build (or rebuild) the AQUA-style synopsis store for a table.
    pub fn build_synopses(&self, table: &str, buckets: usize) -> Result<()> {
        let t = self.table(table)?;
        self.synopses.write().insert(
            table.to_owned(),
            Arc::new(SynopsisStore::build(&t, buckets)),
        );
        Ok(())
    }

    /// Estimate `COUNT(*) WHERE low <= column < high` from synopses
    /// alone (no base-data access). Requires `build_synopses` first.
    pub fn estimate_range_count(
        &self,
        table: &str,
        column: &str,
        low: f64,
        high: f64,
    ) -> Result<SynopsisAnswer> {
        self.estimate_with(table, |s| s.range_count(column, low, high))
    }

    /// Estimate `COUNT(*) WHERE column = value` for a string column.
    pub fn estimate_point_count(
        &self,
        table: &str,
        column: &str,
        value: &str,
    ) -> Result<SynopsisAnswer> {
        self.estimate_with(table, |s| s.point_count(column, value))
    }

    /// Estimate `COUNT(DISTINCT column)` for a string column.
    pub fn estimate_distinct(&self, table: &str, column: &str) -> Result<SynopsisAnswer> {
        self.estimate_with(table, |s| s.distinct_count(column))
    }

    /// Shared wrapper for the synopsis estimators: cancel/deadline check
    /// up front (estimates are single-step), `synopsis.estimate` span
    /// and counter when observability is on.
    fn estimate_with(
        &self,
        table: &str,
        f: impl FnOnce(&SynopsisStore) -> Result<SynopsisAnswer>,
    ) -> Result<SynopsisAnswer> {
        let ctx = self.query_ctx();
        ctx.check_cancel()?;
        let store = self.synopsis_store(table)?;
        let trace = self.start_trace(table, || "synopsis estimate".to_owned());
        let start = trace.as_ref().map(|t| t.now_ns());
        let result = f(&store);
        if let Some((t, s)) = trace.as_ref().zip(start) {
            t.record(
                ROOT_SPAN,
                SpanKind::Stage("synopsis.estimate"),
                s,
                t.now_ns(),
            );
            t.metrics().inc("synopsis.estimates", 1);
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        result
    }

    fn synopsis_store(&self, table: &str) -> Result<Arc<SynopsisStore>> {
        self.synopses.read().get(table).cloned().ok_or_else(|| {
            StorageError::InvalidQuery(format!(
                "no synopses for {table}; call build_synopses first"
            ))
        })
    }

    /// YmalDB-style facets: attribute values over-represented in the
    /// rows matching `predicate`, ranked by lift.
    pub fn facets(
        &self,
        table: &str,
        predicate: &Predicate,
        min_support: usize,
        k: usize,
    ) -> Result<Vec<explore_explore::Facet>> {
        let t = self.table(table)?;
        let trace = self.start_trace(table, || format!("facets(k={k}) where {predicate}"));
        let ctx = self.query_ctx().with_trace(trace.as_ref());
        let result = explore_exec::evaluate_selection(&t, predicate, &ctx)
            .and_then(|rows| explore_explore::faceted_recommendations(&t, &rows, min_support, k));
        if let Some(trace) = trace {
            trace.finish();
        }
        self.note_cancel(&result);
        result
    }

    /// Diversified top-k rows: relevance from a numeric column, pairwise
    /// distance over numeric feature columns, MMR with trade-off λ.
    /// Returns base-table row ids.
    pub fn diversified_topk(
        &self,
        table: &str,
        predicate: &Predicate,
        relevance_col: &str,
        feature_cols: &[&str],
        k: usize,
        lambda: f64,
    ) -> Result<Vec<u32>> {
        let t = self.table(table)?;
        let trace = self.start_trace(table, || format!("diversified_topk(k={k}, λ={lambda})"));
        let ctx = self.query_ctx().with_trace(trace.as_ref());
        let start = ctx.trace.map(|t| t.now_ns());
        let result =
            Self::diversify_rows(&t, predicate, relevance_col, feature_cols, k, lambda, &ctx);
        if let Some((t, s)) = ctx.trace.zip(start) {
            t.record(ROOT_SPAN, SpanKind::Stage("div.topk"), s, t.now_ns());
            t.metrics().inc("div.topk", 1);
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        self.note_cancel(&result);
        result
    }

    /// The selection + item construction + MMR core of
    /// [`ExploreDb::diversified_topk`].
    fn diversify_rows(
        t: &Table,
        predicate: &Predicate,
        relevance_col: &str,
        feature_cols: &[&str],
        k: usize,
        lambda: f64,
        ctx: &QueryCtx,
    ) -> Result<Vec<u32>> {
        let rows = explore_exec::evaluate_selection(t, predicate, ctx)?;
        let rel = t.column(relevance_col)?;
        let feats: Vec<&explore_storage::Column> = feature_cols
            .iter()
            .map(|c| t.column(c))
            .collect::<Result<_>>()?;
        let mut items = Vec::with_capacity(rows.len());
        for &row in &rows {
            let r = row as usize;
            let relevance = rel
                .numeric_at(r)
                .ok_or_else(|| StorageError::TypeMismatch {
                    column: relevance_col.to_owned(),
                    expected: "numeric",
                    found: rel.data_type().name(),
                })?;
            let features = feats
                .iter()
                .enumerate()
                .map(|(fi, c)| {
                    c.numeric_at(r).ok_or_else(|| StorageError::TypeMismatch {
                        column: feature_cols[fi].to_owned(),
                        expected: "numeric",
                        found: c.data_type().name(),
                    })
                })
                .collect::<Result<Vec<f64>>>()?;
            items.push(explore_diversify::Item::new(row, relevance, features));
        }
        let mut stats = explore_diversify::DivStats::default();
        explore_diversify::mmr(&items, k, lambda, &[], &mut stats, ctx)
    }

    /// VizDeck: deal the top-`k` chart proposals for a table. The
    /// deal is single-pass; the session cancel token and deadline are
    /// checked up front, and a `viz.propose` span and counter are
    /// recorded when observability is on.
    pub fn propose_charts(&self, table: &str, k: usize) -> Result<Vec<explore_viz::ChartProposal>> {
        let ctx = self.query_ctx();
        ctx.check_cancel()?;
        let t = self.table(table)?;
        let trace = self.start_trace(table, || format!("propose_charts(k={k})"));
        let start = trace.as_ref().map(|t| t.now_ns());
        let result = explore_viz::propose_charts(&t, k);
        if let Some((t, s)) = trace.as_ref().zip(start) {
            t.record(ROOT_SPAN, SpanKind::Stage("viz.propose"), s, t.now_ns());
            t.metrics().inc("viz.proposals", 1);
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        result
    }

    /// Discovery-driven cube exploration: score every cell of
    /// `SUM(measure) GROUP BY dim_a, dim_b` against the independence
    /// model. The grouped query runs through the engine's routed
    /// pipeline, so it honors caching, tracing, deadlines, the session
    /// cancel token and fail points like any other query; a
    /// `cube.discover` span and counter are recorded when observability
    /// is on.
    pub fn discover_cube(
        &self,
        table: &str,
        dim_a: &str,
        dim_b: &str,
        measure: &str,
    ) -> Result<DiscoveryView> {
        let trace = self.start_trace(table, || {
            format!("discover_cube({dim_a}, {dim_b}, {measure})")
        });
        let ctx = self.query_ctx().with_trace(trace.as_ref());
        let query = Query::new()
            .group(dim_a)
            .group(dim_b)
            .agg(AggFunc::Sum, measure);
        let start = ctx.trace.map(|t| t.now_ns());
        let result = self
            .run_routed(table, &query, &ctx)
            .and_then(|grouped| DiscoveryView::from_grouped(&grouped, dim_a, dim_b, measure));
        if let Some((t, s)) = ctx.trace.zip(start) {
            t.record(ROOT_SPAN, SpanKind::Stage("cube.discover"), s, t.now_ns());
            t.metrics().inc("cube.discoveries", 1);
        }
        if let Some(trace) = trace {
            trace.finish();
        }
        self.note_cancel(&result);
        result
    }

    /// A DICE-style speculative cube session over `table`. The session
    /// holds its own cube lattice built from a snapshot of the table; it
    /// inherits the engine's session cancel token (or a deadline token
    /// whose clock starts now), and emits `cube.*` counters into the
    /// engine's metrics registry when observability is on.
    pub fn cube_session(
        &self,
        table: &str,
        dims: &[&str],
        measure: &str,
        func: AggFunc,
        speculate: bool,
    ) -> Result<CubeSession> {
        let t = self.table(table)?;
        let cube = DataCube::new((*t).clone(), dims, measure, func)?;
        let mut session = CubeSession::new(cube, speculate).with_cancel(self.session_token());
        if self.obs_on() {
            session = session.with_metrics(Some(self.obs.metrics()));
        }
        Ok(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore_storage::csv::write_csv;
    use explore_storage::gen::{sales_table, SalesConfig};

    fn engine_with_sales(rows: usize) -> ExploreDb {
        let db = ExploreDb::new();
        db.register(
            "sales",
            sales_table(&SalesConfig {
                rows,
                ..SalesConfig::default()
            }),
        );
        db
    }

    #[test]
    fn exact_queries_route_to_memory_and_raw() {
        let t = sales_table(&SalesConfig {
            rows: 300,
            ..SalesConfig::default()
        });
        let db = ExploreDb::new();
        db.register("mem", t.clone());
        db.attach_raw(
            "raw",
            RawCsv::new(write_csv(&t), t.schema().clone()).unwrap(),
        );
        let q = Query::new()
            .filter(Predicate::eq("region", "region0"))
            .agg(AggFunc::Count, "qty");
        let a = db.query("mem", &q).unwrap();
        let b = db.query("raw", &q).unwrap();
        assert_eq!(a, b);
        assert_eq!(db.tables(), vec!["mem", "raw"]);
        assert_eq!(db.loading_progress("mem"), None);
        let (loaded, total) = db.loading_progress("raw").unwrap();
        assert_eq!(total, 6);
        assert!(loaded >= 2, "region + qty touched");
    }

    #[test]
    fn cracked_range_matches_scan_and_converges() {
        let db = engine_with_sales(5000);
        let ids = db.cracked_range("sales", "qty", 3, 7).unwrap();
        let scan = Predicate::range("qty", 3i64, 7i64)
            .evaluate(&db.table("sales").unwrap())
            .unwrap();
        let mut got = ids.clone();
        got.sort_unstable();
        assert_eq!(got, scan);
        let p1 = db.index_pieces("sales", "qty").unwrap();
        db.cracked_range("sales", "qty", 2, 5).unwrap();
        assert!(db.index_pieces("sales", "qty").unwrap() >= p1);
        assert!(db.index_pieces("sales", "price").is_none());
    }

    #[test]
    fn cracking_non_int_column_errors() {
        let db = engine_with_sales(100);
        assert!(db.cracked_range("sales", "price", 0, 1).is_err());
        assert!(db.cracked_range("nope", "qty", 0, 1).is_err());
    }

    #[test]
    fn approximate_aggregation_via_catalog() {
        let db = engine_with_sales(50_000);
        assert!(
            db.approx_aggregate(
                "sales",
                &Predicate::True,
                AggFunc::Avg,
                "price",
                Bound::RowBudget { rows: 1000 },
            )
            .is_err(),
            "needs samples first"
        );
        db.build_samples("sales", &[0.01, 0.1], &[("region", 100)], 7)
            .unwrap();
        let ans = db
            .approx_aggregate(
                "sales",
                &Predicate::True,
                AggFunc::Avg,
                "price",
                Bound::RelativeError {
                    target: 0.05,
                    confidence: 0.95,
                },
            )
            .unwrap();
        let truth = {
            let t = db.table("sales").unwrap();
            let p = t.column("price").unwrap().as_f64().unwrap();
            p.iter().sum::<f64>() / p.len() as f64
        };
        assert!((ans.interval.estimate - truth).abs() / truth < 0.1);
    }

    #[test]
    fn online_aggregation_runs() {
        let db = engine_with_sales(20_000);
        let mut oa = db
            .online_aggregate("sales", &Predicate::True, AggFunc::Avg, "price", 0.95, 3)
            .unwrap();
        let trace = oa.run_until(0.02, 500).unwrap();
        assert!(!trace.is_empty());
        assert!(trace.last().unwrap().processed < 20_000);
    }

    #[test]
    fn facets_surface_the_selected_value() {
        let db = engine_with_sales(10_000);
        let facets = db
            .facets("sales", &Predicate::eq("channel", "channel1"), 10, 5)
            .unwrap();
        let top = facets.iter().find(|f| f.column == "channel").unwrap();
        assert_eq!(top.value, "channel1");
        assert!(top.lift > 1.0);
        assert!(db.facets("nope", &Predicate::True, 1, 5).is_err());
    }

    #[test]
    fn diversified_topk_returns_distinct_rows() {
        let db = engine_with_sales(5_000);
        let ids = db
            .diversified_topk(
                "sales",
                &Predicate::True,
                "price",
                &["price", "discount", "qty"],
                10,
                0.4,
            )
            .unwrap();
        assert_eq!(ids.len(), 10);
        let set: std::collections::HashSet<u32> = ids.iter().copied().collect();
        assert_eq!(set.len(), 10);
        // λ=1 must return the plain top-k by relevance.
        let plain = db
            .diversified_topk("sales", &Predicate::True, "price", &["qty"], 5, 1.0)
            .unwrap();
        let t = db.table("sales").unwrap();
        let prices = t.column("price").unwrap().as_f64().unwrap();
        let mut by_price: Vec<u32> = (0..t.num_rows() as u32).collect();
        by_price.sort_by(|&a, &b| prices[b as usize].total_cmp(&prices[a as usize]));
        let mut a = plain.clone();
        a.sort_unstable();
        let mut b = by_price[..5].to_vec();
        b.sort_unstable();
        assert_eq!(a, b);
        // String feature columns error.
        assert!(db
            .diversified_topk("sales", &Predicate::True, "region", &["qty"], 5, 0.5)
            .is_err());
    }

    #[test]
    fn chart_proposals_rank() {
        let db = engine_with_sales(2_000);
        let deck = db.propose_charts("sales", 5).unwrap();
        assert_eq!(deck.len(), 5);
        assert!(deck.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn cached_queries_are_bit_identical_and_counted() {
        let plain = engine_with_sales(4_000);
        let cached = ExploreDb::with_cache_policy(CachePolicy::on());
        cached.register("sales", plain.table("sales").unwrap().clone());
        let q = Query::new()
            .filter(Predicate::range("price", 100.0, 600.0))
            .group("region")
            .agg(AggFunc::Sum, "price");
        let truth = plain.query("sales", &q).unwrap();
        let cold = cached.query("sales", &q).unwrap();
        let warm = cached.query("sales", &q).unwrap();
        assert_eq!(truth, cold);
        assert_eq!(truth, warm);
        let stats = cached.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        // A contained range is served by subsumption, still bit-identical.
        let narrow = Query::new()
            .filter(Predicate::range("price", 200.0, 500.0))
            .group("region")
            .agg(AggFunc::Sum, "price");
        assert_eq!(
            plain.query("sales", &narrow).unwrap(),
            cached.query("sales", &narrow).unwrap()
        );
        assert_eq!(cached.cache_stats().subsumption_hits, 1);
    }

    #[test]
    fn mutations_bump_epochs_and_invalidate() {
        let db = ExploreDb::with_cache_policy(CachePolicy::on());
        db.register(
            "sales",
            sales_table(&SalesConfig {
                rows: 2_000,
                ..SalesConfig::default()
            }),
        );
        assert_eq!(db.table_epoch("sales"), 0);
        let q = Query::new().agg(AggFunc::Sum, "qty");
        let before = db.query("sales", &q).unwrap();
        let row = db.table("sales").unwrap().row(0).unwrap();
        db.push_row("sales", row).unwrap();
        assert_eq!(db.table_epoch("sales"), 1);
        let after = db.query("sales", &q).unwrap();
        assert_ne!(before, after, "append must change SUM(qty)");
        assert!(db.cache_stats().invalidations >= 1);

        // update_where: type mismatch is rejected atomically, a real
        // update lands and bumps the epoch.
        assert!(db
            .update_where("sales", &Predicate::True, "qty", Value::from("oops"))
            .is_err());
        assert_eq!(
            db.table_epoch("sales"),
            1,
            "failed update is not a mutation"
        );
        let n = db
            .update_where(
                "sales",
                &Predicate::cmp("qty", explore_storage::CmpOp::Ge, 0i64),
                "qty",
                Value::Int(1),
            )
            .unwrap();
        assert!(n > 0);
        assert_eq!(db.table_epoch("sales"), 2);
        let uniform = db.query("sales", &q).unwrap();
        let rows = db.table("sales").unwrap().num_rows() as i64;
        assert_eq!(
            uniform.column("sum(qty)").unwrap().as_f64().unwrap()[0],
            rows as f64
        );

        // Matching zero rows mutates nothing.
        let zero = db
            .update_where(
                "sales",
                &Predicate::cmp("qty", explore_storage::CmpOp::Lt, -5i64),
                "qty",
                Value::Int(9),
            )
            .unwrap();
        assert_eq!(zero, 0);
        assert_eq!(db.table_epoch("sales"), 2);

        // Re-registering a name invalidates it; appending a table bumps.
        let copy = db.table("sales").unwrap().clone();
        db.register("sales", copy.clone());
        assert_eq!(db.table_epoch("sales"), 3);
        db.append_rows("sales", &copy).unwrap();
        assert_eq!(db.table_epoch("sales"), 4);
        assert_eq!(db.table("sales").unwrap().num_rows(), 2 * copy.num_rows());
    }

    #[test]
    fn cracking_reorganization_bumps_epoch() {
        let db = ExploreDb::with_cache_policy(CachePolicy::on());
        db.register(
            "sales",
            sales_table(&SalesConfig {
                rows: 3_000,
                ..SalesConfig::default()
            }),
        );
        let e0 = db.table_epoch("sales");
        db.cracked_range("sales", "qty", 3, 7).unwrap();
        let e1 = db.table_epoch("sales");
        assert!(e1 > e0, "first crack reorganizes");
        // A repeated identical query adds no pieces, so no bump.
        db.cracked_range("sales", "qty", 3, 7).unwrap();
        assert_eq!(db.table_epoch("sales"), e1);
        // Mutation drops the adaptive index entirely.
        let row = db.table("sales").unwrap().row(0).unwrap();
        db.push_row("sales", row).unwrap();
        assert!(db.index_pieces("sales", "qty").is_none());
    }

    #[test]
    fn cache_policy_off_keeps_epochs() {
        let db = engine_with_sales(500);
        assert!(!db.cache_policy().is_on());
        let row = db.table("sales").unwrap().row(0).unwrap();
        db.push_row("sales", row).unwrap();
        assert_eq!(db.table_epoch("sales"), 1, "epochs advance even when Off");
        db.set_cache_policy(CachePolicy::on());
        assert!(db.cache_policy().is_on());
        assert_eq!(db.table_epoch("sales"), 1);
    }

    #[test]
    fn obs_on_records_traces_and_metrics() {
        let db = ExploreDb::with_obs_policy(ObsPolicy::on());
        db.set_cache_policy(CachePolicy::on());
        db.register(
            "sales",
            sales_table(&SalesConfig {
                rows: 4_000,
                ..SalesConfig::default()
            }),
        );
        let q = Query::new()
            .filter(Predicate::range("price", 100.0, 600.0))
            .group("region")
            .agg(AggFunc::Sum, "price");
        db.query("sales", &q).unwrap(); // miss
        db.query("sales", &q).unwrap(); // exact hit
        let traces = db.recent_traces();
        assert_eq!(traces.len(), 2);
        assert!(traces.iter().all(QueryTrace::is_well_formed));
        assert_eq!(traces[0].spans_labelled("cache.miss").len(), 1);
        assert_eq!(traces[1].spans_labelled("cache.hit").len(), 1);
        assert!(
            traces[0].spans_labelled("exec").len() >= 2,
            "filter + replay"
        );
        assert!(
            traces[1].spans_labelled("exec").is_empty(),
            "hit runs nothing"
        );
        let snap = db.metrics_snapshot();
        assert_eq!(snap.counter("query.traced"), 2);
        assert_eq!(snap.counter("cache.hits"), 1);
        assert_eq!(snap.counter("cache.misses"), 1);
        assert_eq!(snap.counter("cache.insertions"), 1);
        assert_eq!(snap.histogram("query.latency_ns").unwrap().count, 2);

        // Cracking records a crack span and the reorganization counter.
        db.cracked_range("sales", "qty", 3, 7).unwrap();
        let last = db.recent_traces().pop().unwrap();
        assert_eq!(last.spans_labelled("crack").len(), 1);
        assert_eq!(db.metrics_snapshot().counter("crack.reorganizations"), 1);

        // Off again: recording stops, history is retained.
        db.set_obs_policy(ObsPolicy::Off);
        db.query("sales", &q).unwrap();
        assert_eq!(db.recent_traces().len(), 3);
        assert_eq!(db.metrics_snapshot().counter("query.traced"), 3);
    }

    #[test]
    fn obs_off_by_default_and_results_identical() {
        let plain = engine_with_sales(3_000);
        let traced = ExploreDb::with_obs_policy(ObsPolicy::on());
        traced.register("sales", plain.table("sales").unwrap().clone());
        assert!(!plain.obs_policy().is_on());
        assert!(traced.obs_policy().is_on());
        let q = Query::new()
            .filter(Predicate::cmp("qty", explore_storage::CmpOp::Ge, 5.0))
            .select(&["region", "price"])
            .order("price", explore_storage::SortOrder::Desc)
            .take(100);
        assert_eq!(
            plain.query("sales", &q).unwrap(),
            traced.query("sales", &q).unwrap()
        );
        assert!(plain.recent_traces().is_empty());
        assert_eq!(plain.metrics_snapshot().counter("query.traced"), 0);
    }

    #[test]
    fn explain_renders_a_profile_regardless_of_policy() {
        let db = engine_with_sales(2_000);
        assert!(!db.obs_policy().is_on());
        let q = Query::new()
            .filter(Predicate::range("price", 100.0, 500.0))
            .group("region")
            .agg(AggFunc::Avg, "price");
        let report = db.explain("sales", &q).unwrap();
        assert!(report.contains("total:"), "{report}");
        assert!(report.contains("exec"), "{report}");
        assert!(report.contains("morsel"), "{report}");
        // The profiled query ran for real and reflects live routing.
        db.set_cache_policy(CachePolicy::on());
        db.query("sales", &q).unwrap();
        let warm = db.explain("sales", &q).unwrap();
        assert!(warm.contains("cache lookup → hit"), "{warm}");
        // Errors surface as errors, not as reports.
        let bad = Query::new().filter(Predicate::cmp("no_such", explore_storage::CmpOp::Eq, 1.0));
        assert!(db.explain("sales", &bad).is_err());
    }

    #[test]
    fn obs_covers_aqp_and_speculation() {
        let db = ExploreDb::with_obs_policy(ObsPolicy::on());
        db.register(
            "sales",
            sales_table(&SalesConfig {
                rows: 20_000,
                ..SalesConfig::default()
            }),
        );
        db.build_samples("sales", &[0.01, 0.1], &[], 7).unwrap();
        db.approx_aggregate(
            "sales",
            &Predicate::True,
            AggFunc::Avg,
            "price",
            Bound::RowBudget { rows: 2_500 },
        )
        .unwrap();
        let trace = db.recent_traces().pop().unwrap();
        assert_eq!(trace.spans_labelled("aqp").len(), 1);
        let snap = db.metrics_snapshot();
        assert_eq!(snap.counter("aqp.answers"), 1);

        let spec = db.speculator("sales", 2).unwrap();
        spec.execute(&explore_prefetch::RangeRequest {
            column: "qty".into(),
            low: 2,
            high: 5,
            func: AggFunc::Sum,
            measure: "price".into(),
        })
        .unwrap();
        let snap = db.metrics_snapshot();
        assert_eq!(snap.counter("prefetch.misses"), 1);
        assert_eq!(snap.counter("prefetch.speculative_runs"), 2);
    }

    #[test]
    fn sharded_engine_is_bitwise_and_observable() {
        use explore_shard::{ShardConfig, ShardPolicy};
        let plain = engine_with_sales(5_000);
        let db = ExploreDb::with_shard_policy(ShardPolicy::On(ShardConfig {
            count: 4,
            min_rows_per_shard: 1,
        }));
        assert!(db.shard_policy().is_on());
        db.register("sales", plain.table("sales").unwrap().clone());
        for q in [
            Query::new()
                .filter(Predicate::range("price", 100.0, 600.0))
                .group("region")
                .agg(AggFunc::Sum, "price"),
            Query::new()
                .filter(Predicate::eq("channel", "channel1"))
                .select(&["region", "price"])
                .order("price", explore_storage::SortOrder::Desc)
                .take(50),
        ] {
            assert_eq!(
                plain.query("sales", &q).unwrap(),
                db.query("sales", &q).unwrap()
            );
        }
        let stats = db.shard_stats("sales").unwrap();
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.iter().map(|s| s.rows).sum::<usize>(), 5_000);
        assert!(plain.shard_stats("sales").is_none());

        // Cracking routes per shard and still matches a scan.
        let ids = db.cracked_range("sales", "qty", 3, 7).unwrap();
        let mut got = ids.clone();
        got.sort_unstable();
        let want = Predicate::range("qty", 3i64, 7i64)
            .evaluate(&plain.table("sales").unwrap())
            .unwrap();
        assert_eq!(got, want);
        assert!(db.index_pieces("sales", "qty").unwrap() >= 4);

        // Turning the policy off drops the mirrors; answers unchanged.
        db.set_shard_policy(ShardPolicy::Off);
        assert!(db.shard_stats("sales").is_none());
        let q = Query::new().agg(AggFunc::Sum, "qty");
        assert_eq!(
            plain.query("sales", &q).unwrap(),
            db.query("sales", &q).unwrap()
        );
    }

    #[test]
    fn shard_mutations_bump_only_the_owning_scope() {
        use explore_shard::{scoped_name, ShardConfig, ShardPolicy};
        let db = ExploreDb::with_shard_policy(ShardPolicy::On(ShardConfig {
            count: 4,
            min_rows_per_shard: 1,
        }));
        db.set_cache_policy(CachePolicy::on());
        db.register(
            "sales",
            sales_table(&SalesConfig {
                rows: 2_000,
                ..SalesConfig::default()
            }),
        );
        let before: Vec<u64> = (0..4)
            .map(|s| db.table_epoch(&scoped_name("sales", s)))
            .collect();
        let base = db.table_epoch("sales");

        // push_row appends to the last shard: only scope 3 bumps.
        let row = db.table("sales").unwrap().row(0).unwrap();
        db.push_row("sales", row).unwrap();
        assert_eq!(db.table_epoch("sales"), base + 1);
        for (s, &epoch) in before.iter().enumerate().take(3) {
            assert_eq!(db.table_epoch(&scoped_name("sales", s)), epoch);
        }
        assert_eq!(db.table_epoch(&scoped_name("sales", 3)), before[3] + 1);

        // The sharded mirror stays in sync with the canonical table.
        let q = Query::new().agg(AggFunc::Count, "qty");
        let n = db.query("sales", &q).unwrap();
        assert_eq!(
            n.column("count(qty)").unwrap().as_f64().unwrap()[0],
            2_001.0
        );

        // An external-channel mutation is conservative: every scope bumps.
        db.note_mutation("sales");
        for (s, &epoch) in before.iter().enumerate() {
            assert!(db.table_epoch(&scoped_name("sales", s)) > epoch);
        }
    }

    #[test]
    fn view_recommendation_returns_ranked_views() {
        let db = engine_with_sales(10_000);
        let views = db
            .recommend_views("sales", &Predicate::eq("product", "product0"), 5)
            .unwrap();
        assert_eq!(views.len(), 5);
        assert!(views.windows(2).all(|w| w[0].utility >= w[1].utility));
    }
}
