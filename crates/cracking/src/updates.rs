//! Updating a cracked database (Idreos, Kersten, Manegold — SIGMOD'10).
//!
//! Updates threaten adaptive indexes: naively rebuilding throws away all
//! accumulated cracking work. The paper's *ripple* technique instead
//! inserts a pending value into its target piece by shifting exactly one
//! element per affected piece boundary — O(#boundaries) work per insert,
//! leaving the cracker index valid. Deletes are handled with tombstones
//! that queries filter out.
//!
//! Merging is *adaptive and lazy*: pending values sit in a small buffer
//! and are only rippled in when a query actually touches their value
//! range (merge-gradually), so update cost is paid exactly where readers
//! look — the same workload-driven philosophy as cracking itself.

use std::collections::HashSet;

use crate::cracker::CrackerColumn;

/// A cracked column that absorbs inserts and deletes adaptively.
#[derive(Debug, Clone)]
pub struct UpdatableCracker {
    column: CrackerColumn,
    /// Pending inserts: (value, assigned row id), not yet visible to the
    /// physical column but visible to queries.
    pending: Vec<(i64, u32)>,
    /// Tombstoned row ids (logical deletes).
    deleted: HashSet<u32>,
    /// Next fresh row id for inserts.
    next_id: u32,
    /// Total elements shifted by ripple merges (work metric).
    ripple_moves: u64,
}

impl UpdatableCracker {
    /// Build over a base column.
    pub fn new(values: Vec<i64>) -> Self {
        let next_id = values.len() as u32;
        UpdatableCracker {
            column: CrackerColumn::new(values),
            pending: Vec::new(),
            deleted: HashSet::new(),
            next_id,
            ripple_moves: 0,
        }
    }

    /// The underlying cracker (after pending merges so far).
    pub fn column(&self) -> &CrackerColumn {
        &self.column
    }

    /// Number of inserts awaiting merge.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Total elements moved by ripple merges so far.
    pub fn ripple_moves(&self) -> u64 {
        self.ripple_moves
    }

    /// Queue an insert; returns the new value's row id. Cost is O(1) now;
    /// the physical merge happens when a query touches the value.
    pub fn insert(&mut self, value: i64) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push((value, id));
        id
    }

    /// Logically delete a row id (from the base column or an insert).
    pub fn delete(&mut self, row_id: u32) {
        // A pending insert can be deleted before it ever merges.
        if let Some(pos) = self.pending.iter().position(|&(_, id)| id == row_id) {
            self.pending.swap_remove(pos);
        } else {
            self.deleted.insert(row_id);
        }
    }

    /// Answer `low <= v < high`, merging any pending inserts that fall in
    /// the queried range first, and filtering tombstones.
    pub fn query_ids(&mut self, low: i64, high: i64) -> Vec<u32> {
        if low >= high {
            return Vec::new();
        }
        self.merge_range(low, high);
        let (s, e) = self.column.query(low, high);
        self.column.ids()[s..e]
            .iter()
            .copied()
            .filter(|id| !self.deleted.contains(id))
            .collect()
    }

    /// Count of live qualifying values.
    pub fn query_count(&mut self, low: i64, high: i64) -> usize {
        self.query_ids(low, high).len()
    }

    /// Ripple-merge every pending insert whose value lies in `[low, high)`.
    fn merge_range(&mut self, low: i64, high: i64) {
        let mut i = 0;
        while i < self.pending.len() {
            let (v, _) = self.pending[i];
            if v >= low && v < high {
                let (v, id) = self.pending.swap_remove(i);
                self.ripple_insert(v, id);
            } else {
                i += 1;
            }
        }
    }

    /// Physically insert one value into its piece by rippling: grow the
    /// column by one slot at the end, then for each boundary above the
    /// value (highest first) move that boundary's first element into the
    /// free slot and advance the boundary — one move per piece.
    fn ripple_insert(&mut self, value: i64, id: u32) {
        // Work directly on the cracker's internals via its public crack
        // API would re-partition; instead we re-build the minimal state:
        // collect boundaries above `value`, shift them.
        let boundaries: Vec<(i64, usize)> = self
            .column
            .boundaries_above(value)
            .into_iter()
            .rev() // highest boundary first
            .collect();
        self.column.push_raw(value, id);
        let mut free = self.column.len() - 1;
        for (bv, pos) in boundaries {
            // Move the first element of the piece starting at `pos` into
            // the free slot; its old slot becomes free; boundary moves +1.
            if pos < free {
                self.column.swap_raw(pos, free);
                self.ripple_moves += 1;
                free = pos;
            }
            self.column.shift_boundary(bv, pos + 1);
        }
        // `free` now sits inside the piece that should contain `value`;
        // the value we pushed is already there after the swaps.
        self.column.place_raw(free, value, id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore_storage::gen::uniform_i64;
    use explore_storage::rng::SplitMix64;

    /// Model: a plain multiset of (value, id) pairs.
    #[derive(Default)]
    struct Model {
        live: Vec<(i64, u32)>,
    }

    impl Model {
        fn query(&self, low: i64, high: i64) -> Vec<u32> {
            let mut ids: Vec<u32> = self
                .live
                .iter()
                .filter(|&&(v, _)| v >= low && v < high)
                .map(|&(_, id)| id)
                .collect();
            ids.sort_unstable();
            ids
        }
    }

    #[test]
    fn inserts_become_visible_to_queries() {
        let mut c = UpdatableCracker::new(uniform_i64(1000, 0, 100, 1));
        c.query_ids(20, 40); // crack a bit first
        let id = c.insert(25);
        let got = c.query_ids(20, 40);
        assert!(got.contains(&id));
        assert!(c.column().check_invariants());
    }

    #[test]
    fn deletes_hide_rows() {
        let base = vec![10, 20, 30, 40, 50];
        let mut c = UpdatableCracker::new(base);
        c.delete(2); // value 30
        let got = c.query_ids(0, 100);
        assert_eq!(got.len(), 4);
        assert!(!got.contains(&2));
    }

    #[test]
    fn delete_pending_insert_before_merge() {
        let mut c = UpdatableCracker::new(vec![1, 2, 3]);
        let id = c.insert(10);
        c.delete(id);
        assert_eq!(c.pending_len(), 0);
        assert!(!c.query_ids(0, 100).contains(&id));
    }

    #[test]
    fn merge_is_lazy_and_range_scoped() {
        let mut c = UpdatableCracker::new(uniform_i64(1000, 0, 100, 2));
        c.query_ids(0, 100); // crack
        c.insert(10);
        c.insert(90);
        assert_eq!(c.pending_len(), 2);
        c.query_ids(0, 20); // touches only value 10
        assert_eq!(c.pending_len(), 1);
        c.query_ids(80, 100);
        assert_eq!(c.pending_len(), 0);
    }

    #[test]
    fn randomized_against_model() {
        let mut rng = SplitMix64::new(3);
        let base = uniform_i64(2000, 0, 500, 4);
        let mut model = Model {
            live: base
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i as u32))
                .collect(),
        };
        let mut c = UpdatableCracker::new(base);
        for step in 0..400 {
            match rng.below(10) {
                0..=3 => {
                    let v = rng.range_i64(0, 500);
                    let id = c.insert(v);
                    model.live.push((v, id));
                }
                4..=5 => {
                    if !model.live.is_empty() {
                        let k = rng.below(model.live.len() as u64) as usize;
                        let (_, id) = model.live.swap_remove(k);
                        c.delete(id);
                    }
                }
                _ => {
                    let a = rng.range_i64(0, 500);
                    let b = rng.range_i64(0, 500);
                    let (lo, hi) = (a.min(b), a.max(b) + 1);
                    let mut got = c.query_ids(lo, hi);
                    got.sort_unstable();
                    assert_eq!(got, model.query(lo, hi), "step {step} range {lo}..{hi}");
                }
            }
        }
        assert!(c.column().check_invariants());
    }

    #[test]
    fn ripple_work_scales_with_boundaries_not_size() {
        let n = 100_000;
        let mut c = UpdatableCracker::new(uniform_i64(n, 0, n as i64, 5));
        // Crack into ~8 pieces.
        for q in 0..4 {
            let lo = (q * 20_000) as i64;
            c.query_ids(lo, lo + 10_000);
        }
        let before = c.ripple_moves();
        c.insert(5);
        c.query_ids(0, 10); // forces the merge
        let moves = c.ripple_moves() - before;
        assert!(moves <= 16, "ripple moved {moves} elements");
    }
}
