//! Semantic result-cache benches: a fixed exploration workload replayed
//! against the engine with the cache off, cold (first touch), and warm
//! (every query an exact hit). The warm/cold spread is the headline
//! number — a warm session should be well over 5× faster than computing
//! the same answers from base data. A second group times the
//! subsumption path: fresh contained ranges answered by re-filtering a
//! cached superset selection instead of scanning the base table.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::cell::Cell;
use std::hint::black_box;

use explore_core::cache::{CacheConfig, CachePolicy};
use explore_core::storage::gen::{sales_table, SalesConfig};
use explore_core::storage::{AggFunc, CmpOp, Predicate, Query, SortOrder, Table};
use explore_core::ExploreDb;

fn sales_100k() -> Table {
    sales_table(&SalesConfig {
        rows: 100_000,
        ..SalesConfig::default()
    })
}

/// A budget roomy enough that the workload never evicts; eviction cost
/// is not what these benches measure.
fn roomy_policy() -> CachePolicy {
    CachePolicy::On(CacheConfig {
        byte_budget: 1 << 30,
        ..CacheConfig::default()
    })
}

/// An exploration-session workload: overlapping range scans, grouped and
/// global aggregates, and a top-k — the query mix a dashboard replays on
/// every refresh.
fn workload() -> Vec<Query> {
    vec![
        Query::new()
            .group("region")
            .agg(AggFunc::Sum, "price")
            .agg(AggFunc::Count, "qty"),
        Query::new()
            .filter(Predicate::range("price", 50.0, 900.0))
            .group("product")
            .agg(AggFunc::Avg, "price"),
        Query::new()
            .filter(Predicate::range("price", 100.0, 600.0))
            .agg(AggFunc::Sum, "price")
            .agg(AggFunc::Avg, "discount"),
        Query::new()
            .filter(Predicate::range("price", 200.0, 400.0))
            .group("region")
            .agg(AggFunc::Sum, "price"),
        Query::new()
            .agg(AggFunc::Count, "qty")
            .agg(AggFunc::Sum, "price")
            .agg(AggFunc::Avg, "price")
            .agg(AggFunc::Var, "price")
            .agg(AggFunc::Std, "price"),
        Query::new()
            .filter(Predicate::cmp("qty", CmpOp::Ge, 5.0))
            .group("channel")
            .agg(AggFunc::Avg, "price"),
        Query::new()
            .filter(Predicate::range("price", 50.0, 800.0))
            .select(&["product", "price"])
            .order("price", SortOrder::Desc)
            .take(50),
        Query::new()
            .filter(Predicate::eq("channel", "channel1"))
            .agg(AggFunc::Avg, "price"),
        Query::new()
            .filter(Predicate::range("price", 150.0, 500.0).and(Predicate::cmp(
                "qty",
                CmpOp::Ge,
                2.0,
            )))
            .group("region")
            .agg(AggFunc::Avg, "qty"),
        Query::new()
            .filter(Predicate::range("price", 0.0, 1000.0))
            .agg(AggFunc::Sum, "qty"),
    ]
}

/// Run every workload query; fold row counts so nothing is optimized
/// away.
fn run_workload(db: &mut ExploreDb, queries: &[Query]) -> usize {
    queries
        .iter()
        .map(|q| db.query("sales", q).expect("workload query").num_rows())
        .sum()
}

fn bench_cache_workload(c: &mut Criterion) {
    let t = sales_100k();
    let queries = workload();

    let mut group = c.benchmark_group("cache_workload");
    group.sample_size(10);
    group.bench_function("off", |b| {
        // Fresh engine per sample, same harness as `on_cold`, so the
        // off/cold comparison isolates cache bookkeeping instead of
        // allocator warm-up differences between the two loops.
        b.iter_batched(
            || {
                let db = ExploreDb::new();
                db.register("sales", t.clone());
                db
            },
            |mut db| black_box(run_workload(&mut db, &queries)),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("on_cold", |b| {
        // Fresh engine per sample: every query computes and is admitted.
        b.iter_batched(
            || {
                let db = ExploreDb::with_cache_policy(roomy_policy());
                db.register("sales", t.clone());
                db
            },
            |mut db| black_box(run_workload(&mut db, &queries)),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("on_warm", |b| {
        // Warmed once in setup: every timed query is an exact hit.
        let mut db = ExploreDb::with_cache_policy(roomy_policy());
        db.register("sales", t.clone());
        run_workload(&mut db, &queries);
        b.iter(|| black_box(run_workload(&mut db, &queries)))
    });
    group.finish();

    // Record the warm pass's exact-hit rate into the JSON so perf
    // trajectories can confirm the warm timing really measured cache
    // serves.
    let mut db = ExploreDb::with_cache_policy(roomy_policy());
    db.register("sales", t.clone());
    run_workload(&mut db, &queries);
    let before = db.cache_stats();
    run_workload(&mut db, &queries);
    let after = db.cache_stats();
    let served = after.hits - before.hits;
    let pct = 100.0 * served as f64 / queries.len() as f64;
    eprintln!(
        "cache_workload warm pass: {served}/{} exact hits ({after:?})",
        queries.len()
    );
    let mut stats_group = c.benchmark_group("cache_stats");
    stats_group.record_value("warm_exact_hit_rate_pct", pct, "percent");
    stats_group.finish();

    // Cold-overhead ratio as a gate-checkable value record: cache-off /
    // cache-on-cold wall time × 100, higher is better, parity = 100.
    // Cost-aware admission and artifact gating exist precisely so a
    // never-repeating workload pays (almost) nothing for having the
    // cache on; this record holds that property in CI.
    let samples = std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5usize)
        .max(2);
    let best = |policy: CachePolicy| {
        (0..samples)
            .map(|_| {
                let mut db = ExploreDb::with_cache_policy(policy.clone());
                db.register("sales", t.clone());
                let start = std::time::Instant::now();
                black_box(run_workload(&mut db, &queries));
                start.elapsed().as_nanos()
            })
            .min()
            .unwrap()
    };
    let off_ns = best(CachePolicy::Off);
    let cold_ns = best(roomy_policy());
    let ratio_pct = 100.0 * off_ns as f64 / cold_ns.max(1) as f64;
    let mut ratio_group = c.benchmark_group("cache_overhead");
    ratio_group.record_value("off_vs_on_cold", ratio_pct, "percent");
    ratio_group.finish();
}

/// Subsumption serving: each sample asks a *previously unseen* contained
/// range (bounds shift every iteration), so a warm engine can never
/// exact-hit — it must re-filter the cached superset selection. Compared
/// against the same shifting ranges computed from base data. The seeded
/// superset is selective (a drilled-into region), which is the regime
/// subsumption targets: on a large base table, re-filtering a small
/// cached subset beats re-scanning every base row.
fn bench_cache_subsumption(c: &mut Criterion) {
    let t = sales_table(&SalesConfig {
        rows: 1_000_000,
        ..SalesConfig::default()
    });
    // A drill-down refinement: a fresh contained price range each time,
    // minus one sales channel. The negated conjunct has no exact region,
    // so served results stay exact-hit-only (no artifact gather) — the
    // timing isolates the re-filter serve itself.
    let shifted = |i: u64| {
        let d = (i % 30) as f64 / 2.0;
        Query::new()
            .filter(
                Predicate::range("price", 484.0 + d, 516.0 - d)
                    .and(Predicate::eq("channel", "channel0").not()),
            )
            .agg(AggFunc::Sum, "price")
            .agg(AggFunc::Count, "qty")
    };

    let mut group = c.benchmark_group("cache_subsumption");
    group.sample_size(10);
    group.bench_function("fresh_ranges_uncached", |b| {
        let db = ExploreDb::new();
        db.register("sales", t.clone());
        let i = Cell::new(0u64);
        b.iter(|| {
            i.set(i.get() + 1);
            black_box(
                db.query("sales", &shifted(i.get()))
                    .expect("scan")
                    .num_rows(),
            )
        })
    });
    group.bench_function("fresh_ranges_subsumed", |b| {
        let db = ExploreDb::with_cache_policy(roomy_policy());
        db.register("sales", t.clone());
        // Seed the covering superset whose selection artifact serves
        // every shifted range.
        db.query(
            "sales",
            &Query::new().filter(Predicate::range("price", 480.0, 520.0)),
        )
        .expect("seed");
        let i = Cell::new(0u64);
        b.iter(|| {
            i.set(i.get() + 1);
            black_box(
                db.query("sales", &shifted(i.get()))
                    .expect("serve")
                    .num_rows(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cache_workload, bench_cache_subsumption);
criterion_main!(benches);
