//! Serving-layer configuration.

use std::time::Duration;

/// Everything that shapes the scheduler: worker count, admission bound,
/// the fairness quantum, and how often in-query boundaries yield the OS
/// thread.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the run queue. The engine's query path
    /// is `&self` (per-table internal locks, no global lock), so workers
    /// execute queries genuinely concurrently — read-heavy sessions
    /// scale with workers up to the core count, on top of the in-query
    /// parallelism from the exec pool. Small values (≤ core count) are
    /// the intended regime — the point of the layer is sessions ≫
    /// workers.
    pub workers: usize,
    /// Admission bound: `submit` returns a typed
    /// [`Overloaded`](explore_storage::StorageError::Overloaded) error
    /// once this many tasks are queued (in-flight tasks don't count).
    pub queue_limit: usize,
    /// Fairness quantum. A session's accumulated service time is divided
    /// by this to produce its priority bucket: sessions that have
    /// consumed more whole quanta sort behind lighter ones, so a heavy
    /// session can never starve light ones of dispatch slots.
    pub quantum: Duration,
    /// Cooperative-yield stride: every `yield_every`-th
    /// `check_cancel` boundary inside a scheduled query calls
    /// `thread::yield_now()`, letting same-core neighbors (pan sessions,
    /// submitters) make progress under load. `0` disables in-query
    /// yielding without disabling quantum accounting.
    pub yield_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_limit: 256,
            quantum: Duration::from_millis(1),
            yield_every: 64,
        }
    }
}

impl ServeConfig {
    /// A config with a given worker count, other knobs default.
    pub fn with_workers(workers: usize) -> ServeConfig {
        ServeConfig {
            workers,
            ..ServeConfig::default()
        }
    }

    /// Set the admission bound.
    pub fn with_queue_limit(mut self, limit: usize) -> ServeConfig {
        self.queue_limit = limit;
        self
    }

    /// Set the fairness quantum.
    pub fn with_quantum(mut self, quantum: Duration) -> ServeConfig {
        self.quantum = quantum;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_limit >= 1);
        assert!(!c.quantum.is_zero());
    }

    #[test]
    fn builders_compose() {
        let c = ServeConfig::with_workers(2)
            .with_queue_limit(8)
            .with_quantum(Duration::from_micros(100));
        assert_eq!(c.workers, 2);
        assert_eq!(c.queue_limit, 8);
        assert_eq!(c.quantum, Duration::from_micros(100));
    }
}
