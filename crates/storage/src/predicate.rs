//! Filter predicates and their vectorized evaluation.
//!
//! Predicates are small ASTs built at the API edge; evaluation produces a
//! *selection vector* of qualifying row ids. Evaluation is column-at-a-time:
//! each comparison matches on the column type once and then runs a tight
//! loop over the raw slice.

use std::cell::RefCell;
use std::fmt;
use std::ops::Range;

use crate::column::Column;
use crate::error::{Result, StorageError};
use crate::table::Table;
use crate::value::Value;

thread_local! {
    /// Reusable word buffers for the vectorized evaluation path. One
    /// pool per thread means each executor worker keeps its own bitmap
    /// scratch hot across morsels, with zero cross-thread contention.
    static BIT_SCRATCH: RefCell<WordPool> = RefCell::new(WordPool::default());
}

/// A free-list of `u64` bitmap buffers, recycled across predicate
/// nodes and across morsels on the same thread.
#[derive(Debug, Default)]
struct WordPool {
    free: Vec<Vec<u64>>,
}

impl WordPool {
    fn take(&mut self, words: usize) -> Vec<u64> {
        let mut buf = self.free.pop().unwrap_or_default();
        buf.clear();
        buf.resize(words, 0);
        buf
    }

    fn give(&mut self, buf: Vec<u64>) {
        self.free.push(buf);
    }
}

/// Comparison operators supported in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Apply the operator to an `Ordering`-like comparison of `a` vs `b`.
    #[inline]
    fn holds<T: PartialOrd>(self, a: &T, b: &T) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// A boolean filter over table rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Matches every row.
    True,
    /// `column <op> literal`.
    Cmp {
        column: String,
        op: CmpOp,
        value: Value,
    },
    /// `low <= column < high` — the canonical exploratory range query
    /// shape used throughout the cracking literature (half-open).
    Range {
        column: String,
        low: Value,
        high: Value,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column = value`.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Cmp {
            column: column.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// `column <op> value`.
    pub fn cmp(column: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        Predicate::Cmp {
            column: column.into(),
            op,
            value: value.into(),
        }
    }

    /// `low <= column < high`.
    pub fn range(column: impl Into<String>, low: impl Into<Value>, high: impl Into<Value>) -> Self {
        Predicate::Range {
            column: column.into(),
            low: low.into(),
            high: high.into(),
        }
    }

    /// Conjunction of two predicates, flattening nested `And`s.
    pub fn and(self, other: Predicate) -> Self {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::And(mut a), Predicate::And(b)) => {
                a.extend(b);
                Predicate::And(a)
            }
            (Predicate::And(mut a), p) => {
                a.push(p);
                Predicate::And(a)
            }
            (p, Predicate::And(mut b)) => {
                b.insert(0, p);
                Predicate::And(b)
            }
            (a, b) => Predicate::And(vec![a, b]),
        }
    }

    /// Disjunction of two predicates.
    pub fn or(self, other: Predicate) -> Self {
        match (self, other) {
            (Predicate::Or(mut a), p) => {
                a.push(p);
                Predicate::Or(a)
            }
            (a, b) => Predicate::Or(vec![a, b]),
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Names of all columns this predicate touches, deduplicated.
    /// Used by the adaptive-loading and adaptive-storage layers to
    /// decide which columns a query actually needs.
    pub fn columns(&self) -> Vec<&str> {
        fn walk<'a>(p: &'a Predicate, out: &mut Vec<&'a str>) {
            match p {
                Predicate::True => {}
                Predicate::Cmp { column, .. } | Predicate::Range { column, .. } => {
                    if !out.contains(&column.as_str()) {
                        out.push(column);
                    }
                }
                Predicate::And(ps) | Predicate::Or(ps) => ps.iter().for_each(|p| walk(p, out)),
                Predicate::Not(p) => walk(p, out),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Evaluate against a table, returning the qualifying row ids in
    /// ascending order.
    pub fn evaluate(&self, table: &Table) -> Result<Vec<u32>> {
        let mask = self.evaluate_mask(table)?;
        Ok(mask_to_sel(&mask))
    }

    /// Evaluate to a dense boolean mask (one bool per row).
    pub fn evaluate_mask(&self, table: &Table) -> Result<Vec<bool>> {
        self.evaluate_mask_range(table, 0..table.num_rows())
    }

    /// Evaluate on the row window `rows`, returning qualifying *global*
    /// row ids in ascending order. The morsel-driven executor fans this
    /// out: each worker scans one window and the per-window selections
    /// concatenate, in window order, to exactly [`Predicate::evaluate`].
    ///
    /// This is the vectorized hot path: each node fills a `u64` bitmap
    /// (64 rows per word, branchless per element), combinators fold
    /// word-wise, and the final bitmap converts to row ids via
    /// `trailing_zeros`. Bitmap buffers come from a thread-local pool,
    /// so a worker re-running this per morsel allocates nothing after
    /// warm-up. [`Predicate::evaluate_mask_range`] remains the scalar
    /// reference the differential suites compare against; both paths
    /// share literal resolution and `CmpOp::holds`, so results —
    /// including NaN comparisons and error precedence — are identical.
    pub fn evaluate_range(&self, table: &Table, rows: Range<usize>) -> Result<Vec<u32>> {
        if rows.end > table.num_rows() || rows.start > rows.end {
            return Err(StorageError::RowOutOfBounds {
                index: rows.end,
                len: table.num_rows(),
            });
        }
        let start = rows.start;
        let words = rows.len().div_ceil(64);
        BIT_SCRATCH.with(|scratch| {
            let pool = &mut *scratch.borrow_mut();
            let mut bits = pool.take(words);
            let result = self
                .eval_bits(table, rows, &mut bits, pool)
                .map(|()| bits_to_sel(&bits, start));
            pool.give(bits);
            result
        })
    }

    /// Fill `out` (one bit per row in `rows`, LSB-first within each
    /// word) with the predicate's truth values. Every arm writes every
    /// word, and all arms keep bits past the window clear, so callers
    /// never mask the tail. Child evaluation order (and therefore error
    /// precedence) matches [`Predicate::evaluate_mask_range`] exactly.
    fn eval_bits(
        &self,
        table: &Table,
        rows: Range<usize>,
        out: &mut [u64],
        pool: &mut WordPool,
    ) -> Result<()> {
        let n = rows.len();
        match self {
            Predicate::True => {
                set_all_bits(out, n);
                Ok(())
            }
            Predicate::Cmp { column, op, value } => {
                cmp_bits(table.column(column)?, column, *op, value, rows, out)
            }
            Predicate::Range { column, low, high } => {
                range_bits(table.column(column)?, column, low, high, rows, out)
            }
            Predicate::And(ps) => {
                set_all_bits(out, n);
                let mut tmp = pool.take(out.len());
                let mut result = Ok(());
                for p in ps {
                    result = p.eval_bits(table, rows.clone(), &mut tmp, pool);
                    if result.is_err() {
                        break;
                    }
                    for (a, b) in out.iter_mut().zip(&tmp) {
                        *a &= *b;
                    }
                }
                pool.give(tmp);
                result
            }
            Predicate::Or(ps) => {
                out.fill(0);
                let mut tmp = pool.take(out.len());
                let mut result = Ok(());
                for p in ps {
                    result = p.eval_bits(table, rows.clone(), &mut tmp, pool);
                    if result.is_err() {
                        break;
                    }
                    for (a, b) in out.iter_mut().zip(&tmp) {
                        *a |= *b;
                    }
                }
                pool.give(tmp);
                result
            }
            Predicate::Not(p) => {
                p.eval_bits(table, rows, out, pool)?;
                for w in out.iter_mut() {
                    *w = !*w;
                }
                mask_tail_bits(out, n);
                Ok(())
            }
        }
    }

    /// Evaluate to a dense boolean mask over the row window `rows`
    /// (`mask[i]` corresponds to table row `rows.start + i`). Each
    /// comparison slices the column once, so a window scan touches only
    /// its own rows.
    pub fn evaluate_mask_range(&self, table: &Table, rows: Range<usize>) -> Result<Vec<bool>> {
        if rows.end > table.num_rows() || rows.start > rows.end {
            return Err(StorageError::RowOutOfBounds {
                index: rows.end,
                len: table.num_rows(),
            });
        }
        let n = rows.len();
        match self {
            Predicate::True => Ok(vec![true; n]),
            Predicate::Cmp { column, op, value } => {
                cmp_mask(table.column(column)?, column, *op, value, rows)
            }
            Predicate::Range { column, low, high } => {
                range_mask(table.column(column)?, column, low, high, rows)
            }
            Predicate::And(ps) => {
                let mut acc = vec![true; n];
                for p in ps {
                    let m = p.evaluate_mask_range(table, rows.clone())?;
                    for (a, b) in acc.iter_mut().zip(&m) {
                        *a &= *b;
                    }
                }
                Ok(acc)
            }
            Predicate::Or(ps) => {
                let mut acc = vec![false; n];
                for p in ps {
                    let m = p.evaluate_mask_range(table, rows.clone())?;
                    for (a, b) in acc.iter_mut().zip(&m) {
                        *a |= *b;
                    }
                }
                Ok(acc)
            }
            Predicate::Not(p) => {
                let mut m = p.evaluate_mask_range(table, rows)?;
                m.iter_mut().for_each(|b| *b = !*b);
                Ok(m)
            }
        }
    }

    /// Evaluate the predicate against a single row expressed as dynamic
    /// values aligned with the table schema. Used by the user-interaction
    /// layer (labeling oracles, query-by-output verification) where row
    /// counts are tiny.
    pub fn matches_row(&self, table: &Table, row: usize) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Cmp { column, op, value } => {
                let v = table.column(column)?.value(row)?;
                Ok(value_cmp(&v, *op, value))
            }
            Predicate::Range { column, low, high } => {
                let v = table.column(column)?.value(row)?;
                Ok(value_cmp(&v, CmpOp::Ge, low) && value_cmp(&v, CmpOp::Lt, high))
            }
            Predicate::And(ps) => {
                for p in ps {
                    if !p.matches_row(table, row)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Predicate::Or(ps) => {
                for p in ps {
                    if p.matches_row(table, row)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Predicate::Not(p) => Ok(!p.matches_row(table, row)?),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// SQL-ish rendering, for `explain` profiles and trace labels. Child
/// predicates of `And`/`Or` are parenthesized unconditionally, so the
/// output is unambiguous without precedence rules.
impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => f.write_str("true"),
            Predicate::Cmp { column, op, value } => write!(f, "{column} {op} {value}"),
            Predicate::Range { column, low, high } => {
                write!(f, "{low} <= {column} < {high}")
            }
            Predicate::And(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" and ")?;
                    }
                    write!(f, "({p})")?;
                }
                Ok(())
            }
            Predicate::Or(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" or ")?;
                    }
                    write!(f, "({p})")?;
                }
                Ok(())
            }
            Predicate::Not(p) => write!(f, "not ({p})"),
        }
    }
}

/// Convert a boolean mask to a selection vector.
pub fn mask_to_sel(mask: &[bool]) -> Vec<u32> {
    mask.iter()
        .enumerate()
        .filter_map(|(i, &b)| b.then_some(i as u32))
        .collect()
}

fn value_cmp(a: &Value, op: CmpOp, b: &Value) -> bool {
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => op.holds(x, y),
        _ => match (a.as_float(), b.as_float()) {
            (Some(x), Some(y)) => op.holds(&x, &y),
            _ => false,
        },
    }
}

fn cmp_mask(
    col: &Column,
    name: &str,
    op: CmpOp,
    value: &Value,
    rows: Range<usize>,
) -> Result<Vec<bool>> {
    match col {
        Column::Int64(v) => {
            let lit = value.as_int().or_else(|| {
                // Allow float literals against int columns only when exact.
                value.as_float().and_then(|f| {
                    let i = f as i64;
                    (i as f64 == f).then_some(i)
                })
            });
            let lit = lit.ok_or_else(|| type_err(name, "Int64", value))?;
            Ok(v[rows].iter().map(|x| op.holds(x, &lit)).collect())
        }
        Column::Float64(v) => {
            let lit = value
                .as_float()
                .ok_or_else(|| type_err(name, "Float64", value))?;
            Ok(v[rows].iter().map(|x| op.holds(x, &lit)).collect())
        }
        Column::Utf8(v) => {
            let lit = value
                .as_str()
                .ok_or_else(|| type_err(name, "Utf8", value))?;
            Ok(v[rows]
                .iter()
                .map(|x| op.holds(&x.as_str(), &lit))
                .collect())
        }
    }
}

fn range_mask(
    col: &Column,
    name: &str,
    low: &Value,
    high: &Value,
    rows: Range<usize>,
) -> Result<Vec<bool>> {
    match col {
        Column::Int64(v) => {
            let lo = low.as_float().ok_or_else(|| type_err(name, "Int64", low))?;
            let hi = high
                .as_float()
                .ok_or_else(|| type_err(name, "Int64", high))?;
            Ok(v[rows]
                .iter()
                .map(|&x| {
                    let x = x as f64;
                    x >= lo && x < hi
                })
                .collect())
        }
        Column::Float64(v) => {
            let lo = low
                .as_float()
                .ok_or_else(|| type_err(name, "Float64", low))?;
            let hi = high
                .as_float()
                .ok_or_else(|| type_err(name, "Float64", high))?;
            Ok(v[rows].iter().map(|&x| x >= lo && x < hi).collect())
        }
        Column::Utf8(v) => {
            let lo = low.as_str().ok_or_else(|| type_err(name, "Utf8", low))?;
            let hi = high.as_str().ok_or_else(|| type_err(name, "Utf8", high))?;
            Ok(v[rows]
                .iter()
                .map(|x| x.as_str() >= lo && x.as_str() < hi)
                .collect())
        }
    }
}

/// Set the first `n` bits of `out`, leaving the tail clear.
fn set_all_bits(out: &mut [u64], n: usize) {
    out.fill(!0u64);
    mask_tail_bits(out, n);
}

/// Clear any bits at positions `>= n` in the last word.
fn mask_tail_bits(out: &mut [u64], n: usize) {
    if !n.is_multiple_of(64) {
        if let Some(last) = out.last_mut() {
            *last &= (1u64 << (n % 64)) - 1;
        }
    }
}

/// Branchless bitmap fill: one word per 64 values, `f` per element.
/// Partial tail chunks leave their high bits clear by construction.
#[inline]
fn fill_bits<T: Copy>(vals: &[T], out: &mut [u64], f: impl Fn(T) -> bool) {
    for (w, chunk) in out.iter_mut().zip(vals.chunks(64)) {
        let mut bits = 0u64;
        for (j, &x) in chunk.iter().enumerate() {
            bits |= u64::from(f(x)) << j;
        }
        *w = bits;
    }
}

/// Expand a window bitmap to ascending global row ids.
fn bits_to_sel(bits: &[u64], start: usize) -> Vec<u32> {
    let count: usize = bits.iter().map(|w| w.count_ones() as usize).sum();
    let mut sel = Vec::with_capacity(count);
    for (i, &word) in bits.iter().enumerate() {
        let base = start + i * 64;
        let mut w = word;
        while w != 0 {
            sel.push((base + w.trailing_zeros() as usize) as u32);
            w &= w - 1;
        }
    }
    sel
}

/// Bitmap twin of [`cmp_mask`]: identical literal resolution (including
/// the exact-float-against-int rule) and identical per-element
/// comparisons via [`CmpOp::holds`].
fn cmp_bits(
    col: &Column,
    name: &str,
    op: CmpOp,
    value: &Value,
    rows: Range<usize>,
    out: &mut [u64],
) -> Result<()> {
    match col {
        Column::Int64(v) => {
            let lit = value.as_int().or_else(|| {
                // Allow float literals against int columns only when exact.
                value.as_float().and_then(|f| {
                    let i = f as i64;
                    (i as f64 == f).then_some(i)
                })
            });
            let lit = lit.ok_or_else(|| type_err(name, "Int64", value))?;
            fill_bits(&v[rows], out, |x| op.holds(&x, &lit));
        }
        Column::Float64(v) => {
            let lit = value
                .as_float()
                .ok_or_else(|| type_err(name, "Float64", value))?;
            fill_bits(&v[rows], out, |x| op.holds(&x, &lit));
        }
        Column::Utf8(v) => {
            let lit = value
                .as_str()
                .ok_or_else(|| type_err(name, "Utf8", value))?;
            for (w, chunk) in out.iter_mut().zip(v[rows].chunks(64)) {
                let mut bits = 0u64;
                for (j, x) in chunk.iter().enumerate() {
                    bits |= u64::from(op.holds(&x.as_str(), &lit)) << j;
                }
                *w = bits;
            }
        }
    }
    Ok(())
}

/// Bitmap twin of [`range_mask`]: same type coercions, same
/// `lo <= x < hi` semantics per element.
fn range_bits(
    col: &Column,
    name: &str,
    low: &Value,
    high: &Value,
    rows: Range<usize>,
    out: &mut [u64],
) -> Result<()> {
    match col {
        Column::Int64(v) => {
            let lo = low.as_float().ok_or_else(|| type_err(name, "Int64", low))?;
            let hi = high
                .as_float()
                .ok_or_else(|| type_err(name, "Int64", high))?;
            fill_bits(&v[rows], out, |x| {
                let x = x as f64;
                x >= lo && x < hi
            });
        }
        Column::Float64(v) => {
            let lo = low
                .as_float()
                .ok_or_else(|| type_err(name, "Float64", low))?;
            let hi = high
                .as_float()
                .ok_or_else(|| type_err(name, "Float64", high))?;
            fill_bits(&v[rows], out, |x| x >= lo && x < hi);
        }
        Column::Utf8(v) => {
            let lo = low.as_str().ok_or_else(|| type_err(name, "Utf8", low))?;
            let hi = high.as_str().ok_or_else(|| type_err(name, "Utf8", high))?;
            for (w, chunk) in out.iter_mut().zip(v[rows].chunks(64)) {
                let mut bits = 0u64;
                for (j, x) in chunk.iter().enumerate() {
                    bits |= u64::from(x.as_str() >= lo && x.as_str() < hi) << j;
                }
                *w = bits;
            }
        }
    }
    Ok(())
}

fn type_err(column: &str, expected: &'static str, found: &Value) -> StorageError {
    StorageError::TypeMismatch {
        column: column.to_owned(),
        expected,
        found: found.data_type().map_or("Null", |t| t.name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn t() -> Table {
        Table::new(
            Schema::of(&[
                ("a", DataType::Int64),
                ("b", DataType::Float64),
                ("c", DataType::Utf8),
            ]),
            vec![
                Column::from(vec![1i64, 2, 3, 4, 5]),
                Column::from(vec![0.1f64, 0.2, 0.3, 0.4, 0.5]),
                Column::from(vec!["x", "y", "x", "z", "y"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn simple_comparisons() {
        let t = t();
        assert_eq!(
            Predicate::cmp("a", CmpOp::Gt, 3i64).evaluate(&t).unwrap(),
            vec![3, 4]
        );
        assert_eq!(Predicate::eq("c", "x").evaluate(&t).unwrap(), vec![0, 2]);
        assert_eq!(
            Predicate::cmp("b", CmpOp::Le, 0.2).evaluate(&t).unwrap(),
            vec![0, 1]
        );
        assert_eq!(
            Predicate::cmp("a", CmpOp::Ne, 1i64).evaluate(&t).unwrap(),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn range_is_half_open() {
        let t = t();
        assert_eq!(
            Predicate::range("a", 2i64, 4i64).evaluate(&t).unwrap(),
            vec![1, 2]
        );
        assert_eq!(
            Predicate::range("c", "x", "z").evaluate(&t).unwrap(),
            vec![0, 1, 2, 4]
        );
    }

    #[test]
    fn boolean_combinators() {
        let t = t();
        let p = Predicate::cmp("a", CmpOp::Ge, 2i64).and(Predicate::eq("c", "x"));
        assert_eq!(p.evaluate(&t).unwrap(), vec![2]);
        let p = Predicate::eq("a", 1i64).or(Predicate::eq("a", 5i64));
        assert_eq!(p.evaluate(&t).unwrap(), vec![0, 4]);
        let p = Predicate::eq("c", "y").not();
        assert_eq!(p.evaluate(&t).unwrap(), vec![0, 2, 3]);
        assert_eq!(Predicate::True.evaluate(&t).unwrap().len(), 5);
    }

    #[test]
    fn and_flattening() {
        let p = Predicate::eq("a", 1i64)
            .and(Predicate::eq("a", 2i64))
            .and(Predicate::eq("a", 3i64));
        match p {
            Predicate::And(ps) => assert_eq!(ps.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
        // True is an identity element.
        let p = Predicate::True.and(Predicate::eq("a", 1i64));
        assert!(matches!(p, Predicate::Cmp { .. }));
    }

    #[test]
    fn columns_are_collected_once() {
        let p = Predicate::range("a", 1i64, 2i64)
            .and(Predicate::eq("c", "x"))
            .and(Predicate::cmp("a", CmpOp::Lt, 10i64));
        assert_eq!(p.columns(), vec!["a", "c"]);
        assert!(Predicate::True.columns().is_empty());
    }

    #[test]
    fn matches_row_agrees_with_mask() {
        let t = t();
        let p = Predicate::range("b", 0.15, 0.45).and(Predicate::eq("c", "x").not());
        let mask = p.evaluate_mask(&t).unwrap();
        for (row, &expected) in mask.iter().enumerate() {
            assert_eq!(p.matches_row(&t, row).unwrap(), expected, "row {row}");
        }
    }

    #[test]
    fn type_errors_are_reported() {
        let t = t();
        assert!(Predicate::eq("a", "nope").evaluate(&t).is_err());
        assert!(Predicate::eq("c", 3i64).evaluate(&t).is_err());
        assert!(Predicate::eq("missing", 1i64).evaluate(&t).is_err());
    }

    #[test]
    fn float_literal_against_int_column_must_be_exact() {
        let t = t();
        assert_eq!(Predicate::eq("a", 3.0f64).evaluate(&t).unwrap(), vec![2]);
        assert!(Predicate::eq("a", 3.5f64).evaluate(&t).is_err());
    }

    #[test]
    fn window_evaluation_concatenates_to_full_scan() {
        let t = t();
        let p = Predicate::range("b", 0.15, 0.45).or(Predicate::eq("c", "y").not());
        let full = p.evaluate(&t).unwrap();
        for window in [1, 2, 3, 5, 7] {
            let mut got = Vec::new();
            let mut start = 0;
            while start < t.num_rows() {
                let end = (start + window).min(t.num_rows());
                got.extend(p.evaluate_range(&t, start..end).unwrap());
                start = end;
            }
            assert_eq!(got, full, "window {window}");
        }
        // Empty windows are fine; out-of-bounds windows are errors.
        assert!(p.evaluate_range(&t, 2..2).unwrap().is_empty());
        assert!(p.evaluate_range(&t, 4..9).is_err());
        assert!(Predicate::eq("missing", 1i64)
            .evaluate_range(&t, 0..2)
            .is_err());
    }

    #[test]
    fn mask_to_sel_roundtrip() {
        assert_eq!(mask_to_sel(&[true, false, true, true]), vec![0, 2, 3]);
        assert!(mask_to_sel(&[]).is_empty());
    }

    /// The vectorized bitmap path must agree with the scalar mask path
    /// on every window, for a table wider than one bitmap word and
    /// floats including NaN / infinities / signed zero.
    #[test]
    fn vectorized_range_agrees_with_scalar_mask() {
        let n = 200;
        let ints: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 19 - 9).collect();
        let floats: Vec<f64> = (0..n)
            .map(|i| match i % 7 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => -0.0,
                4 => 0.0,
                _ => (i as f64 - 100.0) / 3.0,
            })
            .collect();
        let strs: Vec<String> = (0..n).map(|i| format!("s{}", i % 11)).collect();
        let t = Table::new(
            Schema::of(&[
                ("a", DataType::Int64),
                ("b", DataType::Float64),
                ("c", DataType::Utf8),
            ]),
            vec![Column::from(ints), Column::from(floats), Column::from(strs)],
        )
        .unwrap();

        let preds = vec![
            Predicate::True,
            Predicate::cmp("b", CmpOp::Eq, f64::NAN),
            Predicate::cmp("b", CmpOp::Ne, f64::NAN),
            Predicate::cmp("b", CmpOp::Ge, 0.0),
            Predicate::cmp("b", CmpOp::Lt, f64::INFINITY),
            Predicate::eq("b", -0.0f64),
            Predicate::range("b", -5.0, 5.0),
            Predicate::range("a", -3i64, 4i64),
            Predicate::cmp("a", CmpOp::Le, 0i64),
            Predicate::eq("c", "s3"),
            Predicate::range("c", "s1", "s4"),
            Predicate::cmp("a", CmpOp::Gt, -2i64)
                .and(Predicate::cmp("b", CmpOp::Lt, 10.0))
                .or(Predicate::eq("c", "s7").not()),
            Predicate::And(Vec::new()),
            Predicate::Or(Vec::new()),
        ];
        for p in &preds {
            for window in [
                0..n,
                0..0,
                0..1,
                0..63,
                0..64,
                0..65,
                63..129,
                128..n,
                199..n,
            ] {
                let scalar = mask_to_sel(&p.evaluate_mask_range(&t, window.clone()).unwrap())
                    .iter()
                    .map(|&i| i + window.start as u32)
                    .collect::<Vec<u32>>();
                let vectorized = p.evaluate_range(&t, window.clone()).unwrap();
                assert_eq!(vectorized, scalar, "pred {p} window {window:?}");
            }
        }
        // Error parity on the vectorized path.
        assert!(Predicate::eq("missing", 1i64)
            .evaluate_range(&t, 0..n)
            .is_err());
        assert!(Predicate::eq("a", "nope").evaluate_range(&t, 0..n).is_err());
        assert!(Predicate::True.evaluate_range(&t, 100..(n + 1)).is_err());
    }
}
