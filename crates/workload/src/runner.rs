//! The session driver: replay generated trajectories concurrently
//! against one shared engine and account every interaction.
//!
//! [`WorkloadRunner`] owns the engine — directly (the engine's query
//! path is `&self`, so replay threads call it concurrently with no
//! runner-level lock) or through the `explore-serve` scheduler
//! ([`DriveMode::Serve`], one serve session per analyst session,
//! sessions ≫ scheduler workers) — plus a shared [`GridIndex`] for the
//! pan sessions, which never touch the engine at all. `run` replays
//! every [`SessionSpec`] and emits a [`WorkloadReport`].
//!
//! Each interaction's latency is accounted in two parts: **queueing
//! delay** (zero in direct mode — there is no lock to wait on —
//! run-queue wait in serve mode) and service time. The per-class
//! percentiles cover the total — that is what the analyst feels — while
//! [`ClassStats::mean_queue_ns`] / [`ClassStats::p95_queue_ns`] expose
//! the scheduling share, so SLO accounting can separate an overloaded
//! scheduler from a slow engine instead of blaming the query.
//!
//! Determinism contract: wall-clock numbers (latencies, SLO violations,
//! throughput) are *measured* and vary run to run, but everything in
//! [`WorkloadReport::deterministic`] — session/interaction/error counts,
//! per-class counts, and the result `checksum` — is a pure function of
//! the [`WorkloadConfig`] as long as no deadline or cancel cuts a query
//! short. Two properties make that hold under concurrency: every engine
//! result is bit-identical across exec/cache/shard policies and cracking
//! states (the differential suites' invariant), and the digests below
//! are order-independent wherever ordering depends on thread interleave
//! (across sessions, and across row ids within a `cracked_range`
//! answer, whose order depends on how far cracking has converged).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use explore_cache::{CachePolicy, ResultCache};
use explore_core::{ExploreDb, SessionCtx};
use explore_exec::ExecPolicy;
use explore_fault::FailPoints;
use explore_obs::{percentile_sorted, MetricsRegistry, MetricsSnapshot};
use explore_prefetch::{CellAgg, GridIndex, PanSession, Viewport};
use explore_serve::{ServeConfig, ServeEngine, Session as ServeSession};
use explore_shard::ShardPolicy;
use explore_storage::gen::{sales_table, sky_table, SalesConfig};
use explore_storage::{AggFunc, Predicate, Query, Result, StorageError, Table};

use crate::spec::{Interaction, SessionSpec, GRID_CELLS};

/// How interactions reach the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriveMode {
    /// Each replay thread calls the engine directly; the query path is
    /// `&self`, so calls overlap with zero queueing delay.
    Direct,
    /// Route every engine interaction through the `explore-serve`
    /// scheduler: one serve session per analyst session, multiplexed
    /// over `workers` scheduler threads behind a `queue_limit`-bounded
    /// run queue. Admission rejections are retried after a backoff and
    /// counted in [`WorkloadReport::rejections`].
    Serve { workers: usize, queue_limit: usize },
}

/// Everything that determines a workload run. `seed` fixes the
/// trajectories *and* the synthetic data; the policies pick the engine
/// configuration under test.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of concurrent analyst sessions.
    pub sessions: usize,
    /// Interactions per session.
    pub interactions: usize,
    /// Master seed: trajectories and generated tables derive from it.
    pub seed: u64,
    /// Rows in the generated sales fact table (the sky table gets half).
    pub rows: usize,
    /// Worker threads replaying sessions (round-robin assignment).
    pub threads: usize,
    pub exec: ExecPolicy,
    pub cache: CachePolicy,
    pub shard: ShardPolicy,
    /// Idle time between interactions (human think time). Zero for
    /// benchmarks.
    pub think: Duration,
    /// Engine-enforced per-query deadline; `None` leaves queries uncut
    /// (required for a deterministic checksum).
    pub deadline: Option<Duration>,
    /// SLO budget per interaction: answers slower than this count as
    /// violations even when they complete.
    pub budget: Duration,
    /// How interactions reach the engine (direct shared-engine calls
    /// vs. the serve scheduler).
    pub mode: DriveMode,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            sessions: 4,
            interactions: 24,
            seed: 0xE15E_ED00,
            rows: 20_000,
            threads: 4,
            exec: ExecPolicy::Serial,
            cache: CachePolicy::on(),
            shard: ShardPolicy::Off,
            think: Duration::ZERO,
            deadline: None,
            budget: Duration::from_millis(50),
            mode: DriveMode::Direct,
        }
    }
}

/// Latency summary of one interaction class. Percentiles are exact
/// (nearest-rank over the raw samples), not histogram-bucket estimates,
/// so the bench gate sees continuous movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassStats {
    pub count: u64,
    pub mean_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    /// Mean queueing delay (zero in direct mode — the shared engine has
    /// no lock to wait on — run-queue wait in serve mode) — the
    /// scheduling share of `mean_ns`.
    pub mean_queue_ns: u64,
    /// p95 queueing delay (same separation as `mean_queue_ns`).
    pub p95_queue_ns: u64,
}

/// The deterministic projection of a report: exactly the fields that
/// are a pure function of the config (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicReport {
    pub sessions: u64,
    pub interactions: u64,
    pub errors: u64,
    pub checksum: u64,
    pub class_counts: BTreeMap<String, u64>,
}

/// What one workload run produced.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Sessions replayed.
    pub sessions: u64,
    /// Interactions attempted (completed + errored).
    pub interactions: u64,
    /// Interactions that broke the SLO budget or were cut by the
    /// engine deadline.
    pub violations: u64,
    /// Interactions that returned an error (deadline, cancel, fault).
    pub errors: u64,
    /// Serve-mode admission rejections (typed `Overloaded` errors),
    /// each retried after a backoff until admitted — truth is always
    /// re-served, so rejections never change the checksum. Always 0 in
    /// direct mode.
    pub rejections: u64,
    /// Order-independent digest of every successful result.
    pub checksum: u64,
    /// Per-class latency summaries, keyed by interaction kind.
    pub classes: BTreeMap<String, ClassStats>,
    /// Engine result-cache deltas over the run (includes pan cells when
    /// the pan sessions share the engine cache).
    pub cache_hits: u64,
    pub cache_subsumption_hits: u64,
    pub cache_misses: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed_ns: u64,
    /// The run's obs-registry snapshot (`workload.<class>` histograms).
    pub obs: MetricsSnapshot,
}

impl WorkloadReport {
    /// Fraction of cache lookups served (plain + subsumption), percent.
    /// 0 when the cache saw no traffic.
    pub fn cache_hit_rate_pct(&self) -> f64 {
        let hits = self.cache_hits + self.cache_subsumption_hits;
        let total = hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            100.0 * hits as f64 / total as f64
        }
    }

    /// Fraction of interactions that violated their budget, percent.
    pub fn violation_rate_pct(&self) -> f64 {
        if self.interactions == 0 {
            0.0
        } else {
            100.0 * self.violations as f64 / self.interactions as f64
        }
    }

    /// Completed interactions per wall-clock second.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.interactions as f64 * 1e9 / self.elapsed_ns as f64
        }
    }

    /// One class's stats, if any interaction of that kind ran.
    pub fn class(&self, kind: &str) -> Option<&ClassStats> {
        self.classes.get(kind)
    }

    /// The seed-reproducible projection (see the module docs).
    pub fn deterministic(&self) -> DeterministicReport {
        DeterministicReport {
            sessions: self.sessions,
            interactions: self.interactions,
            errors: self.errors,
            checksum: self.checksum,
            class_counts: self
                .classes
                .iter()
                .map(|(k, v)| (k.clone(), v.count))
                .collect(),
        }
    }
}

impl fmt::Display for WorkloadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "workload: {} sessions × {} interactions  checksum={:016x}",
            self.sessions,
            self.interactions / self.sessions.max(1),
            self.checksum
        )?;
        writeln!(
            f,
            "  throughput {:.0}/s  violations {:.1}%  errors {}  rejections {}  cache hit {:.1}%",
            self.throughput_per_sec(),
            self.violation_rate_pct(),
            self.errors,
            self.rejections,
            self.cache_hit_rate_pct()
        )?;
        for (kind, c) in &self.classes {
            writeln!(
                f,
                "  {kind:<8} n={:<5} mean={:<9} p50={:<9} p95={:<9} p99={:<9} queue(mean={}, p95={})",
                c.count, c.mean_ns, c.p50_ns, c.p95_ns, c.p99_ns, c.mean_queue_ns, c.p95_queue_ns
            )?;
        }
        Ok(())
    }
}

/// What one session replay brought home.
struct SessionOutcome {
    /// (class, total latency_ns, queue_ns, violated) per interaction,
    /// in order. `queue_ns` is the scheduling share of the total.
    latencies: Vec<(&'static str, u64, u64, bool)>,
    errors: u64,
    /// Admission rejections this session absorbed (serve mode only).
    rejections: u64,
    /// Sequential fold of this session's result digests.
    digest: u64,
}

/// SplitMix64 finalizer — the mixing step used for all digests.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-style sequential fold (order matters — used only where order is
/// deterministic).
fn fold(acc: u64, x: u64) -> u64 {
    (acc ^ mix(x)).wrapping_mul(0x0000_0100_0000_01B3)
}

/// Digest of a result table: schema names + every cell, bit-exact for
/// floats. Table contents are deterministic, so an ordered fold is fine.
fn table_digest(t: &Table) -> u64 {
    let mut d = 0xCBF2_9CE4_8422_2325u64;
    for field in t.schema().fields() {
        for b in field.name().bytes() {
            d = fold(d, b as u64);
        }
    }
    for col in t.columns() {
        if let Some(v) = col.as_i64() {
            d = v.iter().fold(d, |d, &x| fold(d, x as u64));
        } else if let Some(v) = col.as_f64() {
            d = v.iter().fold(d, |d, &x| fold(d, x.to_bits()));
        } else if let Some(v) = col.as_utf8() {
            d = v.iter().fold(d, |d, s| {
                s.bytes().fold(fold(d, 0x5F), |d, b| fold(d, b as u64))
            });
        }
    }
    d
}

/// Digest of a `cracked_range` answer. Id order depends on how far
/// cracking has converged (i.e. on cross-session interleave), so the
/// digest is order-independent: length plus a commutative sum of mixed
/// ids.
fn ids_digest(ids: &[u32]) -> u64 {
    ids.iter().fold(mix(ids.len() as u64), |d, &id| {
        d.wrapping_add(mix(id as u64 + 1))
    })
}

/// Digest of a pan viewport answer (cell order is fixed by the
/// viewport, so an ordered fold is fine).
fn cells_digest(cells: &[CellAgg]) -> u64 {
    cells.iter().fold(0x9E37_79B9_7F4A_7C15u64, |d, c| {
        fold(fold(d, c.count), c.sum.to_bits())
    })
}

/// The engine call for one interaction, owned so the serve scheduler
/// can run it on a worker thread.
type InteractionOp = Box<dyn FnOnce(&ExploreDb) -> Result<u64> + Send>;

/// How the runner reaches the engine (see [`DriveMode`]).
enum Backend {
    Direct(Box<ExploreDb>),
    Serve(ServeEngine),
}

impl Backend {
    /// Run `f` directly against the engine, outside any scheduling —
    /// setup and stats reads.
    fn with_engine<R>(&self, f: impl FnOnce(&ExploreDb) -> R) -> R {
        match self {
            Backend::Direct(db) => f(db),
            Backend::Serve(engine) => engine.with_engine(f),
        }
    }
}

/// Replays seeded exploration sessions against one shared engine.
pub struct WorkloadRunner {
    config: WorkloadConfig,
    specs: Vec<SessionSpec>,
    backend: Backend,
    grid: GridIndex,
    cache: Arc<ResultCache>,
    cache_on: bool,
    faults: Arc<FailPoints>,
}

impl WorkloadRunner {
    /// Build the engine (sales table + sky grid, policies applied) and
    /// generate every session trajectory.
    pub fn new(config: WorkloadConfig) -> Result<Self> {
        let specs = (0..config.sessions as u64)
            .map(|s| SessionSpec::generate(config.seed, s, config.interactions))
            .collect();
        let db = ExploreDb::new();
        db.register(
            "sales",
            sales_table(&SalesConfig {
                rows: config.rows,
                seed: config.seed ^ 0x5A1E_5F00D,
                ..SalesConfig::default()
            }),
        );
        db.set_exec_policy(config.exec);
        db.set_cache_policy(config.cache.clone());
        db.set_shard_policy(config.shard.clone());
        let sky = sky_table(
            (config.rows / 2).max(1_000),
            6,
            100.0,
            config.seed ^ 0x5C1_F1E1D,
        );
        let grid = GridIndex::build(
            &sky,
            "x",
            "y",
            "mag",
            GRID_CELLS as usize,
            GRID_CELLS as usize,
        )?;
        let cache = db.cache();
        let cache_on = db.cache_policy().is_on();
        let faults = db.fail_points();
        let backend = match config.mode {
            DriveMode::Direct => Backend::Direct(Box::new(db)),
            DriveMode::Serve {
                workers,
                queue_limit,
            } => Backend::Serve(ServeEngine::with_config(
                db,
                ServeConfig::with_workers(workers).with_queue_limit(queue_limit),
            )),
        };
        Ok(WorkloadRunner {
            config,
            specs,
            backend,
            grid,
            cache,
            cache_on,
            faults,
        })
    }

    /// The generated trajectories (for inspection and tests).
    pub fn specs(&self) -> &[SessionSpec] {
        &self.specs
    }

    /// The engine's fail-point registry, for chaos workloads.
    pub fn fail_points(&self) -> Arc<FailPoints> {
        Arc::clone(&self.faults)
    }

    /// Replay every session concurrently and summarize.
    pub fn run(&self) -> Result<WorkloadReport> {
        let registry = MetricsRegistry::new();
        let stats_before = self.backend.with_engine(|db| db.cache_stats());
        let started = Instant::now();

        let workers = self.config.threads.max(1).min(self.specs.len().max(1));
        let outcomes: Vec<SessionOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        self.specs
                            .iter()
                            .skip(w)
                            .step_by(workers)
                            .map(|spec| self.replay(spec))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("workload session thread panicked"))
                .collect()
        });
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        let stats_after = self.backend.with_engine(|db| db.cache_stats());

        // Combine sessions order-independently: thread scheduling must
        // not leak into the checksum.
        let checksum = outcomes
            .iter()
            .fold(0u64, |acc, o| acc.wrapping_add(mix(o.digest)));
        let errors = outcomes.iter().map(|o| o.errors).sum();
        let rejections = outcomes.iter().map(|o| o.rejections).sum();
        let mut samples: BTreeMap<&'static str, (Vec<u64>, Vec<u64>)> = BTreeMap::new();
        let mut violations = 0u64;
        let mut interactions = 0u64;
        for o in &outcomes {
            for &(kind, ns, queue_ns, violated) in &o.latencies {
                interactions += 1;
                violations += violated as u64;
                registry.observe_ns(&format!("workload.{kind}"), ns);
                registry.observe_ns(&format!("workload.{kind}.queue"), queue_ns);
                let (totals, queues) = samples.entry(kind).or_default();
                totals.push(ns);
                queues.push(queue_ns);
            }
        }
        let classes = samples
            .into_iter()
            .map(|(kind, (mut ns, mut queue))| {
                ns.sort_unstable();
                queue.sort_unstable();
                let sum: u64 = ns.iter().sum();
                let queue_sum: u64 = queue.iter().sum();
                (
                    kind.to_owned(),
                    ClassStats {
                        count: ns.len() as u64,
                        mean_ns: sum / ns.len() as u64,
                        p50_ns: percentile_sorted(&ns, 0.50),
                        p95_ns: percentile_sorted(&ns, 0.95),
                        p99_ns: percentile_sorted(&ns, 0.99),
                        mean_queue_ns: queue_sum / queue.len() as u64,
                        p95_queue_ns: percentile_sorted(&queue, 0.95),
                    },
                )
            })
            .collect();

        Ok(WorkloadReport {
            sessions: self.specs.len() as u64,
            interactions,
            violations,
            errors,
            rejections,
            checksum,
            classes,
            cache_hits: stats_after.hits - stats_before.hits,
            cache_subsumption_hits: stats_after.subsumption_hits - stats_before.subsumption_hits,
            cache_misses: stats_after.misses - stats_before.misses,
            elapsed_ns,
            obs: registry.snapshot(),
        })
    }

    /// The engine call for one interaction, as an owned closure the
    /// serve scheduler can run on a worker thread. `None` for pan
    /// interactions, which never touch the engine. Each call constructs
    /// a fresh closure, so a rejected submission can be retried.
    fn interaction_op(it: &Interaction) -> Option<InteractionOp> {
        match *it {
            Interaction::Filter { lo, hi } | Interaction::Refine { lo, hi } => {
                Some(Box::new(move |db| {
                    let q = Query::new()
                        .filter(Predicate::range("price", lo, hi))
                        .group("region")
                        .agg(AggFunc::Sum, "price");
                    db.query("sales", &q).map(|t| table_digest(&t))
                }))
            }
            Interaction::Drill { dim_a, dim_b } => Some(Box::new(move |db| {
                db.discover_cube("sales", dim_a, dim_b, "price")
                    .map(|view| {
                        view.cells().iter().fold(0x0D11_1100u64, |d, c| {
                            let d = c.dim_a.bytes().fold(d, |d, b| fold(d, b as u64));
                            let d = c.dim_b.bytes().fold(d, |d, b| fold(d, b as u64));
                            fold(d, c.actual.to_bits())
                        })
                    })
            })),
            Interaction::Lookup { qty } => Some(Box::new(move |db| {
                db.cracked_range("sales", "qty", qty, qty + 1)
                    .map(|ids| ids_digest(&ids))
            })),
            Interaction::Pan { .. } => None,
        }
    }

    /// Run one engine-backed interaction through the active backend.
    /// Returns the digest outcome and the queueing delay (always zero
    /// in direct mode — the query path is `&self`, there is no lock to
    /// wait on — run-queue wait in serve mode). Serve-mode admission
    /// rejections are counted and retried after yielding — truth is
    /// always re-served.
    fn dispatch(
        &self,
        session: Option<&ServeSession>,
        overlay: &SessionCtx,
        it: &Interaction,
        rejections: &mut u64,
    ) -> (Result<u64>, u64) {
        match session {
            Some(s) => loop {
                let op = Self::interaction_op(it).expect("pan never dispatches");
                match s.submit(op) {
                    Ok(ticket) => {
                        let outcome = ticket.wait();
                        break (outcome, ticket.queue_ns());
                    }
                    Err(StorageError::Overloaded { .. }) => {
                        *rejections += 1;
                        std::thread::yield_now();
                    }
                    Err(e) => break (Err(e), 0),
                }
            },
            None => {
                let op = Self::interaction_op(it).expect("pan never dispatches");
                let Backend::Direct(db) = &self.backend else {
                    unreachable!("direct dispatch without a serve session")
                };
                (db.with_session(overlay, |db| op(db)), 0)
            }
        }
    }

    /// Replay one session: every interaction is timed, accounted, and
    /// digested. Errors are counted, never propagated — a degraded
    /// engine must not kill the workload.
    fn replay(&self, spec: &SessionSpec) -> SessionOutcome {
        let serve_session = match &self.backend {
            Backend::Serve(engine) => Some(engine.session().with_deadline(self.config.deadline)),
            Backend::Direct(_) => None,
        };
        // Direct mode scopes the per-query deadline to this replay
        // session's calls, mirroring what a serve session carries.
        let overlay = SessionCtx::new().with_deadline(self.config.deadline);
        let mut pan = PanSession::new(&self.grid, true);
        if self.cache_on {
            pan = pan.with_shared_cache(Arc::clone(&self.cache), "sky");
        }
        let mut vp = Viewport {
            cx: GRID_CELLS / 2,
            cy: GRID_CELLS / 2,
            w: 4,
            h: 4,
        };
        let budget_ns = self.config.budget.as_nanos() as u64;
        let mut latencies = Vec::with_capacity(spec.interactions.len());
        let mut errors = 0u64;
        let mut rejections = 0u64;
        let mut digest = 0xD16E_5700_0000_0000u64 ^ mix(spec.session);
        for it in &spec.interactions {
            if !self.config.think.is_zero() {
                std::thread::sleep(self.config.think);
            }
            let start = Instant::now();
            let (outcome, queue_ns): (Result<u64>, u64) = match *it {
                Interaction::Pan { dx, dy, resize } => {
                    vp.cx = (vp.cx + dx).clamp(0, GRID_CELLS - 1);
                    vp.cy = (vp.cy + dy).clamp(0, GRID_CELLS - 1);
                    vp.w = (vp.w as i64 + resize).clamp(2, 6) as usize;
                    vp.h = (vp.h as i64 + resize).clamp(2, 6) as usize;
                    (pan.view(vp).map(|cells| cells_digest(&cells)), 0)
                }
                _ => self.dispatch(serve_session.as_ref(), &overlay, it, &mut rejections),
            };
            let ns = start.elapsed().as_nanos() as u64;
            let mut violated = ns > budget_ns;
            match outcome {
                Ok(d) => digest = fold(digest, d),
                Err(e) => {
                    errors += 1;
                    if matches!(e, StorageError::DeadlineExceeded) {
                        violated = true;
                    }
                }
            }
            latencies.push((it.kind(), ns, queue_ns, violated));
        }
        SessionOutcome {
            latencies,
            errors,
            rejections,
            digest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> WorkloadConfig {
        WorkloadConfig {
            sessions: 3,
            interactions: 12,
            rows: 4_000,
            threads: 3,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn runs_and_accounts_every_interaction() {
        let runner = WorkloadRunner::new(quick_config()).unwrap();
        assert_eq!(runner.specs().len(), 3);
        let report = runner.run().unwrap();
        assert_eq!(report.sessions, 3);
        assert_eq!(report.interactions, 36);
        assert_eq!(report.errors, 0);
        let class_total: u64 = report.classes.values().map(|c| c.count).sum();
        assert_eq!(class_total, 36);
        for (kind, c) in &report.classes {
            assert!(c.p50_ns <= c.p95_ns && c.p95_ns <= c.p99_ns, "{kind}");
            let h = report
                .obs
                .histogram(&format!("workload.{kind}"))
                .expect("observed into obs histogram");
            assert_eq!(h.count, c.count);
        }
        assert!(report.throughput_per_sec() > 0.0);
    }

    #[test]
    fn same_config_same_deterministic_report() {
        let a = WorkloadRunner::new(quick_config()).unwrap().run().unwrap();
        let b = WorkloadRunner::new(quick_config()).unwrap().run().unwrap();
        assert_eq!(a.deterministic(), b.deterministic());
        let mut other = quick_config();
        other.seed ^= 1;
        let c = WorkloadRunner::new(other).unwrap().run().unwrap();
        assert_ne!(
            a.deterministic().checksum,
            c.deterministic().checksum,
            "different seed must explore different results"
        );
    }

    #[test]
    fn refinement_hits_the_cache() {
        let report = WorkloadRunner::new(quick_config()).unwrap().run().unwrap();
        assert!(
            report.cache_hits + report.cache_subsumption_hits > 0,
            "refine/pan traffic should hit the shared cache: {report}"
        );
        assert!(report.cache_hit_rate_pct() > 0.0);
    }

    #[test]
    fn deadline_cuts_become_counted_violations_not_panics() {
        let mut cfg = quick_config();
        cfg.deadline = Some(Duration::ZERO);
        let report = WorkloadRunner::new(cfg).unwrap().run().unwrap();
        // Pan runs off-grid without engine calls, so only engine-backed
        // classes get cut; every error must be counted, nothing panics.
        assert!(report.errors > 0);
        assert!(report.violations >= report.errors);
        assert_eq!(report.interactions, 36);
    }

    #[test]
    fn serve_mode_preserves_the_checksum_with_sessions_past_workers() {
        let direct = WorkloadRunner::new(quick_config()).unwrap().run().unwrap();
        let served = WorkloadRunner::new(WorkloadConfig {
            mode: DriveMode::Serve {
                workers: 2,
                queue_limit: 64,
            },
            ..quick_config()
        })
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(
            direct.deterministic(),
            served.deterministic(),
            "scheduling must change when queries run, never what they compute"
        );
    }

    #[test]
    fn queue_delay_is_reported_as_its_own_field() {
        let report = WorkloadRunner::new(quick_config()).unwrap().run().unwrap();
        for (kind, c) in &report.classes {
            assert!(
                c.mean_queue_ns <= c.mean_ns,
                "{kind}: queueing delay is a share of the total"
            );
            let h = report
                .obs
                .histogram(&format!("workload.{kind}.queue"))
                .expect("queue histogram recorded per class");
            assert_eq!(h.count, c.count);
        }
        // Pan sessions never queue on the engine.
        assert_eq!(report.class("pan").map(|c| c.mean_queue_ns), Some(0));
    }

    #[test]
    fn report_math_handles_empty_runs() {
        let cfg = WorkloadConfig {
            sessions: 0,
            interactions: 0,
            rows: 1_000,
            ..WorkloadConfig::default()
        };
        let report = WorkloadRunner::new(cfg).unwrap().run().unwrap();
        assert_eq!(report.interactions, 0);
        assert_eq!(report.violation_rate_pct(), 0.0);
        assert_eq!(report.cache_hit_rate_pct(), 0.0);
    }
}
