//! Bucket histograms: the oldest and most widely deployed synopsis
//! (Cormode et al., *Synopses for Massive Data* \[16\]).
//!
//! Two classic flavours:
//! * **Equi-width** — fixed-width buckets; cheap to build and update,
//!   inaccurate under skew (all the mass piles into a few buckets).
//! * **Equi-depth** — buckets hold equal row counts; needs a sort (or a
//!   quantile sketch) to build, but bounds per-bucket error under any
//!   distribution, which is why every real optimizer uses it.
//!
//! Both answer range-count queries with the uniform-spread assumption
//! inside buckets.

/// A histogram over a numeric column.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Bucket boundaries, length `buckets + 1`, ascending. Bucket `i`
    /// covers `[edges[i], edges[i+1])`; the last bucket is closed.
    edges: Vec<f64>,
    /// Row count per bucket.
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Build an equi-width histogram with `buckets` buckets.
    pub fn equi_width(data: &[f64], buckets: usize) -> Self {
        let buckets = buckets.max(1);
        let (lo, hi) = min_max(data);
        let width = ((hi - lo) / buckets as f64).max(f64::MIN_POSITIVE);
        let mut counts = vec![0u64; buckets];
        for &x in data {
            let b = (((x - lo) / width) as usize).min(buckets - 1);
            counts[b] += 1;
        }
        let edges = (0..=buckets).map(|i| lo + i as f64 * width).collect();
        Histogram {
            edges,
            counts,
            total: data.len() as u64,
        }
    }

    /// Build an equi-depth histogram with `buckets` buckets (sorts a copy).
    pub fn equi_depth(data: &[f64], buckets: usize) -> Self {
        let buckets = buckets.max(1);
        if data.is_empty() {
            return Histogram {
                edges: vec![0.0; buckets + 1],
                counts: vec![0; buckets],
                total: 0,
            };
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let mut edges = Vec::with_capacity(buckets + 1);
        let mut counts = Vec::with_capacity(buckets);
        edges.push(sorted[0]);
        let mut prev_idx = 0usize;
        for b in 1..=buckets {
            let idx = (b * n / buckets).min(n);
            // Bucket edge: the value at the quantile position.
            let edge = if idx >= n { sorted[n - 1] } else { sorted[idx] };
            edges.push(edge);
            counts.push((idx - prev_idx) as u64);
            prev_idx = idx;
        }
        Histogram {
            edges,
            counts,
            total: n as u64,
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }

    /// Total rows summarized.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bucket boundaries.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimate `|{x : low <= x < high}|` with uniform spread inside
    /// buckets.
    pub fn estimate_range(&self, low: f64, high: f64) -> f64 {
        if low >= high || self.total == 0 {
            return 0.0;
        }
        let mut est = 0.0;
        for b in 0..self.counts.len() {
            let (b_lo, b_hi) = (self.edges[b], self.edges[b + 1]);
            if b_hi <= low || b_lo >= high {
                continue;
            }
            let width = b_hi - b_lo;
            let overlap = (high.min(b_hi) - low.max(b_lo)).max(0.0);
            let fraction = if width > 0.0 { overlap / width } else { 1.0 };
            est += self.counts[b] as f64 * fraction.min(1.0);
        }
        est
    }

    /// Estimate the `q`-quantile (0 ≤ q ≤ 1) by walking bucket mass.
    pub fn estimate_quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let target = q * self.total as f64;
        let mut acc = 0.0;
        for b in 0..self.counts.len() {
            let c = self.counts[b] as f64;
            if acc + c >= target && c > 0.0 {
                let frac = ((target - acc) / c).clamp(0.0, 1.0);
                return self.edges[b] + frac * (self.edges[b + 1] - self.edges[b]);
            }
            acc += c;
        }
        *self.edges.last().unwrap()
    }

    /// Mean absolute relative error of range estimates against the truth,
    /// over a set of probe ranges. Used by experiment E12.
    pub fn range_error(&self, data: &[f64], probes: &[(f64, f64)]) -> f64 {
        if probes.is_empty() {
            return 0.0;
        }
        let mut err = 0.0;
        for &(lo, hi) in probes {
            let truth = data.iter().filter(|&&x| x >= lo && x < hi).count() as f64;
            let est = self.estimate_range(lo, hi);
            err += (est - truth).abs() / truth.max(1.0);
        }
        err / probes.len() as f64
    }
}

fn min_max(data: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in data {
        if x < lo {
            lo = x;
        }
        if x > hi {
            hi = x;
        }
    }
    if data.is_empty() {
        (0.0, 1.0)
    } else {
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explore_storage::rng::{SplitMix64, Zipf};

    fn uniform(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.range_f64(0.0, 100.0)).collect()
    }

    fn zipfian(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        let z = Zipf::new(1000, 1.1);
        (0..n).map(|_| z.sample(&mut rng) as f64).collect()
    }

    #[test]
    fn counts_sum_to_total() {
        let data = uniform(10_000, 1);
        for h in [
            Histogram::equi_width(&data, 32),
            Histogram::equi_depth(&data, 32),
        ] {
            assert_eq!(h.counts().iter().sum::<u64>(), 10_000);
            assert_eq!(h.total(), 10_000);
            assert_eq!(h.num_buckets(), 32);
        }
    }

    #[test]
    fn full_range_estimate_equals_total() {
        let data = uniform(5000, 2);
        let h = Histogram::equi_width(&data, 16);
        let est = h.estimate_range(-1e9, 1e9);
        assert!((est - 5000.0).abs() < 1.0, "est {est}");
    }

    #[test]
    fn uniform_data_estimates_are_accurate() {
        let data = uniform(50_000, 3);
        let h = Histogram::equi_width(&data, 64);
        let probes: Vec<(f64, f64)> = (0..20)
            .map(|i| (i as f64 * 4.0, i as f64 * 4.0 + 10.0))
            .collect();
        assert!(h.range_error(&data, &probes) < 0.05);
    }

    #[test]
    fn equi_depth_beats_equi_width_on_skew() {
        let data = zipfian(50_000, 4);
        let probes: Vec<(f64, f64)> = (0..40)
            .map(|i| (i as f64 * 5.0, i as f64 * 5.0 + 20.0))
            .collect();
        let ew = Histogram::equi_width(&data, 32).range_error(&data, &probes);
        let ed = Histogram::equi_depth(&data, 32).range_error(&data, &probes);
        assert!(ed < ew, "equi-depth {ed} should beat equi-width {ew}");
    }

    #[test]
    fn quantile_estimates() {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let h = Histogram::equi_depth(&data, 100);
        for q in [0.1, 0.5, 0.9] {
            let est = h.estimate_quantile(q);
            let truth = q * 9999.0;
            assert!((est - truth).abs() < 200.0, "q={q} est={est} truth={truth}");
        }
        assert_eq!(h.estimate_quantile(-0.5), h.estimate_quantile(0.0));
    }

    #[test]
    fn empty_and_constant_data() {
        let h = Histogram::equi_width(&[], 8);
        assert_eq!(h.estimate_range(0.0, 10.0), 0.0);
        let h = Histogram::equi_depth(&[], 8);
        assert_eq!(h.total(), 0);
        let h = Histogram::equi_width(&[5.0; 100], 8);
        assert!((h.estimate_range(4.9, 5.1) - 100.0).abs() < 1.0);
        let h = Histogram::equi_depth(&[5.0; 100], 8);
        assert_eq!(h.counts().iter().sum::<u64>(), 100);
    }

    #[test]
    fn empty_range_is_zero() {
        let data = uniform(100, 5);
        let h = Histogram::equi_width(&data, 8);
        assert_eq!(h.estimate_range(50.0, 50.0), 0.0);
        assert_eq!(h.estimate_range(60.0, 40.0), 0.0);
        assert_eq!(h.estimate_range(200.0, 300.0), 0.0);
    }
}
