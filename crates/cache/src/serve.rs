//! The serve protocol: exact hit → subsumption hit → compute-and-admit.
//!
//! [`cached_query`] is the single entry point `ExploreDb` routes through
//! when caching is enabled. Its contract is *bit-exactness*: for every
//! query — hit, subsumption serve, or miss — the returned table is
//! bit-identical (floats by `to_bits`) to what `explore_exec::run_query`
//! would produce against the base table, and errors are the canonical
//! `run_query` errors.
//!
//! The one [`QueryCtx`] threads through every exec call, so cancellation
//! is checked per morsel on subsumption re-filters and base-table scans
//! alike, fail points apply at the same hazard sites, and an attached
//! trace records one cache-lookup span tagged with the outcome (hit /
//! subsumption / miss), an admit span when a result is offered to the
//! cache, and the usual exec spans for whatever actually ran. None of it
//! changes what is served.
//!
//! The subsumption path earns this the careful way:
//!
//! 1. the **full** new predicate is re-evaluated on the cached subset
//!    (not some residual predicate — no predicate algebra to get wrong),
//! 2. subset-local matches are mapped through the entry's stored
//!    selection vector back to **global** base-table row ids,
//! 3. the query replays via [`explore_exec::run_query_on_selection`],
//!    which partitions
//!    that global selection at the *base table's* morsel boundaries —
//!    so gathers and float accumulators see the same values in the same
//!    order as a base-table scan.
//!
//! Any failure inside the subsumption path simply falls through to the
//! miss path, which reproduces canonical errors and results.

use std::sync::Arc;
use std::time::Instant;

use explore_exec::{evaluate_selection, run_query_on_selection, QueryCtx};
use explore_obs::{CacheOutcome, SpanKind, ROOT_SPAN};
use explore_storage::{Query, Result, Table};

use crate::fingerprint::Fingerprint;
use crate::region::Region;
use crate::store::{ResultCache, ReuseArtifacts, SubsumeCandidate};

/// Execute `query` against `base` (registered as `table_name`) through
/// the shared cache, under one [`QueryCtx`]. See the module docs for
/// the exactness contract.
pub fn cached_query(
    cache: &ResultCache,
    base: &Table,
    table_name: &str,
    query: &Query,
    ctx: &QueryCtx,
) -> Result<Table> {
    let epoch = cache.epoch(table_name);
    cached_query_at_epoch(cache, base, table_name, query, ctx, epoch)
}

/// [`cached_query`] with the admission epoch supplied by the caller.
///
/// Concurrent engines must read the table's epoch **before** taking the
/// data snapshot that `base` points at: mutations write data first and
/// bump the epoch second, so epoch-before-snapshot guarantees the
/// snapshot is at least as new as the epoch it is admitted under. (A
/// snapshot *newer* than the epoch is admitted under the older epoch
/// and dies at the mutation's bump — conservative, never stale.) If the
/// epoch were read here, after the caller's snapshot, a mutation in the
/// window could leave pre-mutation data admitted under the
/// post-mutation epoch — a stale entry the bump can no longer kill.
pub fn cached_query_at_epoch(
    cache: &ResultCache,
    base: &Table,
    table_name: &str,
    query: &Query,
    ctx: &QueryCtx,
    epoch: u64,
) -> Result<Table> {
    let fingerprint = Fingerprint::for_query(table_name, query);

    let lookup_start = ctx.trace.map(|t| t.now_ns());
    if let Some(hit) = cache.get(&fingerprint) {
        record_lookup(ctx, lookup_start, CacheOutcome::Hit);
        return Ok((*hit).clone());
    }

    if let Some(served) = try_subsumption(
        cache,
        base,
        table_name,
        query,
        &fingerprint,
        epoch,
        ctx,
        lookup_start,
    ) {
        return Ok(served);
    }

    // A cancellation that aborted the subsumption path must surface as
    // the typed error, not silently fall through to a (doomed) rescan.
    ctx.check_cancel()?;

    record_lookup(ctx, lookup_start, CacheOutcome::Miss);
    cache.note_miss();

    // Mirror `run_query`'s error precedence: scan queries validate the
    // projection before the predicate ever runs.
    if query.aggregates.is_empty() && !query.projection.is_empty() {
        let names: Vec<&str> = query.projection.iter().map(String::as_str).collect();
        base.schema().project(&names)?;
    }

    let started = Instant::now();
    let sel = evaluate_selection(base, &query.predicate, ctx)?;
    let result = run_query_on_selection(base, query, &sel, ctx)?;
    let cost_ns = started.elapsed().as_nanos();

    let result = Arc::new(result);
    // Cost-aware admission: results too cheap to be worth caching skip
    // artifact construction and insertion entirely — the cold path pays
    // (almost) nothing for them, which is what keeps `CachePolicy::On`
    // tracking cache-off on workloads that never re-ask a query.
    let admit_start = ctx.trace.map(|t| t.now_ns());
    let accepted = if cache.should_admit(cost_ns) {
        let reuse = build_artifacts(base, query, sel, &result, cost_ns);
        cache.insert(fingerprint, Arc::clone(&result), reuse, cost_ns, epoch)
    } else {
        cache.note_admit_rejected();
        false
    };
    record_admit(ctx, admit_start, accepted);
    Ok((*result).clone())
}

/// Record the cache-lookup span once its outcome is known.
fn record_lookup(ctx: &QueryCtx, start: Option<u64>, outcome: CacheOutcome) {
    if let Some((t, start)) = ctx.trace.zip(start) {
        t.record(ROOT_SPAN, SpanKind::CacheLookup(outcome), start, t.now_ns());
    }
}

/// Record the admission span around a [`ResultCache::insert`] offer.
fn record_admit(ctx: &QueryCtx, start: Option<u64>, accepted: bool) {
    if let Some((t, start)) = ctx.trace.zip(start) {
        t.record(ROOT_SPAN, SpanKind::Admit { accepted }, start, t.now_ns());
    }
}

/// Attempt to answer from a cached superset. `None` means "no sound
/// candidate" *or* "serving failed" — either way the caller falls back
/// to base-table execution.
#[allow(clippy::too_many_arguments)]
fn try_subsumption(
    cache: &ResultCache,
    base: &Table,
    table_name: &str,
    query: &Query,
    fingerprint: &Fingerprint,
    epoch: u64,
    ctx: &QueryCtx,
    lookup_start: Option<u64>,
) -> Option<Table> {
    if !cache.subsumption_enabled() {
        return None;
    }
    let query_region = Region::relaxed(&query.predicate);
    let candidate = cache.find_subsuming(table_name, &query_region)?;
    // The probe found a superset: the lookup span closes here, before
    // the re-filter work (which records its own exec spans).
    record_lookup(ctx, lookup_start, CacheOutcome::Subsumption);
    let SubsumeCandidate {
        fingerprint: source,
        sel,
        subset,
        cost_ns,
    } = candidate;

    let started = Instant::now();
    // Re-evaluate the full predicate on the (smaller) cached subset;
    // region soundness guarantees no qualifying base row lives outside
    // it. Errors fall through to the canonical miss path.
    let local = evaluate_selection(&subset, &query.predicate, ctx).ok()?;
    let global: Vec<u32> = local.iter().map(|&i| sel[i as usize]).collect();
    let result = run_query_on_selection(base, query, &global, ctx).ok()?;
    let refilter_ns = started.elapsed().as_nanos();

    cache.note_subsumption_hit(&source, cost_ns.saturating_sub(refilter_ns));

    // Admit the narrower result as its own entry so refinement chains
    // keep re-filtering ever-smaller subsets. Its subset rows come from
    // the candidate's subset — identical values to a base-table gather.
    let result = Arc::new(result);
    let reuse = Region::exact(&query.predicate).map(|region| ReuseArtifacts {
        region,
        sel: Arc::new(global),
        subset: Arc::new(subset.gather(&local)),
    });
    let admit_start = ctx.trace.map(|t| t.now_ns());
    let accepted = cache.insert(
        fingerprint.clone(),
        Arc::clone(&result),
        reuse,
        refilter_ns,
        epoch,
    );
    record_admit(ctx, admit_start, accepted);
    Some((*result).clone())
}

/// Reuse artifacts for a freshly computed result: only when the
/// predicate normalizes exactly. An identity scan's result *is* its
/// subset, so the `Arc` is shared instead of re-gathered. For any other
/// shape the subset must be gathered, which is the expensive part of
/// the cold path — so it's gated on benefit *before* the gather: the
/// selection must narrow the base table by at least a 1/8th (a subset
/// covering nearly every base row makes a re-filter scan about as many
/// rows as the base table would — all cost, no savings), and the
/// estimated subset bytes must not exceed the observed compute cost in
/// ns (≈ 1 byte/ns materialization: an artifact that costs more to
/// build than the computation it might save is a bad trade). Entries
/// without artifacts still serve exact hits.
fn build_artifacts(
    base: &Table,
    query: &Query,
    sel: Vec<u32>,
    result: &Arc<Table>,
    cost_ns: u128,
) -> Option<ReuseArtifacts> {
    let region = Region::exact(&query.predicate)?;
    let is_identity_scan = query.aggregates.is_empty()
        && query.projection.is_empty()
        && query.order_by.is_none()
        && query.limit.is_none();
    let subset = if is_identity_scan {
        Arc::clone(result)
    } else {
        if sel.len() * 8 >= base.num_rows() * 7 {
            return None;
        }
        let est_bytes = estimated_row_bytes(base).saturating_mul(sel.len());
        if est_bytes as u128 > cost_ns {
            return None;
        }
        Arc::new(base.gather(&sel))
    };
    Some(ReuseArtifacts {
        region,
        sel: Arc::new(sel),
        subset,
    })
}

/// Cheap per-row byte estimate for gather gating: exact for numeric
/// columns, and string columns extrapolate from the first rows instead
/// of walking every string — `table_bytes` is exact but O(rows), far
/// too slow to pay on every admission decision.
fn estimated_row_bytes(table: &Table) -> usize {
    use explore_storage::Column;
    let mut bytes = 0usize;
    for field in table.schema().fields() {
        let Ok(col) = table.column(field.name()) else {
            continue;
        };
        bytes += match col {
            Column::Int64(_) | Column::Float64(_) => 8,
            Column::Utf8(v) => {
                let sample = &v[..v.len().min(64)];
                let sampled: usize = sample.iter().map(|s| s.len() + 24).sum();
                sampled / sample.len().max(1)
            }
        };
    }
    bytes
}
