//! Epoch-invalidation correctness for the semantic result cache.
//!
//! Every mutation channel — row append, bulk append, in-place update,
//! table re-registration, adaptive-index reorganization — must bump the
//! table's epoch, and a warm cache must never serve a pre-mutation
//! result: after each mutation the cached engine's answers are compared
//! bit-for-bit against a cache-less engine over the same mutated data.

use exploration::cache::{CacheConfig, CachePolicy};
use exploration::storage::gen::{sales_table, SalesConfig};
use exploration::storage::{AggFunc, CmpOp, Predicate, Query, Table, Value};
use exploration::{ExploreDb, Schedule};

fn sales(rows: usize) -> Table {
    sales_table(&SalesConfig {
        rows,
        ..SalesConfig::default()
    })
}

/// The probe workload: a scan, an aggregate, and a narrow range that
/// exercises the subsumption path.
fn probes() -> Vec<(&'static str, Query)> {
    vec![
        (
            "scan",
            Query::new().filter(Predicate::range("price", 50.0, 900.0)),
        ),
        (
            "aggregate",
            Query::new()
                .group("region")
                .agg(AggFunc::Sum, "price")
                .agg(AggFunc::Count, "qty"),
        ),
        (
            "subsumed_range",
            Query::new()
                .filter(Predicate::range("price", 100.0, 600.0))
                .agg(AggFunc::Sum, "qty"),
        ),
    ]
}

/// Assert bitwise equality (floats via `to_bits`).
fn assert_bitwise_eq(a: &Table, b: &Table, context: &str) {
    assert_eq!(a.schema(), b.schema(), "{context}: schema");
    assert_eq!(a.num_rows(), b.num_rows(), "{context}: row count");
    for field in a.schema().fields() {
        let ca = a.column(field.name()).unwrap_or_else(|e| {
            panic!("{context}: left table lost column {:?}: {e}", field.name())
        });
        let cb = b.column(field.name()).unwrap_or_else(|e| {
            panic!("{context}: right table lost column {:?}: {e}", field.name())
        });
        for row in 0..a.num_rows() {
            let va = ca
                .value(row)
                .unwrap_or_else(|e| panic!("{context}: {}[{row}] unreadable: {e}", field.name()));
            let vb = cb
                .value(row)
                .unwrap_or_else(|e| panic!("{context}: {}[{row}] unreadable: {e}", field.name()));
            match (va, vb) {
                (Value::Float(x), Value::Float(y)) => assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{context}: {}[{row}] {x} vs {y}",
                    field.name()
                ),
                (x, y) => assert_eq!(x, y, "{context}: {}[{row}]", field.name()),
            }
        }
    }
}

/// Run the probe workload on the warm cached engine and pin every answer
/// to an uncached engine over a snapshot of the same (mutated) table.
fn assert_matches_uncached(db: &mut ExploreDb, context: &str) {
    let snapshot = db.table("sales").unwrap().clone();
    let fresh = ExploreDb::new();
    fresh.register("sales", snapshot);
    for (name, q) in probes() {
        let cached = db
            .query("sales", &q)
            .unwrap_or_else(|e| panic!("{context}/{name}: {e}"));
        let truth = fresh.query("sales", &q).unwrap();
        assert_bitwise_eq(&truth, &cached, &format!("{context}/{name}"));
    }
}

/// Warm the cache so a stale serve *would* be observable if epochs were
/// broken.
fn warm(db: &mut ExploreDb) {
    for (_, q) in probes() {
        db.query("sales", &q).unwrap();
        db.query("sales", &q).unwrap();
    }
}

#[test]
fn push_row_invalidates_warm_entries() {
    let mut db = ExploreDb::with_cache_policy(CachePolicy::on());
    db.register("sales", sales(10_000));
    warm(&mut db);
    assert!(db.cache_stats().hits > 0, "warm-up should hit");
    assert_eq!(db.table_epoch("sales"), 0);

    // An extreme row that visibly shifts every probe.
    db.push_row(
        "sales",
        vec![
            Value::from("regionX"),
            Value::from("productX"),
            Value::from("channelX"),
            Value::Float(500.0),
            Value::Float(0.5),
            Value::Int(1_000),
        ],
    )
    .unwrap();
    assert_eq!(db.table_epoch("sales"), 1);
    assert!(db.cache_stats().invalidations > 0, "stale entries purged");
    assert_matches_uncached(&mut db, "after push_row");
}

#[test]
fn append_rows_invalidates_warm_entries() {
    let mut db = ExploreDb::with_cache_policy(CachePolicy::on());
    db.register("sales", sales(8_000));
    warm(&mut db);
    let extra = sales(1_000);
    db.append_rows("sales", &extra).unwrap();
    assert_eq!(db.table_epoch("sales"), 1);
    assert_eq!(db.table("sales").unwrap().num_rows(), 9_000);
    assert_matches_uncached(&mut db, "after append_rows");
}

#[test]
fn update_where_invalidates_warm_entries() {
    let mut db = ExploreDb::with_cache_policy(CachePolicy::on());
    db.register("sales", sales(10_000));
    warm(&mut db);
    let sum_before = db
        .query("sales", &Query::new().agg(AggFunc::Sum, "price"))
        .unwrap();

    let changed = db
        .update_where(
            "sales",
            &Predicate::range("price", 100.0, 600.0),
            "price",
            Value::Float(50.0),
        )
        .unwrap();
    assert!(changed > 0);
    assert_eq!(db.table_epoch("sales"), 1);

    let sum_after = db
        .query("sales", &Query::new().agg(AggFunc::Sum, "price"))
        .unwrap();
    let before = sum_before.column("sum(price)").unwrap().as_f64().unwrap()[0];
    let after = sum_after.column("sum(price)").unwrap().as_f64().unwrap()[0];
    assert_ne!(
        before.to_bits(),
        after.to_bits(),
        "update must be visible through the cache"
    );
    assert_matches_uncached(&mut db, "after update_where");

    // A no-match update mutates nothing and keeps the (new) warm cache.
    let zero = db
        .update_where(
            "sales",
            &Predicate::cmp("price", CmpOp::Lt, -1.0),
            "price",
            Value::Float(0.0),
        )
        .unwrap();
    assert_eq!(zero, 0);
    assert_eq!(db.table_epoch("sales"), 1, "no rows matched, no epoch bump");
}

#[test]
fn reregistering_a_table_invalidates_its_entries() {
    let mut db = ExploreDb::with_cache_policy(CachePolicy::on());
    db.register("sales", sales(6_000));
    warm(&mut db);
    // Replace the table wholesale with differently-seeded data.
    db.register(
        "sales",
        sales_table(&SalesConfig {
            rows: 6_000,
            seed: 99,
            ..SalesConfig::default()
        }),
    );
    assert_eq!(db.table_epoch("sales"), 1);
    assert_matches_uncached(&mut db, "after re-register");
}

#[test]
fn cracking_reorganization_is_an_epoch_event() {
    let mut db = ExploreDb::with_cache_policy(CachePolicy::on());
    db.register("sales", sales(10_000));
    warm(&mut db);
    let e0 = db.table_epoch("sales");

    // First crack reorganizes the index: conservative epoch bump.
    db.cracked_range("sales", "qty", 3, 7).unwrap();
    let e1 = db.table_epoch("sales");
    assert!(e1 > e0, "reorganization bumps the epoch");

    // Cracking never touches the base table, so answers still equal an
    // uncached rerun (the bump is purely conservative).
    assert_matches_uncached(&mut db, "after crack");

    // A repeat of the same range adds no pieces and no epoch.
    db.cracked_range("sales", "qty", 3, 7).unwrap();
    assert_eq!(db.table_epoch("sales"), e1);
}

#[test]
fn subsumption_never_serves_across_a_mutation() {
    let db = ExploreDb::with_cache_policy(CachePolicy::on());
    db.register("sales", sales(10_000));

    // Seed a broad scan whose artifacts could subsume later ranges.
    let broad = Query::new().filter(Predicate::range("price", 0.0, 1000.0));
    db.query("sales", &broad).unwrap();

    // Mutate: every price shifts, so the old subset is wrong everywhere.
    db.update_where("sales", &Predicate::True, "price", Value::Float(123.25))
        .unwrap();

    // A narrow range that the stale broad entry would have subsumed.
    let narrow = Query::new().filter(Predicate::range("price", 100.0, 200.0));
    let got = db.query("sales", &narrow).unwrap();
    let fresh = ExploreDb::new();
    fresh.register("sales", db.table("sales").unwrap().clone());
    let truth = fresh.query("sales", &narrow).unwrap();
    assert_bitwise_eq(&truth, &got, "narrow after mutation");
    assert_eq!(got.num_rows(), 10_000, "every row now matches");
    assert_eq!(
        db.cache_stats().subsumption_hits,
        0,
        "stale superset must not serve"
    );
}

#[test]
fn epochs_are_per_table() {
    let db = ExploreDb::with_cache_policy(CachePolicy::on());
    db.register("a", sales(3_000));
    db.register("b", sales(3_000));
    let q = Query::new().agg(AggFunc::Sum, "price");
    db.query("a", &q).unwrap();
    db.query("b", &q).unwrap();
    let row = db.table("a").unwrap().row(0).unwrap();
    db.push_row("a", row).unwrap();
    assert_eq!(db.table_epoch("a"), 1);
    assert_eq!(db.table_epoch("b"), 0);
    // b's entry survives a's mutation.
    let hits_before = db.cache_stats().hits;
    db.query("b", &q).unwrap();
    assert_eq!(db.cache_stats().hits, hits_before + 1);
}

// --- Eviction edge cases: degenerate budgets and injected failures ---
// The cache is an accelerator, never an authority: under a zero budget,
// an entry bigger than the whole budget, or an injected eviction
// failure, every answer must still come back correct via the compute
// path.

#[test]
fn zero_byte_budget_serves_through_compute() {
    let mut db = ExploreDb::with_cache_policy(CachePolicy::On(CacheConfig {
        byte_budget: 0,
        subsumption: true,
        ..CacheConfig::default()
    }));
    db.register("sales", sales(3_000));
    assert_matches_uncached(&mut db, "zero budget");
    assert_matches_uncached(&mut db, "zero budget repeat");
    let stats = db.cache_stats();
    assert_eq!(stats.bytes, 0, "nothing may be resident under a 0 budget");
    assert_eq!(stats.entries, 0);
}

#[test]
fn entry_larger_than_budget_is_never_admitted() {
    let budget = 64; // smaller than any real result table
    let mut db = ExploreDb::with_cache_policy(CachePolicy::On(CacheConfig {
        byte_budget: budget,
        subsumption: true,
        ..CacheConfig::default()
    }));
    db.register("sales", sales(3_000));
    assert_matches_uncached(&mut db, "oversized entries");
    assert_matches_uncached(&mut db, "oversized entries repeat");
    assert!(
        db.cache_stats().bytes <= budget,
        "budget must hold even when every result is oversized"
    );
}

#[test]
fn injected_eviction_failure_degrades_to_clear_all() {
    // A stream of distinct small results overflows a small budget, with
    // the eviction fail point armed: the degraded path drops ALL
    // entries (a safe overcorrection) instead of picking victims.
    // Answers must stay correct throughout.
    let budget = 4 << 10;
    let mut db = ExploreDb::with_cache_policy(CachePolicy::On(CacheConfig {
        byte_budget: budget,
        subsumption: true,
        ..CacheConfig::default()
    }));
    db.register("sales", sales(3_000));
    let fresh = ExploreDb::new();
    fresh.register("sales", db.table("sales").unwrap().clone());
    let faults = db.fail_points();
    faults.arm("cache.evict", Schedule::Always);
    for i in 0..64 {
        // Distinct narrow scans: each admissible (well under half the
        // budget), collectively far over it.
        let lo = f64::from(i) * 12.0;
        let q = Query::new().filter(Predicate::range("price", lo, lo + 5.0));
        let got = db.query("sales", &q).unwrap();
        let truth = fresh.query("sales", &q).unwrap();
        assert_bitwise_eq(&truth, &got, &format!("evict-fault scan {i}"));
    }
    assert!(
        faults.trips("cache.evict") > 0,
        "workload never hit the armed eviction point"
    );
    assert!(
        db.cache_stats().bytes <= budget,
        "clear-all degradation must keep the resident set within budget"
    );
    // Disarm: normal victim selection resumes on the same cache.
    faults.disarm_all();
    assert_matches_uncached(&mut db, "after disarm");
}

/// Admission rejection composes with epoch invalidation: with an
/// unclearable threshold nothing is ever resident, so mutations have
/// nothing to purge, every probe recomputes against the current table
/// state, and rejection counting keeps pace.
#[test]
fn admission_rejection_composes_with_invalidation() {
    let mut db = ExploreDb::with_cache_policy(CachePolicy::On(CacheConfig {
        byte_budget: 1 << 30,
        admit_min_cost_ns: u64::MAX,
        ..CacheConfig::default()
    }));
    db.register("sales", sales(10_000));
    warm(&mut db);
    let stats = db.cache_stats();
    assert_eq!(stats.insertions, 0, "threshold admits nothing: {stats:?}");
    assert_eq!(stats.hits, 0, "nothing resident to hit: {stats:?}");
    assert!(stats.admit_rejected > 0, "rejections counted: {stats:?}");
    assert_matches_uncached(&mut db, "rejected-everything cold state");

    db.push_row(
        "sales",
        vec![
            Value::from("regionX"),
            Value::from("productX"),
            Value::from("channelX"),
            Value::Float(500.0),
            Value::Float(0.5),
            Value::Int(1_000),
        ],
    )
    .unwrap();
    assert_eq!(db.table_epoch("sales"), 1);
    assert_matches_uncached(&mut db, "after push_row with admission rejection");
    let stats = db.cache_stats();
    assert_eq!(stats.insertions, 0, "still nothing admitted: {stats:?}");
}

/// Under the default threshold these multi-millisecond debug queries
/// all clear admission: warm hits serve, and a mutation still purges
/// them — admission gating must not weaken epoch invalidation.
#[test]
fn admitted_entries_still_invalidate_on_mutation() {
    let mut db = ExploreDb::with_cache_policy(CachePolicy::On(CacheConfig {
        byte_budget: 1 << 30,
        ..CacheConfig::default()
    }));
    db.register("sales", sales(10_000));
    warm(&mut db);
    let stats = db.cache_stats();
    assert!(stats.insertions > 0, "default threshold admits: {stats:?}");
    assert!(stats.hits > 0, "admitted entries serve warm: {stats:?}");
    assert_eq!(stats.admit_rejected, 0, "no rejections expected: {stats:?}");

    db.push_row(
        "sales",
        vec![
            Value::from("regionX"),
            Value::from("productX"),
            Value::from("channelX"),
            Value::Float(500.0),
            Value::Float(0.5),
            Value::Int(1_000),
        ],
    )
    .unwrap();
    assert!(
        db.cache_stats().invalidations > 0,
        "admitted entries purged on mutation"
    );
    assert_matches_uncached(&mut db, "after push_row with admission active");
}
