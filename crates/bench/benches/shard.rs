//! Sharded-table benches. Two headline records:
//!
//! * `shard_scaling/shards_4_vs_1` — wall-clock ratio (×100) of the
//!   1-shard mirror over the 4-shard mirror on a mixed workload. The
//!   merge replays the unsharded morsel decomposition, so sharding is
//!   pure dispatch re-arrangement: the ratio should sit near parity
//!   (100) on any host and above it when shard fan-out wins.
//! * `shard_epoch_locality/cross_shard_retention_pct` — after a
//!   mutation routed to one shard, the percentage of the *other*
//!   shards' cache entries still live. Per-shard epochs make this 100;
//!   the whole-table epoch it replaces made it 0.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use explore_core::cache::{CacheConfig, CachePolicy, Fingerprint};
use explore_core::shard::{scoped_name, ShardConfig, ShardPolicy};
use explore_core::storage::gen::{sales_table, SalesConfig};
use explore_core::storage::{AggFunc, CmpOp, Predicate, Query, SortOrder, Table};
use explore_core::ExploreDb;

fn sales(rows: usize) -> Table {
    sales_table(&SalesConfig {
        rows,
        ..SalesConfig::default()
    })
}

fn sharded_db(t: &Table, count: usize) -> ExploreDb {
    let db = ExploreDb::with_shard_policy(ShardPolicy::On(ShardConfig {
        count,
        min_rows_per_shard: 1,
    }));
    db.register("sales", t.clone());
    db
}

/// A mixed exploration workload: grouped and global aggregates plus
/// filtered scans, each exercising the fan-out/merge path differently.
fn workload() -> Vec<Query> {
    vec![
        Query::new()
            .group("region")
            .agg(AggFunc::Sum, "price")
            .agg(AggFunc::Count, "qty"),
        Query::new()
            .filter(Predicate::range("price", 100.0, 600.0))
            .agg(AggFunc::Sum, "price")
            .agg(AggFunc::Var, "discount"),
        Query::new()
            .filter(Predicate::cmp("qty", CmpOp::Ge, 5.0))
            .select(&["region", "price"]),
        Query::new()
            .group("product")
            .agg(AggFunc::Avg, "price")
            .order("avg(price)", SortOrder::Desc)
            .take(10),
    ]
}

fn run_workload(db: &mut ExploreDb, queries: &[Query]) -> usize {
    queries
        .iter()
        .map(|q| db.query("sales", q).expect("workload query").num_rows())
        .sum()
}

fn bench_shard_scaling(c: &mut Criterion) {
    let t = sales(400_000);
    let queries = workload();

    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(10);
    for count in [1usize, 4] {
        group.bench_function(format!("query_shards_{count}"), |b| {
            let mut db = sharded_db(&t, count);
            b.iter(|| black_box(run_workload(&mut db, &queries)))
        });
    }
    group.finish();

    // The gate-checked ratio, best-of-N on both sides: 1-shard wall /
    // 4-shard wall × 100. Parity = 100.
    let samples = std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5usize)
        .max(2);
    let best = |count: usize| {
        let mut db = sharded_db(&t, count);
        run_workload(&mut db, &queries); // warm allocator + pool
        (0..samples)
            .map(|_| {
                let start = std::time::Instant::now();
                black_box(run_workload(&mut db, &queries));
                start.elapsed().as_nanos()
            })
            .min()
            .unwrap()
    };
    let one_ns = best(1);
    let four_ns = best(4);
    let ratio_pct = 100.0 * one_ns as f64 / four_ns.max(1) as f64;
    let mut ratio_group = c.benchmark_group("shard_scaling");
    ratio_group.record_value("shards_4_vs_1", ratio_pct, "percent");
    ratio_group.finish();
}

fn bench_shard_epoch_locality(c: &mut Criterion) {
    let t = sales(100_000);
    let db = sharded_db(&t, 4);
    db.set_cache_policy(CachePolicy::On(CacheConfig {
        byte_budget: 1 << 30,
        ..CacheConfig::default()
    }));
    db.register("sales", t.clone());

    // Populate one entry per (scan shape, shard scope).
    let scans: Vec<Query> = (0..5)
        .map(|i| {
            Query::new().filter(Predicate::range(
                "price",
                50.0 + 10.0 * i as f64,
                900.0 - 25.0 * i as f64,
            ))
        })
        .collect();
    for q in &scans {
        db.query("sales", q).expect("populate");
    }
    let cache = db.cache();
    let live = |q: &Query, shard: usize| {
        cache.contains(&Fingerprint::for_query(&scoped_name("sales", shard), q))
    };
    let other_before: usize = scans
        .iter()
        .map(|q| (0..3).filter(|&s| live(q, s)).count())
        .sum();

    // Mutate: one appended row, owned by the last shard.
    db.push_row("sales", t.row(0).expect("row")).expect("push");

    let other_after: usize = scans
        .iter()
        .map(|q| (0..3).filter(|&s| live(q, s)).count())
        .sum();
    let retention_pct = 100.0 * other_after as f64 / other_before.max(1) as f64;
    eprintln!(
        "shard_epoch_locality: {other_after}/{other_before} other-shard entries live after mutation"
    );
    let mut group = c.benchmark_group("shard_epoch_locality");
    group.record_value("cross_shard_retention_pct", retention_pct, "percent");
    group.finish();
}

criterion_group!(benches, bench_shard_scaling, bench_shard_epoch_locality);
criterion_main!(benches);
